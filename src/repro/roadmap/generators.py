"""Synthetic road-network generators.

The paper's evaluation uses a commercial car-navigation map of the Stuttgart
area together with four recorded GPS traces (freeway, inter-urban, city,
walking).  Neither the map nor the traces are redistributable, so this module
generates networks with the same *structural* characteristics:

* :func:`freeway_map` — a long, gently curving motorway corridor with
  interchanges (exit ramps) every few kilometres;
* :func:`interurban_map` — a network of moderately curving primary and
  secondary roads connecting towns, with side roads at intermediate nodes;
* :func:`city_grid_map` — a dense, Manhattan-like street grid with arterial
  avenues, slight geometric jitter and frequent intersections;
* :func:`pedestrian_map` — a fine-grained footpath network with diagonal
  shortcuts for the walking scenario.

All generators are deterministic for a given ``seed``.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

import numpy as np

from repro.geo.vec import Vec2, as_vec
from repro.roadmap.builder import RoadMapBuilder
from repro.roadmap.elements import RoadClass
from repro.roadmap.graph import RoadMap


# --------------------------------------------------------------------------- #
# geometry helpers
# --------------------------------------------------------------------------- #
def curved_path(
    length: float,
    step: float = 50.0,
    start: Vec2 = (0.0, 0.0),
    initial_heading: float = 0.0,
    curvature_sigma: float = 1e-4,
    max_curvature: float = 1.5e-3,
    curvature_decay: float = 0.95,
    rng: Optional[random.Random] = None,
) -> np.ndarray:
    """Generate a smoothly curving path of a given length.

    The path is produced by integrating a heading whose curvature performs a
    mean-reverting random walk, which yields the long sweeping curves typical
    of motorways (small ``curvature_sigma``) or the tighter winding of rural
    roads (larger values).

    Parameters
    ----------
    length:
        Total arc length of the path in metres.
    step:
        Distance between generated vertices in metres.
    start:
        First vertex.
    initial_heading:
        Initial heading in radians (mathematical convention, from +x).
    curvature_sigma:
        Standard deviation of the per-step curvature innovation (1/m).
    max_curvature:
        Hard clamp on curvature magnitude (1/m).
    curvature_decay:
        Mean-reversion factor applied to the curvature each step.
    rng:
        Random generator; a fresh one is created when omitted.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n, 2)`` with the path vertices.
    """
    if length <= 0 or step <= 0:
        raise ValueError("length and step must be positive")
    rng = rng or random.Random()
    n_steps = max(1, int(math.ceil(length / step)))
    points = [as_vec(start)]
    heading = float(initial_heading)
    curvature = 0.0
    for _ in range(n_steps):
        curvature = curvature * curvature_decay + rng.gauss(0.0, curvature_sigma)
        curvature = max(-max_curvature, min(max_curvature, curvature))
        heading += curvature * step
        prev = points[-1]
        points.append(
            np.array([prev[0] + step * math.cos(heading), prev[1] + step * math.sin(heading)])
        )
    return np.array(points)


def _split_indices(n_points: int, n_pieces: int) -> List[Tuple[int, int]]:
    """Split ``range(n_points)`` into *n_pieces* contiguous (start, end) index pairs."""
    n_pieces = max(1, min(n_pieces, n_points - 1))
    boundaries = np.linspace(0, n_points - 1, n_pieces + 1).astype(int)
    out = []
    for a, b in zip(boundaries[:-1], boundaries[1:]):
        if b > a:
            out.append((int(a), int(b)))
    return out


def _corridor(
    builder: RoadMapBuilder,
    path: np.ndarray,
    node_spacing: float,
    road_class: RoadClass,
    speed_limit: float,
    name: str,
    two_way: bool = True,
) -> List[int]:
    """Add a corridor following *path* to *builder*, splitting it into links.

    Nodes (intersections) are placed roughly every *node_spacing* metres along
    the path; the vertices in between become shape points.  Returns the ids of
    the created intersections, in order.
    """
    seg_lengths = np.hypot(*np.diff(path, axis=0).T)
    total = float(seg_lengths.sum())
    n_links = max(1, int(round(total / node_spacing)))
    pieces = _split_indices(len(path), n_links)

    node_ids: List[int] = []
    first_node = builder.get_or_create_intersection(path[pieces[0][0]])
    node_ids.append(first_node.id)
    for start_idx, end_idx in pieces:
        end_node = builder.get_or_create_intersection(path[end_idx])
        shape = [path[i] for i in range(start_idx + 1, end_idx)]
        if two_way:
            builder.add_two_way_link(
                node_ids[-1],
                end_node.id,
                shape_points=shape,
                road_class=road_class,
                speed_limit=speed_limit,
                name=name,
            )
        else:
            builder.add_link(
                node_ids[-1],
                end_node.id,
                shape_points=shape,
                road_class=road_class,
                speed_limit=speed_limit,
                name=name,
            )
        node_ids.append(end_node.id)
    return node_ids


# --------------------------------------------------------------------------- #
# freeway
# --------------------------------------------------------------------------- #
def freeway_map(
    length_km: float = 180.0,
    interchange_spacing_km: float = 4.0,
    ramp_length_m: float = 400.0,
    speed_limit_kmh: float = 120.0,
    seed: int = 0,
) -> RoadMap:
    """A motorway corridor with exit ramps at every interchange.

    The corridor curves gently (long radii), matching the geometry that makes
    the map-based protocol shine in the paper's freeway scenario: a linear
    predictor drifts off in every curve while the map follows it.  Each
    interchange node has an exit ramp so the prediction function has a real
    choice to make when the object passes an intersection.
    """
    rng = random.Random(seed)
    builder = RoadMapBuilder()
    path = curved_path(
        length=length_km * 1000.0,
        step=100.0,
        curvature_sigma=4e-5,
        max_curvature=8e-4,
        curvature_decay=0.97,
        rng=rng,
    )
    node_ids = _corridor(
        builder,
        path,
        node_spacing=interchange_spacing_km * 1000.0,
        road_class=RoadClass.MOTORWAY,
        speed_limit=speed_limit_kmh / 3.6,
        name="A-repro",
    )
    # Exit ramps: a short secondary road leaving every interior interchange at
    # a pronounced angle, ending in a dead-end local node.
    roadmap_nodes = {nid: builder._intersections[nid] for nid in node_ids}
    for nid in node_ids[1:-1]:
        node = roadmap_nodes[nid]
        angle = rng.uniform(0.35, 0.9) * (1 if rng.random() < 0.5 else -1)
        # Ramp direction: rotate the local corridor direction by `angle`.
        idx = node_ids.index(nid)
        nxt = roadmap_nodes[node_ids[min(idx + 1, len(node_ids) - 1)]]
        prv = roadmap_nodes[node_ids[max(idx - 1, 0)]]
        corridor_dir = nxt.position - prv.position
        norm = math.hypot(*corridor_dir)
        if norm == 0:
            continue
        corridor_dir = corridor_dir / norm
        c, s = math.cos(angle), math.sin(angle)
        ramp_dir = np.array(
            [c * corridor_dir[0] - s * corridor_dir[1], s * corridor_dir[0] + c * corridor_dir[1]]
        )
        ramp_end = builder.add_intersection(node.position + ramp_dir * ramp_length_m)
        builder.add_two_way_link(
            nid,
            ramp_end.id,
            shape_points=[node.position + ramp_dir * (ramp_length_m * 0.5)],
            road_class=RoadClass.SECONDARY,
            speed_limit=60.0 / 3.6,
            name=f"exit-{nid}",
        )
    return builder.build()


# --------------------------------------------------------------------------- #
# inter-urban
# --------------------------------------------------------------------------- #
def interurban_map(
    n_towns: int = 6,
    town_spacing_km: float = 18.0,
    side_road_probability: float = 0.45,
    speed_limit_kmh: float = 90.0,
    seed: int = 1,
) -> RoadMap:
    """A network of winding primary roads connecting a chain of towns.

    Each pair of consecutive towns is connected by a moderately curving
    corridor whose intermediate nodes occasionally sprout side roads, giving
    the intersection density typical of inter-urban driving.
    """
    rng = random.Random(seed)
    builder = RoadMapBuilder()

    # Town centres arranged along a meandering macro-path so that the overall
    # trip (used by the scenario) is long enough.
    heading = rng.uniform(-0.4, 0.4)
    towns: List[np.ndarray] = [np.zeros(2)]
    for _ in range(n_towns - 1):
        heading += rng.uniform(-0.7, 0.7)
        step = town_spacing_km * 1000.0 * rng.uniform(0.8, 1.2)
        towns.append(
            towns[-1] + np.array([math.cos(heading), math.sin(heading)]) * step
        )

    all_corridor_nodes: List[int] = []
    for a, b in zip(towns[:-1], towns[1:]):
        direction = b - a
        dist = math.hypot(*direction)
        base_heading = math.atan2(direction[1], direction[0])
        path = curved_path(
            length=dist * 1.15,
            step=60.0,
            start=a,
            initial_heading=base_heading,
            curvature_sigma=3e-4,
            max_curvature=4e-3,
            curvature_decay=0.92,
            rng=rng,
        )
        # Straighten the generated path so that it actually ends near town b:
        # blend the curved offsets onto the straight chord.
        chord = np.linspace(0.0, 1.0, len(path))[:, None] * (b - a)[None, :] + a[None, :]
        wander = path - (
            np.linspace(0.0, 1.0, len(path))[:, None] * (path[-1] - path[0])[None, :]
            + path[0][None, :]
        )
        path = chord + wander
        node_ids = _corridor(
            builder,
            path,
            node_spacing=1800.0,
            road_class=RoadClass.PRIMARY,
            speed_limit=speed_limit_kmh / 3.6,
            name="B-repro",
        )
        all_corridor_nodes.extend(node_ids)

        # Side roads off some intermediate nodes.
        for nid in node_ids[1:-1]:
            if rng.random() > side_road_probability:
                continue
            node = builder._intersections[nid]
            angle = rng.uniform(0.6, 1.4) * (1 if rng.random() < 0.5 else -1)
            length = rng.uniform(400.0, 1500.0)
            direction = rng.uniform(0, 2 * math.pi)
            side_path = curved_path(
                length=length,
                step=50.0,
                start=node.position,
                initial_heading=direction + angle,
                curvature_sigma=5e-4,
                max_curvature=5e-3,
                rng=rng,
            )
            end_node = builder.add_intersection(side_path[-1])
            builder.add_two_way_link(
                nid,
                end_node.id,
                shape_points=[side_path[i] for i in range(1, len(side_path) - 1)],
                road_class=RoadClass.SECONDARY,
                speed_limit=70.0 / 3.6,
                name=f"side-{nid}",
            )
    return builder.build()


# --------------------------------------------------------------------------- #
# city grid
# --------------------------------------------------------------------------- #
def city_grid_map(
    rows: int = 16,
    cols: int = 16,
    spacing_m: float = 250.0,
    arterial_every: int = 4,
    jitter_m: float = 12.0,
    seed: int = 2,
) -> RoadMap:
    """A Manhattan-like city street grid with arterial avenues.

    Every ``arterial_every``-th row/column is an arterial (higher class and
    speed limit); the remaining streets are residential.  Node positions are
    jittered slightly so that streets are not perfectly straight, which makes
    the linear predictor's life realistically harder.
    """
    if rows < 2 or cols < 2:
        raise ValueError("rows and cols must be at least 2")
    rng = random.Random(seed)
    builder = RoadMapBuilder()

    node_grid: List[List[int]] = []
    for r in range(rows):
        row_nodes: List[int] = []
        for c in range(cols):
            jitter = np.array(
                [rng.uniform(-jitter_m, jitter_m), rng.uniform(-jitter_m, jitter_m)]
            )
            pos = np.array([c * spacing_m, r * spacing_m]) + jitter
            row_nodes.append(builder.add_intersection(pos).id)
        node_grid.append(row_nodes)

    def street_class(index: int) -> Tuple[RoadClass, float]:
        if arterial_every > 0 and index % arterial_every == 0:
            return RoadClass.SECONDARY, 60.0 / 3.6
        return RoadClass.RESIDENTIAL, 50.0 / 3.6

    # horizontal streets
    for r in range(rows):
        cls, speed = street_class(r)
        for c in range(cols - 1):
            builder.add_two_way_link(
                node_grid[r][c],
                node_grid[r][c + 1],
                road_class=cls,
                speed_limit=speed,
                name=f"street-h{r}",
            )
    # vertical streets
    for c in range(cols):
        cls, speed = street_class(c)
        for r in range(rows - 1):
            builder.add_two_way_link(
                node_grid[r][c],
                node_grid[r + 1][c],
                road_class=cls,
                speed_limit=speed,
                name=f"street-v{c}",
            )
    return builder.build()


# --------------------------------------------------------------------------- #
# pedestrian network
# --------------------------------------------------------------------------- #
def pedestrian_map(
    rows: int = 20,
    cols: int = 20,
    spacing_m: float = 90.0,
    diagonal_probability: float = 0.25,
    jitter_m: float = 8.0,
    seed: int = 3,
) -> RoadMap:
    """A fine-grained footpath network for the walking-person scenario.

    The network is a jittered grid of footpaths with occasional diagonal
    shortcuts across blocks (parks, squares), producing the frequent small
    direction changes characteristic of a pedestrian trace.
    """
    rng = random.Random(seed)
    builder = RoadMapBuilder()
    node_grid: List[List[int]] = []
    for r in range(rows):
        row_nodes: List[int] = []
        for c in range(cols):
            jitter = np.array(
                [rng.uniform(-jitter_m, jitter_m), rng.uniform(-jitter_m, jitter_m)]
            )
            pos = np.array([c * spacing_m, r * spacing_m]) + jitter
            row_nodes.append(builder.add_intersection(pos).id)
        node_grid.append(row_nodes)

    walk_speed = 5.5 / 3.6
    for r in range(rows):
        for c in range(cols - 1):
            builder.add_two_way_link(
                node_grid[r][c],
                node_grid[r][c + 1],
                road_class=RoadClass.FOOTPATH,
                speed_limit=walk_speed,
            )
    for c in range(cols):
        for r in range(rows - 1):
            builder.add_two_way_link(
                node_grid[r][c],
                node_grid[r + 1][c],
                road_class=RoadClass.FOOTPATH,
                speed_limit=walk_speed,
            )
    # Diagonal shortcuts.
    for r in range(rows - 1):
        for c in range(cols - 1):
            if rng.random() < diagonal_probability:
                if rng.random() < 0.5:
                    builder.add_two_way_link(
                        node_grid[r][c],
                        node_grid[r + 1][c + 1],
                        road_class=RoadClass.FOOTPATH,
                        speed_limit=walk_speed,
                    )
                else:
                    builder.add_two_way_link(
                        node_grid[r][c + 1],
                        node_grid[r + 1][c],
                        road_class=RoadClass.FOOTPATH,
                        speed_limit=walk_speed,
                    )
    return builder.build()


# --------------------------------------------------------------------------- #
# radial (ring-and-spoke) city
# --------------------------------------------------------------------------- #
def radial_ring_map(
    n_arms: int = 8,
    n_rings: int = 5,
    ring_spacing_m: float = 450.0,
    jitter_m: float = 10.0,
    arterial_arms: bool = True,
    seed: int = 4,
) -> RoadMap:
    """A ring-and-spoke city: radial arterials crossed by concentric rings.

    Many European cities grow radially rather than as a grid: arterial
    roads leave a centre in every direction and ring roads connect them.
    For the protocols this topology matters because the prediction
    function faces a genuine multi-way choice at every ring/arm crossing,
    and ring driving produces sustained curvature that linear predictors
    handle poorly.

    Parameters
    ----------
    n_arms:
        Number of radial arterials leaving the centre.
    n_rings:
        Number of concentric ring roads.
    ring_spacing_m:
        Radial distance between consecutive rings in metres.
    jitter_m:
        Uniform positional jitter applied to every crossing.
    arterial_arms:
        Whether the arms get a higher road class / speed limit than rings.
    seed:
        Seed for the jitter.
    """
    if n_arms < 3:
        raise ValueError("a radial map needs at least 3 arms")
    if n_rings < 1:
        raise ValueError("a radial map needs at least 1 ring")
    rng = random.Random(seed)
    builder = RoadMapBuilder()
    center = builder.add_intersection((0.0, 0.0))

    arm_class = RoadClass.SECONDARY if arterial_arms else RoadClass.RESIDENTIAL
    arm_speed = (60.0 if arterial_arms else 50.0) / 3.6
    ring_speed = 50.0 / 3.6

    # Crossing nodes: node_ids[arm][ring]
    node_ids: List[List[int]] = []
    for a in range(n_arms):
        angle = 2.0 * math.pi * a / n_arms
        arm_nodes: List[int] = []
        for k in range(1, n_rings + 1):
            radius = k * ring_spacing_m
            jitter = np.array(
                [rng.uniform(-jitter_m, jitter_m), rng.uniform(-jitter_m, jitter_m)]
            )
            pos = np.array([radius * math.cos(angle), radius * math.sin(angle)]) + jitter
            arm_nodes.append(builder.add_intersection(pos).id)
        node_ids.append(arm_nodes)

    # Radial arms: centre -> first ring -> ... -> outer ring.
    for a in range(n_arms):
        chain = [center.id] + node_ids[a]
        for u, v in zip(chain[:-1], chain[1:]):
            builder.add_two_way_link(
                u, v, road_class=arm_class, speed_limit=arm_speed, name=f"arm-{a}"
            )
    # Ring roads: connect consecutive arms at every ring, following the arc.
    for k in range(n_rings):
        radius = (k + 1) * ring_spacing_m
        for a in range(n_arms):
            b = (a + 1) % n_arms
            angle_a = 2.0 * math.pi * a / n_arms
            angle_b = 2.0 * math.pi * b / n_arms
            if b == 0:
                angle_b = 2.0 * math.pi
            mid = 0.5 * (angle_a + angle_b)
            shape = [np.array([radius * math.cos(mid), radius * math.sin(mid)])]
            builder.add_two_way_link(
                node_ids[a][k],
                node_ids[b][k],
                shape_points=shape,
                road_class=RoadClass.RESIDENTIAL,
                speed_limit=ring_speed,
                name=f"ring-{k}",
            )
    return builder.build()


# --------------------------------------------------------------------------- #
# mixed corridor + grid (commuter) network
# --------------------------------------------------------------------------- #
def corridor_city_map(
    corridor_km: float = 12.0,
    rows: int = 10,
    cols: int = 10,
    spacing_m: float = 220.0,
    interchange_spacing_km: float = 2.0,
    corridor_speed_kmh: float = 120.0,
    jitter_m: float = 10.0,
    seed: int = 5,
) -> RoadMap:
    """A motorway corridor feeding into a city street grid (commuter trip).

    The classic commute — freeway approach, then dense urban streets —
    mixes the two movement regimes in one map: long high-speed links where
    map-based prediction excels, followed by frequent low-speed turns.
    The corridor runs west of the grid and is connected to the grid's
    western edge by a short arterial connector.
    """
    if rows < 2 or cols < 2:
        raise ValueError("rows and cols must be at least 2")
    if corridor_km <= 0:
        raise ValueError("corridor_km must be positive")
    rng = random.Random(seed)
    builder = RoadMapBuilder()

    # City grid around the origin (same structure as city_grid_map).
    node_grid: List[List[int]] = []
    for r in range(rows):
        row_nodes: List[int] = []
        for c in range(cols):
            jitter = np.array(
                [rng.uniform(-jitter_m, jitter_m), rng.uniform(-jitter_m, jitter_m)]
            )
            pos = np.array([c * spacing_m, r * spacing_m]) + jitter
            row_nodes.append(builder.add_intersection(pos).id)
        node_grid.append(row_nodes)
    for r in range(rows):
        cls = RoadClass.SECONDARY if r % 3 == 0 else RoadClass.RESIDENTIAL
        speed = (60.0 if cls is RoadClass.SECONDARY else 50.0) / 3.6
        for c in range(cols - 1):
            builder.add_two_way_link(
                node_grid[r][c], node_grid[r][c + 1],
                road_class=cls, speed_limit=speed, name=f"street-h{r}",
            )
    for c in range(cols):
        cls = RoadClass.SECONDARY if c % 3 == 0 else RoadClass.RESIDENTIAL
        speed = (60.0 if cls is RoadClass.SECONDARY else 50.0) / 3.6
        for r in range(rows - 1):
            builder.add_two_way_link(
                node_grid[r][c], node_grid[r + 1][c],
                road_class=cls, speed_limit=speed, name=f"street-v{c}",
            )

    # Motorway corridor approaching the grid from the west, aimed at the
    # middle of the western edge.
    mid_y = (rows - 1) * spacing_m / 2.0
    start = np.array([-(corridor_km * 1000.0) - 800.0, mid_y])
    path = curved_path(
        length=corridor_km * 1000.0,
        step=100.0,
        start=start,
        initial_heading=0.0,
        curvature_sigma=4e-5,
        max_curvature=8e-4,
        curvature_decay=0.97,
        rng=rng,
    )
    corridor_nodes = _corridor(
        builder,
        path,
        node_spacing=interchange_spacing_km * 1000.0,
        road_class=RoadClass.MOTORWAY,
        speed_limit=corridor_speed_kmh / 3.6,
        name="M-commute",
    )

    # Connector: corridor end to the nearest western-edge grid node.
    end_node = builder._intersections[corridor_nodes[-1]]
    west_edge = [node_grid[r][0] for r in range(rows)]
    nearest = min(
        west_edge,
        key=lambda nid: float(
            np.hypot(*(builder._intersections[nid].position - end_node.position))
        ),
    )
    builder.add_two_way_link(
        end_node.id,
        nearest,
        road_class=RoadClass.SECONDARY,
        speed_limit=60.0 / 3.6,
        name="connector",
    )
    return builder.build()


# --------------------------------------------------------------------------- #
# tiny maps for unit tests and documentation examples
# --------------------------------------------------------------------------- #
def straight_road_map(
    length_m: float = 2000.0, n_links: int = 4, speed_limit_kmh: float = 50.0
) -> RoadMap:
    """A single straight two-way road split into *n_links* links (test fixture)."""
    builder = RoadMapBuilder()
    xs = np.linspace(0.0, length_m, n_links + 1)
    nodes = [builder.add_intersection((x, 0.0)).id for x in xs]
    for a, b in zip(nodes[:-1], nodes[1:]):
        builder.add_two_way_link(
            a, b, road_class=RoadClass.RESIDENTIAL, speed_limit=speed_limit_kmh / 3.6
        )
    return builder.build()


def t_junction_map(arm_length_m: float = 500.0) -> RoadMap:
    """A T junction: three arms meeting at a central node (test fixture)."""
    builder = RoadMapBuilder()
    center = builder.add_intersection((0.0, 0.0)).id
    west = builder.add_intersection((-arm_length_m, 0.0)).id
    east = builder.add_intersection((arm_length_m, 0.0)).id
    north = builder.add_intersection((0.0, arm_length_m)).id
    for other in (west, east, north):
        builder.add_two_way_link(center, other, road_class=RoadClass.RESIDENTIAL)
    return builder.build()
