"""Tests for the sharded location-service tier (policy, facade, handoff)."""

import numpy as np
import pytest

from repro.geo.bbox import BoundingBox
from repro.protocols.base import ObjectState, UpdateMessage, UpdateReason
from repro.protocols.prediction import LinearPrediction, StaticPrediction
from repro.service.facade import LocationService
from repro.service.queries import (
    geofence_query,
    nearest_object_query,
    position_query,
    range_query,
)
from repro.service.server import LocationServer
from repro.service.sharding import GridHashPolicy


def make_message(sequence=0, time=0.0, position=(0.0, 0.0), velocity=(0.0, 0.0)):
    state = ObjectState(
        time=time, position=position, velocity=velocity,
        speed=float(np.hypot(*velocity)),
    )
    return UpdateMessage(sequence=sequence, state=state, reason=UpdateReason.THRESHOLD)


class TestGridHashPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            GridHashPolicy(0)
        with pytest.raises(ValueError):
            GridHashPolicy(4, region_size=0.0)

    def test_point_mapping_is_deterministic_and_in_range(self):
        policy = GridHashPolicy(8, region_size=1000.0)
        rng = np.random.default_rng(0)
        for p in rng.uniform(-50_000.0, 50_000.0, size=(200, 2)):
            shard = policy.shard_for_point(p)
            assert 0 <= shard < 8
            assert shard == policy.shard_for_point(p)

    def test_same_cell_same_shard(self):
        policy = GridHashPolicy(4, region_size=1000.0)
        assert policy.shard_for_point((10.0, 10.0)) == policy.shard_for_point((990.0, 990.0))

    def test_id_hash_is_stable_and_in_range(self):
        policy = GridHashPolicy(4)
        for oid in ("car-1", "taxi/7", ""):
            assert 0 <= policy.shard_for_id(oid) < 4
            assert policy.shard_for_id(oid) == policy.shard_for_id(oid)
        # CRC32-based, so the assignment survives hash randomisation; pin one.
        assert GridHashPolicy(4).shard_for_id("car-1") == GridHashPolicy(4).shard_for_id("car-1")

    def test_shards_for_box_covers_contained_points(self):
        policy = GridHashPolicy(5, region_size=700.0)
        rng = np.random.default_rng(1)
        for _ in range(50):
            lo = rng.uniform(-10_000.0, 10_000.0, size=2)
            extent = rng.uniform(10.0, 5000.0, size=2)
            box = BoundingBox(lo[0], lo[1], lo[0] + extent[0], lo[1] + extent[1])
            shards = policy.shards_for_box(box)
            for p in rng.uniform([box.min_x, box.min_y], [box.max_x, box.max_y], size=(20, 2)):
                assert policy.shard_for_point(p) in shards

    def test_single_shard_routes_trivially(self):
        policy = GridHashPolicy(1)
        assert policy.shards_for_box(BoundingBox(0.0, 0.0, 1e7, 1e7)) == [0]
        assert policy.shard_for_point((123.0, 456.0)) == 0

    def test_huge_box_falls_back_to_all_shards(self):
        policy = GridHashPolicy(4, region_size=100.0)
        assert policy.shards_for_box(BoundingBox(0.0, 0.0, 1e6, 1e6)) == [0, 1, 2, 3]


class TestLocationServiceSurface:
    """The facade honours the LocationServer contract exactly."""

    def test_register_twice_rejected(self):
        service = LocationService(n_shards=4)
        service.register_object("a")
        with pytest.raises(ValueError):
            service.register_object("a")

    def test_policy_shard_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LocationService(n_shards=4, policy=GridHashPolicy(2))

    def test_predict_before_update_is_none(self):
        service = LocationService(n_shards=2)
        service.register_object("a", prediction=LinearPrediction())
        assert service.predict_position("a", 10.0) is None
        assert service.all_positions(10.0) == {}

    def test_unknown_object_raises_keyerror(self):
        service = LocationService(n_shards=2)
        with pytest.raises(KeyError):
            service.tracked_object("nope")
        with pytest.raises(KeyError):
            service.predict_position("nope", 0.0)

    def test_receive_and_predict_matches_single_server(self):
        single = LocationServer()
        service = LocationService(n_shards=4)
        for backend in (single, service):
            backend.register_object("a", prediction=LinearPrediction(), accuracy=100.0)
            backend.receive_update("a", make_message(velocity=(10.0, 0.0)), time=0.0)
        for t in (0.0, 5.0, 60.0):
            np.testing.assert_array_equal(
                single.predict_position("a", t), service.predict_position("a", t)
            )
        assert service.tracked_object("a").updates_received == 1
        assert service.object_ids() == ["a"]
        assert service.is_registered("a")
        assert not service.is_registered("b")

    def test_predict_positions_batch(self):
        service = LocationService(n_shards=3)
        service.register_object("a", prediction=StaticPrediction())
        service.register_object("b", prediction=StaticPrediction())
        service.receive_update("a", make_message(position=(5.0, 5.0)), time=0.0)
        batch = service.predict_positions(["a", "b"], 10.0)
        np.testing.assert_array_equal(batch[0], [5.0, 5.0])
        assert batch[1] is None


class TestHandoff:
    def test_update_across_boundary_moves_object(self):
        service = LocationService(n_shards=4, region_size=1000.0)
        service.register_object("a", prediction=StaticPrediction())
        service.receive_update("a", make_message(position=(100.0, 100.0)), time=0.0)
        first = service.home_shard("a")
        assert first == service.policy.shard_for_point((100.0, 100.0))
        # An update far away re-homes the object to the new region's shard.
        service.receive_update(
            "a", make_message(sequence=1, position=(5100.0, 100.0), time=10.0), time=10.0
        )
        second = service.home_shard("a")
        assert second == service.policy.shard_for_point((5100.0, 100.0))
        record = service.tracked_object("a")
        assert record.updates_received == 2
        if first != second:
            assert service.loads[first].handoffs_out == 1
            assert service.loads[second].handoffs_in == 1

    def test_drift_handoff_at_query_time(self):
        """A moving prediction crosses the boundary without a new update."""
        service = LocationService(n_shards=4, region_size=1000.0)
        service.register_object("a", prediction=LinearPrediction())
        service.receive_update("a", make_message(velocity=(100.0, 0.0)), time=0.0)
        before = service.home_shard("a")
        assert before == service.policy.shard_for_point((0.0, 0.0))
        # At t=50 the prediction is at x=5000, five regions to the right.
        service.prepare(50.0)
        after = service.home_shard("a")
        assert after == service.policy.shard_for_point((5000.0, 0.0))
        # The query index serves the object from its new home.
        assert service.range_query(BoundingBox(4900.0, -100.0, 5100.0, 100.0), 50.0) == ["a"]
        if before != after:
            assert sum(load.handoffs_in for load in service.loads) >= 1

    def test_handoff_preserves_record_identity(self):
        service = LocationService(n_shards=4, region_size=500.0)
        record = service.register_object("a", prediction=LinearPrediction(), accuracy=42.0)
        service.receive_update("a", make_message(velocity=(50.0, 0.0)), time=0.0)
        service.prepare(100.0)
        assert service.tracked_object("a") is record
        assert record.accuracy == 42.0
        assert record.last_update_time == 0.0


class TestBatchedIngestion:
    def test_batch_equals_per_message(self):
        rng = np.random.default_rng(5)
        n = 60
        msgs = [
            (
                f"o{i}",
                make_message(
                    position=tuple(rng.uniform(0, 8000.0, size=2)),
                    velocity=tuple(rng.uniform(-20, 20.0, size=2)),
                ),
            )
            for i in range(n)
        ]
        one_by_one = LocationService(n_shards=4)
        batched = LocationService(n_shards=4)
        for service in (one_by_one, batched):
            for i in range(n):
                service.register_object(f"o{i}", prediction=LinearPrediction())
        for oid, m in msgs:
            one_by_one.receive_update(oid, m, 0.0)
        batched.ingest_batch(msgs, 0.0)
        for oid, _ in msgs:
            assert one_by_one.home_shard(oid) == batched.home_shard(oid)
            np.testing.assert_array_equal(
                one_by_one.predict_position(oid, 30.0), batched.predict_position(oid, 30.0)
            )
        assert sum(load.updates for load in one_by_one.loads) == n
        assert sum(load.updates for load in batched.loads) == n
        assert batched.counters.batches_ingested == 1

    def test_empty_batch_is_noop(self):
        service = LocationService(n_shards=2)
        service.ingest_batch([], 0.0)
        assert service.counters.batches_ingested == 0


class TestServiceQueries:
    """Index-backed service answers == linear reference scans, bit for bit."""

    @pytest.fixture()
    def mirrored(self):
        rng = np.random.default_rng(11)
        n = 300
        single = LocationServer()
        service = LocationService(n_shards=5, region_size=1500.0)
        msgs = []
        for i in range(n):
            oid = f"obj-{i:03d}"
            accuracy = float(rng.choice([25.0, 50.0, 100.0, float("inf")]))
            for backend in (single, service):
                backend.register_object(oid, prediction=LinearPrediction(), accuracy=accuracy)
            msgs.append(
                (
                    oid,
                    make_message(
                        position=tuple(rng.uniform(0.0, 12_000.0, size=2)),
                        velocity=tuple(rng.uniform(-25.0, 25.0, size=2)),
                    ),
                )
            )
        # A silent object exists on both backends but never reports.
        single.register_object("silent", accuracy=10.0)
        service.register_object("silent", accuracy=10.0)
        for oid, m in msgs:
            single.receive_update(oid, m, 0.0)
        service.ingest_batch(msgs, 0.0)
        return single, service

    def test_range_queries_identical(self, mirrored):
        single, service = mirrored
        rng = np.random.default_rng(12)
        for t in (0.0, 17.0, 120.0):
            for _ in range(10):
                lo = rng.uniform(0.0, 9000.0, size=2)
                extent = rng.uniform(200.0, 4000.0, size=2)
                box = BoundingBox(lo[0], lo[1], lo[0] + extent[0], lo[1] + extent[1])
                assert service.range_query(box, t) == range_query(single, box, t)

    def test_margin_range_queries_identical(self, mirrored):
        single, service = mirrored
        box = BoundingBox(2000.0, 2000.0, 6000.0, 5000.0)
        for margin in (0.5, 1.0, 2.0):
            for t in (0.0, 45.0):
                assert service.range_query(box, t, margin=margin) == range_query(
                    single, box, t, margin=margin
                )

    def test_nearest_queries_identical(self, mirrored):
        single, service = mirrored
        rng = np.random.default_rng(13)
        for t in (0.0, 33.0):
            for k in (1, 5, 40):
                q = rng.uniform(0.0, 12_000.0, size=2)
                assert service.nearest_objects(q, t, k=k) == nearest_object_query(
                    single, q, t, k=k
                )

    def test_geofence_queries_identical(self, mirrored):
        single, service = mirrored
        rng = np.random.default_rng(14)
        for t in (0.0, 75.0):
            for radius in (100.0, 1500.0, 6000.0):
                q = rng.uniform(0.0, 12_000.0, size=2)
                assert service.geofence_query(q, radius, t) == geofence_query(
                    single, q, radius, t
                )

    def test_linear_reference_queries_run_against_service(self, mirrored):
        """queries.py functions accept the facade as a drop-in server."""
        _, service = mirrored
        box = BoundingBox(0.0, 0.0, 4000.0, 4000.0)
        assert range_query(service, box, 0.0) == service.range_query(box, 0.0)
        result = position_query(service, "obj-000", 0.0)
        assert result.position is not None

    def test_service_stats_shape(self, mirrored):
        _, service = mirrored
        service.range_query(BoundingBox(0.0, 0.0, 100.0, 100.0), 0.0)
        stats = service.service_stats()
        assert stats["shards"] == 5
        assert stats["objects"] == 301
        assert stats["updates_ingested"] == 300
        assert stats["range_queries"] >= 1
        assert len(stats["per_shard"]) == 5
        assert sum(row["objects"] for row in stats["per_shard"]) == 301
        assert stats["query_seconds"] > 0.0

    def test_prepare_is_idempotent_per_time(self, mirrored):
        _, service = mirrored
        service.prepare(10.0)
        syncs = service.counters.syncs
        service.prepare(10.0)
        assert service.counters.syncs == syncs
        service.prepare(11.0)
        assert service.counters.syncs == syncs + 1


class TestSingleShardExactness:
    def test_shards1_queries_equal_plain_server(self):
        rng = np.random.default_rng(21)
        single = LocationServer()
        service = LocationService(n_shards=1)
        for i in range(50):
            oid = f"o{i}"
            for backend in (single, service):
                backend.register_object(oid, prediction=LinearPrediction(), accuracy=75.0)
            m = make_message(
                position=tuple(rng.uniform(0.0, 5000.0, size=2)),
                velocity=tuple(rng.uniform(-15.0, 15.0, size=2)),
            )
            single.receive_update(oid, m, 0.0)
            service.receive_update(oid, m, 0.0)
        box = BoundingBox(1000.0, 1000.0, 4000.0, 3000.0)
        for t in (0.0, 60.0):
            assert service.range_query(box, t) == range_query(single, box, t)
            assert service.nearest_objects((2500.0, 2000.0), t, k=9) == nearest_object_query(
                single, (2500.0, 2000.0), t, k=9
            )
