"""Vehicle simulation along a route.

:class:`VehicleSimulator` integrates the speed profile produced by
:class:`~repro.mobility.kinematics.SpeedController` over a route and samples
the resulting position once per sampling interval (the paper's receiver logs
one fix per second).  The result is a :class:`SimulatedJourney`: the
ground-truth trace, the ground-truth link occupied at every sample (used for
map-matching accuracy evaluation and for learning turn probabilities) and
bookkeeping about the planned stops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mobility.kinematics import DriverProfile, SpeedController
from repro.roadmap.routing import Route
from repro.traces.trace import Trace


@dataclass
class SimulatedJourney:
    """Result of a mobility simulation.

    Attributes
    ----------
    trace:
        Ground-truth positions sampled at the requested interval.
    link_ids:
        Ground-truth link id occupied at each sample (parallel to the trace).
    route:
        The route that was driven.
    stop_count:
        Number of full stops that occurred during the journey.
    """

    trace: Trace
    link_ids: List[int]
    route: Route
    stop_count: int = 0

    def average_speed(self) -> float:
        """Average speed over the journey in m/s."""
        if self.trace.duration == 0:
            return 0.0
        return self.trace.path_length() / self.trace.duration


class VehicleSimulator:
    """Drives a vehicle along a route and records its trace.

    Parameters
    ----------
    route:
        The route to drive.
    profile:
        Driver profile (speed factor, acceleration limits, stop behaviour).
    sample_interval:
        Spacing of recorded samples in seconds (1 s in the paper).
    rng:
        Random generator controlling stop placement and speed noise.
    extra_stops:
        Additional planned halts as ``(route_offset_m, duration_s)`` pairs,
        merged with the controller's random intersection stops.  Used for
        scheduled dwell times (delivery drop-offs, bus stops) that are part
        of the trip plan rather than of the traffic model.  A stop at the
        route end is ignored: the journey ends on arrival there.
    """

    def __init__(
        self,
        route: Route,
        profile: DriverProfile,
        sample_interval: float = 1.0,
        rng: Optional[random.Random] = None,
        extra_stops: Optional[Sequence[Tuple[float, float]]] = None,
    ):
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.route = route
        self.profile = profile
        self.sample_interval = float(sample_interval)
        self.rng = rng or random.Random()
        self.controller = SpeedController(route, profile, rng=self.rng)
        self.extra_stops: List[Tuple[float, float]] = []
        for offset, duration in extra_stops or ():
            if not (0.0 <= offset <= route.length):
                raise ValueError("extra stop offsets must lie on the route")
            if duration < 0:
                raise ValueError("extra stop durations must be non-negative")
            self.extra_stops.append((float(offset), float(duration)))

    def run(self, name: str = "", max_duration: Optional[float] = None) -> SimulatedJourney:
        """Simulate the whole journey and return the recorded data.

        Parameters
        ----------
        name:
            Name given to the produced trace.
        max_duration:
            Optional hard cap on the simulated time in seconds; the journey
            is truncated if it takes longer (safety valve for degenerate
            routes).
        """
        dt = self.sample_interval
        # Merge the controller's random stops with the scheduled extra
        # stops.  Stops sharing one offset are folded into a single halt of
        # summed duration — a stop whose offset the vehicle already occupies
        # could otherwise never satisfy the strict crossing check below and
        # would block every stop behind it in the queue.
        stops: List[tuple] = []
        for offset_s, duration in sorted(self.controller.stops + self.extra_stops):
            if offset_s >= self.route.length - 1e-6:
                # The journey ends on arrival at the route end; a dwell
                # there would never be simulated, so don't count it either.
                continue
            if stops and offset_s <= stops[-1][0]:
                stops[-1] = (stops[-1][0], stops[-1][1] + duration)
            else:
                stops.append((offset_s, duration))
        stop_index = 0
        remaining_stop = 0.0
        stop_count = 0
        # A stop at the very start is a dwell before departure.
        if stops and stops[0][0] <= 0.0:
            remaining_stop = stops[0][1]
            stop_index = 1
            stop_count = 1

        time = 0.0
        offset = 0.0
        times: List[float] = [0.0]
        positions: List[np.ndarray] = [self.route.point_at(0.0)]
        link_ids: List[int] = [self.route.link_at(0.0)[0].id]

        while offset < self.route.length - 1e-6:
            time += dt
            if max_duration is not None and time > max_duration:
                break
            if remaining_stop > 0.0:
                remaining_stop -= dt
            else:
                speed = self.controller.speed_at(offset)
                new_offset = offset + speed * dt
                if (
                    stop_index < len(stops)
                    and offset < stops[stop_index][0] <= new_offset
                ):
                    new_offset, stop_duration = stops[stop_index]
                    remaining_stop = stop_duration
                    stop_index += 1
                    stop_count += 1
                offset = min(new_offset, self.route.length)
            times.append(time)
            positions.append(self.route.point_at(offset))
            link_ids.append(self.route.link_at(offset)[0].id)

        trace = Trace(times, np.array(positions), name=name)
        return SimulatedJourney(
            trace=trace, link_ids=link_ids, route=self.route, stop_count=stop_count
        )
