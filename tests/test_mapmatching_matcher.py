"""Unit tests for repro.mapmatching.matcher."""

import numpy as np
import pytest

from repro.mapmatching.matcher import (
    IncrementalMapMatcher,
    MatcherConfig,
    MatchStatus,
)


class TestMatcherConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MatcherConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            MatcherConfig(end_proximity=-1.0)
        with pytest.raises(ValueError):
            MatcherConfig(backtrack_depth=0)
        with pytest.raises(ValueError):
            MatcherConfig(reacquire_interval=0)


class TestAcquisition:
    def test_initial_match_on_nearest_link(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        result = matcher.update((250.0, 10.0))
        assert result.status is MatchStatus.NEW_LINK
        assert result.is_matched
        assert result.distance == pytest.approx(10.0)
        # The corrected position lies on the road (y == 0).
        assert result.position[1] == pytest.approx(0.0)

    def test_no_link_within_tolerance(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        result = matcher.update((250.0, 500.0))
        assert result.status is MatchStatus.OFF_MAP
        assert not result.is_matched
        assert result.link_id is None

    def test_heading_selects_correct_carriageway(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        eastbound = matcher.update((250.0, 2.0), heading=(1.0, 0.0))
        link = straight_map.link(eastbound.link_id)
        assert link.direction_at(eastbound.offset)[0] > 0
        matcher.reset()
        westbound = matcher.update((250.0, 2.0), heading=(-1.0, 0.0))
        link = straight_map.link(westbound.link_id)
        assert link.direction_at(westbound.offset)[0] < 0

    def test_reacquisition_interval(self, straight_map):
        config = MatcherConfig(tolerance=30.0, reacquire_interval=3)
        matcher = IncrementalMapMatcher(straight_map, config)
        far = (0.0, 10_000.0)
        assert matcher.update(far).status is MatchStatus.OFF_MAP  # queries, fails
        # The next two sightings do not even query the index.
        assert matcher.update(far).status is MatchStatus.OFF_MAP
        assert matcher.update(far).status is MatchStatus.OFF_MAP
        # Moving back next to the road: re-acquired on a query tick.
        results = [matcher.update((100.0, 5.0)) for _ in range(4)]
        assert any(r.is_matched for r in results)
        assert matcher.statistics()["reacquisitions"] >= 1


class TestTracking:
    def test_stays_on_link_while_matched(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        first = matcher.update((20.0, 3.0), heading=(1.0, 0.0))
        second = matcher.update((60.0, -4.0), heading=(1.0, 0.0))
        assert second.status is MatchStatus.MATCHED
        assert second.link_id == first.link_id
        assert second.offset > first.offset

    def test_forward_tracking_at_link_end(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        # The straight road has links of 500 m; walk past the first link end.
        # The transition is delayed (paper Sec. 3): right after the end the
        # position still matches the old link within the tolerance, so the
        # switch only happens once the object is clearly beyond it.
        first = matcher.update((450.0, 2.0), heading=(1.0, 0.0))
        just_past = matcher.update((520.0, 2.0), heading=(1.0, 0.0))
        assert just_past.is_matched
        assert just_past.link_id == first.link_id  # still the delayed old link
        beyond = matcher.update((580.0, 2.0), heading=(1.0, 0.0))
        assert beyond.is_matched
        assert beyond.link_id != first.link_id
        stats = matcher.statistics()
        assert stats["forward_tracks"] >= 1

    def test_forward_tracking_chooses_turn_arm(self, t_map):
        matcher = IncrementalMapMatcher(t_map, MatcherConfig(tolerance=30.0))
        # Approach the junction from the west, then turn north.
        matcher.update((-200.0, 1.0), heading=(1.0, 0.0))
        matcher.update((-50.0, 1.0), heading=(1.0, 0.0))
        result = matcher.update((2.0, 80.0), heading=(0.0, 1.0))
        assert result.is_matched
        link = t_map.link(result.link_id)
        # The matched link leads towards the north arm.
        assert link.end_position[1] > 100.0 or link.start_position[1] > 100.0

    def test_backward_tracking_recovers_wrong_choice(self, t_map):
        matcher = IncrementalMapMatcher(
            t_map, MatcherConfig(tolerance=25.0, end_proximity=40.0)
        )
        # Approach the junction and (deliberately) continue east first.
        matcher.update((-300.0, 1.0), heading=(1.0, 0.0))
        matcher.update((-100.0, 1.0), heading=(1.0, 0.0))
        east = matcher.update((60.0, 1.0), heading=(1.0, 0.0))
        assert east.is_matched
        # The object actually went north: far from the east arm, within reach
        # of the north arm. Backward tracking should recover it.
        north = matcher.update((1.0, 120.0), heading=(0.0, 1.0))
        assert north.is_matched
        link = t_map.link(north.link_id)
        assert abs(link.start_position[0]) < 1e-6 or abs(link.end_position[0]) < 1e-6
        assert matcher.statistics()["backward_tracks"] + matcher.statistics()["forward_tracks"] >= 1

    def test_off_map_after_leaving_network(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        matcher.update((100.0, 0.0), heading=(1.0, 0.0))
        result = matcher.update((100.0, 400.0), heading=(0.0, 1.0))
        assert result.status is MatchStatus.OFF_MAP
        assert matcher.current_link is None
        assert matcher.statistics()["off_map_events"] >= 1

    def test_direction_flip_on_u_turn(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        first = matcher.update((300.0, 2.0), heading=(1.0, 0.0))
        # The object turns around and drives back west along the same road.
        second = matcher.update((280.0, 2.0), heading=(-1.0, 0.0))
        assert second.is_matched
        assert second.link_id != first.link_id
        assert matcher.statistics()["direction_flips"] >= 1

    def test_reset_clears_state(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map)
        matcher.update((100.0, 0.0))
        assert matcher.current_link is not None
        matcher.reset()
        assert matcher.current_link is None


class TestCorrectedPosition:
    def test_matched_position_is_projection(self, curved_map):
        matcher = IncrementalMapMatcher(curved_map, MatcherConfig(tolerance=40.0))
        result = matcher.update((500.0, 20.0), heading=(1.0, 0.0))
        assert result.is_matched
        np.testing.assert_allclose(result.position, [500.0, 0.0], atol=1e-6)
        assert result.offset == pytest.approx(500.0)

    def test_offset_within_link_length(self, curved_map):
        matcher = IncrementalMapMatcher(curved_map, MatcherConfig(tolerance=40.0))
        result = matcher.update((980.0, -10.0), heading=(1.0, 0.0))
        assert result.is_matched
        link = curved_map.link(result.link_id)
        assert 0.0 <= result.offset <= link.length
