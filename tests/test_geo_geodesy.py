"""Unit tests for repro.geo.geodesy."""

import math

import numpy as np
import pytest

from repro.geo.geodesy import EARTH_RADIUS_M, LocalProjection, haversine_distance


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_distance(48.7, 9.1, 48.7, 9.1) == 0.0

    def test_one_degree_latitude(self):
        d = haversine_distance(48.0, 9.0, 49.0, 9.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_M / 180.0, rel=1e-6)

    def test_symmetry(self):
        d1 = haversine_distance(48.7, 9.1, 48.8, 9.3)
        d2 = haversine_distance(48.8, 9.3, 48.7, 9.1)
        assert d1 == pytest.approx(d2)

    def test_longitude_shrinks_with_latitude(self):
        at_equator = haversine_distance(0.0, 0.0, 0.0, 1.0)
        at_60_north = haversine_distance(60.0, 0.0, 60.0, 1.0)
        assert at_60_north == pytest.approx(at_equator * 0.5, rel=1e-2)


class TestLocalProjection:
    def test_reference_maps_to_origin(self):
        proj = LocalProjection(ref_lat=48.7, ref_lon=9.1)
        assert proj.to_local(48.7, 9.1).tolist() == [0.0, 0.0]

    def test_roundtrip(self):
        proj = LocalProjection(ref_lat=48.7, ref_lon=9.1)
        lat, lon = proj.to_geodetic(proj.to_local(48.75, 9.2))
        assert lat == pytest.approx(48.75, abs=1e-9)
        assert lon == pytest.approx(9.2, abs=1e-9)

    def test_north_is_positive_y(self):
        proj = LocalProjection(ref_lat=48.7, ref_lon=9.1)
        local = proj.to_local(48.71, 9.1)
        assert local[0] == pytest.approx(0.0)
        assert local[1] > 0

    def test_east_is_positive_x(self):
        proj = LocalProjection(ref_lat=48.7, ref_lon=9.1)
        local = proj.to_local(48.7, 9.11)
        assert local[0] > 0
        assert local[1] == pytest.approx(0.0)

    def test_distance_close_to_haversine(self):
        proj = LocalProjection(ref_lat=48.7, ref_lon=9.1)
        a = proj.to_local(48.72, 9.14)
        b = proj.to_local(48.74, 9.05)
        planar = float(np.hypot(*(a - b)))
        geodesic = haversine_distance(48.72, 9.14, 48.74, 9.05)
        assert planar == pytest.approx(geodesic, rel=2e-3)

    def test_vectorised_conversion(self):
        proj = LocalProjection(ref_lat=48.7, ref_lon=9.1)
        lats = np.array([48.7, 48.71, 48.72])
        lons = np.array([9.1, 9.12, 9.08])
        out = proj.to_local_array(lats, lons)
        assert out.shape == (3, 2)
        np.testing.assert_allclose(out[0], [0.0, 0.0])
        np.testing.assert_allclose(out[1], proj.to_local(48.71, 9.12))
