"""Unit tests for repro.geo.bbox."""

import pytest

from repro.geo.bbox import BoundingBox


class TestConstruction:
    def test_invalid_box_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(10.0, 0.0, 0.0, 5.0)

    def test_from_points(self):
        box = BoundingBox.from_points([(0, 1), (5, -2), (3, 7)])
        assert box.as_tuple() == (0.0, -2.0, 5.0, 7.0)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_around(self):
        box = BoundingBox.around((10.0, 20.0), 5.0)
        assert box.as_tuple() == (5.0, 15.0, 15.0, 25.0)

    def test_properties(self):
        box = BoundingBox(0.0, 0.0, 4.0, 3.0)
        assert box.width == 4.0
        assert box.height == 3.0
        assert box.area == 12.0
        assert box.center.tolist() == [2.0, 1.5]


class TestPredicates:
    def test_contains_point(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains_point((5, 5))
        assert box.contains_point((0, 10))  # boundary counts
        assert not box.contains_point((11, 5))

    def test_intersects_overlapping(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 5, 15, 15)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_intersects_touching(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(10, 0, 20, 10)
        assert a.intersects(b)

    def test_intersects_disjoint(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(20, 20, 30, 30)
        assert not a.intersects(b)

    def test_contains_box(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(2, 2, 8, 8)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)


class TestOperations:
    def test_union(self):
        a = BoundingBox(0, 0, 5, 5)
        b = BoundingBox(3, -2, 10, 4)
        assert a.union(b).as_tuple() == (0.0, -2.0, 10.0, 5.0)

    def test_expanded(self):
        box = BoundingBox(0, 0, 10, 10).expanded(2.0)
        assert box.as_tuple() == (-2.0, -2.0, 12.0, 12.0)

    def test_distance_to_point_inside_is_zero(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.distance_to_point((5, 5)) == 0.0

    def test_distance_to_point_outside(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.distance_to_point((13, 14)) == pytest.approx(5.0)

    def test_distance_to_point_beside(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.distance_to_point((-3, 5)) == pytest.approx(3.0)
