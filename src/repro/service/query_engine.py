"""Columnar (struct-of-arrays) query engine over predicted positions.

The seed's query helpers (:mod:`repro.service.queries`) answer every range
or nearest-object query by scanning all tracked objects — O(fleet) per
query.  PR 3 replaced that with an incremental
:class:`~repro.spatial.grid.GridIndex` per shard, but the read path stayed
per-object Python: a dict probe and a closure allocation per registered
object, and per-item refinement loops per query.

:class:`QueryEngine` stores one shard's predicted state in three contiguous
NumPy columns instead::

    row      0        1        2      ...   N-1
    _ids     "amb-3"  "bus-0"  "taxi-17"    (Python list + _id_col '<U' array)
    _pos     [x, y]   [x, y]   [x, y]       float64, shape (N, 2)
    _cells   [cx,cy]  [cx,cy]  [cx,cy]      int64,   shape (N, 2)

* :meth:`sync` is a vectorised diff: one stack + one floor-divide pass
  computes every object's cell, and when the membership is unchanged (the
  steady state) the moved count is a single boolean-mask reduction — no
  per-object dict probes, no closures, no drop-list scan.
* :meth:`range_query` / :meth:`k_nearest` / :meth:`within_radius` are
  vectorised kernels (boolean mask / ``argpartition`` + boundary expansion /
  mask, each finished by a ``lexsort`` on ``(distance, id)``).

All answers are **bit-identical** to the linear scans in
:mod:`repro.service.queries` and to :class:`ScalarQueryEngine` (the PR 3
engine, retained below as the reference implementation): the vectorised
distance kernel replicates the exact scalar arithmetic order of
:func:`repro.geo.vec.distance` (``sqrt(dx*dx + dy*dy)``, *not*
``np.hypot``), and ``lexsort`` on a ``'<U'`` id column matches Python's
``(distance, object_id)`` tuple ordering code point for code point.  The
test-suite asserts this across the whole scenario library.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.vec import Vec2, as_vec, distance
from repro.spatial.grid import GridIndex
from repro.spatial.index import IndexedItem

#: Below this many objects the incremental per-object registration is
#: cheaper than staging a bulk rebuild (array round-trips have a fixed
#: cost); above it the first sync of a cold :class:`ScalarQueryEngine`
#: goes through :meth:`GridIndex.rebuild` in one pass.
_BULK_SYNC_THRESHOLD = 256

_logger = logging.getLogger(__name__)

_EMPTY_POS = np.empty((0, 2), dtype=float)
_EMPTY_CELLS = np.empty((0, 2), dtype=np.int64)
_EMPTY_IDS = np.empty(0, dtype="<U1")


class QueryEngine:
    """Columnar query answering over one shard's predicted positions.

    Parameters
    ----------
    cell_size:
        Edge length of a routing/pruning cell in metres.  Cells somewhat
        smaller than typical query extents give the best pruning; 500 m
        works well across the scenario library.
    """

    def __init__(self, cell_size: float = 500.0):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._ids: List[str] = []
        self._rows: Dict[str, int] = {}
        self._id_col: np.ndarray = _EMPTY_IDS
        self._pos: np.ndarray = _EMPTY_POS
        self._cells: np.ndarray = _EMPTY_CELLS
        #: Simulation time of the last :meth:`sync` (``None`` before the first).
        self.synced_time: Optional[float] = None
        #: Cumulative sync statistics (diagnostics / load counters).
        self.syncs = 0
        self.moves = 0
        self.drops = 0

    def __len__(self) -> int:
        return len(self._ids)

    def object_ids(self) -> List[str]:
        """Ids currently held by the engine (insertion order)."""
        return list(self._ids)

    def position_of(self, object_id: str) -> np.ndarray:
        """The exact position of *object_id* as of the last sync.

        Returned as a **read-only view** into the position column: callers
        may not mutate it (doing so would silently corrupt the index).
        """
        view = self._pos[self._rows[object_id]]
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------ #
    # columnar maintenance
    # ------------------------------------------------------------------ #
    def sync(self, positions: Mapping[str, np.ndarray], time: float) -> int:
        """Bring the columns up to date with *positions* at *time*.

        Objects absent from *positions* are dropped; the return value
        counts re-homed rows (new objects plus objects whose position moved
        into a different cell), matching :class:`ScalarQueryEngine`'s
        re-registration count bit for bit.

        The steady state — same object ids in the same order, only the
        positions moved — is one stacked array build, one floor-divide and
        one boolean-mask reduction; the drop scan and the row-table rebuild
        are skipped entirely.
        """
        object_ids = list(positions.keys())
        n = len(object_ids)
        if n == 0:
            self.drops += len(self._ids)
            self._ids = []
            self._rows = {}
            self._id_col = _EMPTY_IDS
            self._pos = _EMPTY_POS
            self._cells = _EMPTY_CELLS
            self.synced_time = float(time)
            self.syncs += 1
            return 0
        stacked = np.array(list(positions.values()), dtype=float)
        cells = np.floor(stacked / self.cell_size).astype(np.int64)
        if object_ids == self._ids:
            # Fast path: unchanged membership.  Nothing can have been
            # dropped, so the drop scan is skipped; moved rows fall out of
            # one vectorised cell comparison.
            moved = int(np.count_nonzero((cells != self._cells).any(axis=1)))
        elif not self._ids:
            moved = n
            self._install_rows(object_ids)
        else:
            moved = 0
            retained = 0
            old_rows = self._rows
            old_cells = self._cells
            for row, object_id in enumerate(object_ids):
                old = old_rows.get(object_id)
                if old is None:
                    moved += 1
                else:
                    retained += 1
                    if (
                        old_cells[old, 0] != cells[row, 0]
                        or old_cells[old, 1] != cells[row, 1]
                    ):
                        moved += 1
            self.drops += len(self._ids) - retained
            self._install_rows(object_ids)
        self._pos = stacked
        self._cells = cells
        self.synced_time = float(time)
        self.syncs += 1
        self.moves += moved
        return moved

    def _install_rows(self, object_ids: List[str]) -> None:
        self._ids = object_ids
        self._rows = {object_id: row for row, object_id in enumerate(object_ids)}
        self._id_col = np.array(object_ids)

    # ------------------------------------------------------------------ #
    # vectorised query kernels
    # ------------------------------------------------------------------ #
    def candidates_in_box(self, box: BoundingBox) -> List[str]:
        """Ids whose routing *cell* intersects *box* (cheap superset).

        Callers that refine per object (e.g. accuracy-margin range queries)
        use this; everyone else wants :meth:`range_query`.
        """
        if not self._ids:
            return []
        size = self.cell_size
        cx = self._cells[:, 0]
        cy = self._cells[:, 1]
        mask = (
            (cx * size <= box.max_x)
            & ((cx + 1) * size >= box.min_x)
            & (cy * size <= box.max_y)
            & ((cy + 1) * size >= box.min_y)
        )
        ids = self._ids
        return [ids[row] for row in np.nonzero(mask)[0]]

    def ids_in_box(self, box: BoundingBox) -> List[str]:
        """Ids whose exact position lies inside *box*, in row order."""
        if not self._ids:
            return []
        x = self._pos[:, 0]
        y = self._pos[:, 1]
        mask = (x >= box.min_x) & (x <= box.max_x) & (y >= box.min_y) & (y <= box.max_y)
        ids = self._ids
        return [ids[row] for row in np.nonzero(mask)[0]]

    def range_query(self, box: BoundingBox) -> List[str]:
        """Ids whose exact position lies inside *box*, sorted."""
        return sorted(self.ids_in_box(box))

    def k_nearest(self, point: Vec2, k: int) -> List[Tuple[str, float]]:
        """The *k* objects closest to *point*, tie-broken by ``(d, id)``.

        ``argpartition`` alone resolves ties at the k-th place arbitrarily,
        so the kernel expands the candidate set to *every* row at the
        boundary distance before the ``(distance, id)`` lexsort — the
        answer is independent of row order, like the scalar engine's
        re-fetch within the k-th distance.
        """
        n = len(self._ids)
        if k <= 0 or n == 0:
            return []
        d = self._distances(as_vec(point))
        if k < n:
            part = np.argpartition(d, k - 1)[:k]
            boundary = d[part].max()
            candidates = np.nonzero(d <= boundary)[0]
        else:
            candidates = np.arange(n)
        order = np.lexsort((self._id_col[candidates], d[candidates]))
        ids = self._ids
        return [(ids[row], float(d[row])) for row in candidates[order[:k]]]

    def within_radius(self, point: Vec2, radius: float) -> List[Tuple[str, float]]:
        """Objects within *radius* of *point* (geofence), sorted by ``(d, id)``."""
        if radius < 0 or not self._ids:
            return []
        d = self._distances(as_vec(point))
        hits = np.nonzero(d <= radius)[0]
        order = np.lexsort((self._id_col[hits], d[hits]))
        ids = self._ids
        return [(ids[row], float(d[row])) for row in hits[order]]

    def _distances(self, p: np.ndarray) -> np.ndarray:
        # Exact replica of repro.geo.vec.distance's arithmetic order
        # (sqrt(dx*dx + dy*dy)); np.hypot would NOT be bit-identical.
        dx = self._pos[:, 0] - p[0]
        dy = self._pos[:, 1] - p[1]
        return np.sqrt(dx * dx + dy * dy)


class ScalarQueryEngine:
    """PR 3's incremental :class:`GridIndex` engine, kept as the reference.

    Maintains per-object dict state and answers queries by refining
    cell-level candidates item by item.  :class:`QueryEngine` (columnar) is
    asserted bit-identical to this engine across the scenario library; the
    benchmark suite measures the columnar speedup against it.

    The engine is *incremental*: each :meth:`sync` diffs the new predicted
    positions against the previous snapshot and only re-registers objects
    whose position moved into a different index cell.  Items are stored
    with their covering cell as bounding box (always current by
    construction) and a distance callback that reads the object's *exact*
    current position, so every query refines its cell-level candidates to
    exact answers.
    """

    def __init__(self, cell_size: float = 500.0):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._index: GridIndex[str] = GridIndex(cell_size=cell_size)
        self._positions: Dict[str, np.ndarray] = {}
        self._cells: Dict[str, Tuple[int, int]] = {}
        #: Simulation time of the last :meth:`sync` (``None`` before the first).
        self.synced_time: Optional[float] = None
        #: Cumulative sync statistics (diagnostics / load counters).
        self.syncs = 0
        self.moves = 0
        self.drops = 0

    def __len__(self) -> int:
        return len(self._positions)

    def object_ids(self) -> List[str]:
        """Ids currently held by the engine (insertion order)."""
        return list(self._positions)

    def position_of(self, object_id: str) -> np.ndarray:
        """The exact position of *object_id* as of the last sync (read-only)."""
        view = self._positions[object_id][...]
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------ #
    # incremental maintenance
    # ------------------------------------------------------------------ #
    def sync(self, positions: Mapping[str, np.ndarray], time: float) -> int:
        """Bring the index up to date with *positions* at *time*.

        Objects absent from *positions* are dropped; objects whose position
        moved into a different cell are re-registered; objects that stayed
        in their cell only get their exact position refreshed (their index
        entry — cell bounds plus position-reading distance callback — is
        still valid).  Returns the number of re-registered objects.
        """
        moved = 0
        if not self._cells and len(positions) >= _BULK_SYNC_THRESHOLD:
            return self._bulk_sync(positions, time)
        # Skip the drop pass when the membership is unchanged — the common
        # steady state.  Keys-view equality runs the length check plus the
        # set comparison in C, cheaper than building the drop list.
        same_membership = positions.keys() == self._cells.keys()
        if not same_membership:
            for object_id in [oid for oid in self._cells if oid not in positions]:
                self._index.remove(object_id)
                del self._cells[object_id]
                del self._positions[object_id]
                self.drops += 1
        for object_id, position in positions.items():
            self._positions[object_id] = position
            cell = self._cell_of(position)
            if self._cells.get(object_id) == cell:
                continue
            if object_id in self._cells:
                self._index.remove(object_id)
            self._index.insert(
                IndexedItem(
                    key=object_id,
                    bounds=self._cell_box(cell),
                    distance=self._distance_to(object_id),
                )
            )
            self._cells[object_id] = cell
            moved += 1
        self.synced_time = float(time)
        self.syncs += 1
        self.moves += moved
        return moved

    def _bulk_sync(self, positions: Mapping[str, np.ndarray], time: float) -> int:
        """First big sync: register every object through one index rebuild.

        Equivalent to the incremental loop above for an empty engine (same
        registration order, hence the same index serials and query answers,
        asserted by the test-suite), but it computes every object's cell in
        one vectorised pass and hands the whole item list to
        :meth:`~repro.spatial.grid.GridIndex.rebuild` instead of paying the
        per-item ``insert`` bookkeeping N times — the difference between a
        sub-second and a multi-second cold start at mega-fleet sizes.
        """
        object_ids = list(positions)
        stacked = np.array([positions[oid] for oid in object_ids], dtype=float)
        cell_rows = np.floor(stacked / self.cell_size).astype(np.int64).tolist()
        items = []
        for object_id, (cx, cy) in zip(object_ids, cell_rows):
            cell = (cx, cy)
            self._positions[object_id] = positions[object_id]
            self._cells[object_id] = cell
            items.append(
                IndexedItem(
                    key=object_id,
                    bounds=self._cell_box(cell),
                    distance=self._distance_to(object_id),
                )
            )
        self._index.rebuild(items)
        moved = len(items)
        _logger.debug(
            "bulk sync: rebuilt index with %d objects at t=%g", moved, time
        )
        self.synced_time = float(time)
        self.syncs += 1
        self.moves += moved
        return moved

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def candidates_in_box(self, box: BoundingBox) -> List[str]:
        """Ids whose index *cell* intersects *box* (cheap superset)."""
        return [item.key for item in self._index.query_bbox(box)]

    def ids_in_box(self, box: BoundingBox) -> List[str]:
        """Ids whose exact position lies inside *box* (unsorted)."""
        positions = self._positions
        return [
            item.key
            for item in self._index.query_bbox(box)
            if box.contains_point(positions[item.key])
        ]

    def range_query(self, box: BoundingBox) -> List[str]:
        """Ids whose exact position lies inside *box*, sorted."""
        return sorted(self.ids_in_box(box))

    def k_nearest(self, point: Vec2, k: int) -> List[Tuple[str, float]]:
        """The *k* objects closest to *point*, tie-broken by ``(d, id)``.

        The underlying index resolves ties arbitrarily at the k-th place, so
        when the candidate list is full the engine re-fetches everything
        within the k-th distance and re-sorts — the answer is independent of
        insertion order.
        """
        if k <= 0 or not self._positions:
            return []
        p = as_vec(point)
        top = self._index.k_nearest(p, k)
        if len(top) == k:
            boundary = top[-1][1]
            items = self._index.query_radius(p, boundary)
        else:
            items = [item for item, _ in top]
        scored = sorted(
            ((item.key, distance(self._positions[item.key], p)) for item in items),
            key=lambda pair: (pair[1], pair[0]),
        )
        return scored[:k]

    def within_radius(self, point: Vec2, radius: float) -> List[Tuple[str, float]]:
        """Objects within *radius* of *point* (geofence), sorted by ``(d, id)``."""
        if radius < 0 or not self._positions:
            return []
        p = as_vec(point)
        positions = self._positions
        scored = []
        for item in self._index.query_bbox(BoundingBox.around(p, radius)):
            d = distance(positions[item.key], p)
            if d <= radius:
                scored.append((item.key, d))
        scored.sort(key=lambda pair: (pair[1], pair[0]))
        return scored

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _cell_of(self, position: np.ndarray) -> Tuple[int, int]:
        size = self.cell_size
        return (int(np.floor(position[0] / size)), int(np.floor(position[1] / size)))

    def _cell_box(self, cell: Tuple[int, int]) -> BoundingBox:
        size = self.cell_size
        return BoundingBox(
            cell[0] * size, cell[1] * size, (cell[0] + 1) * size, (cell[1] + 1) * size
        )

    def _distance_to(self, object_id: str):
        positions = self._positions
        return lambda q, _oid=object_id: distance(positions[_oid], q)


#: Engine registry used by the facade's ``engine=`` selector.
ENGINE_KINDS = {
    "columnar": QueryEngine,
    "scalar": ScalarQueryEngine,
}
