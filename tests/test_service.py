"""Unit tests for the location-service substrate (channel, server, source, queries)."""

import numpy as np
import pytest

from repro.geo.bbox import BoundingBox
from repro.protocols.base import ObjectState, UpdateMessage, UpdateReason
from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.prediction import LinearPrediction, StaticPrediction
from repro.service.channel import MessageChannel
from repro.service.queries import (
    geofence_query,
    nearest_object_query,
    position_query,
    range_query,
)
from repro.service.server import LocationServer
from repro.service.source import LocationSource


def make_message(sequence=0, time=0.0, position=(0.0, 0.0), velocity=(10.0, 0.0), link_id=None):
    state = ObjectState(
        time=time, position=position, velocity=velocity,
        speed=float(np.hypot(*velocity)), link_id=link_id,
    )
    return UpdateMessage(sequence=sequence, state=state, reason=UpdateReason.THRESHOLD)


class TestMessageChannel:
    def test_validation(self):
        with pytest.raises(ValueError):
            MessageChannel(latency=-1.0)
        with pytest.raises(ValueError):
            MessageChannel(loss_probability=1.0)

    def test_instant_delivery(self):
        channel = MessageChannel()
        channel.send("obj", make_message(), time=5.0)
        delivered = channel.deliver_due(5.0)
        assert len(delivered) == 1
        assert delivered[0][0] == "obj"
        assert channel.stats.messages_delivered == 1

    def test_latency_delays_delivery(self):
        channel = MessageChannel(latency=2.0)
        channel.send("obj", make_message(), time=0.0)
        assert channel.deliver_due(1.0) == []
        assert channel.in_flight == 1
        assert len(channel.deliver_due(2.0)) == 1

    def test_loss(self):
        channel = MessageChannel(loss_probability=0.5, seed=0)
        for i in range(200):
            channel.send("obj", make_message(sequence=i), time=float(i))
        channel.deliver_due(1e9)
        assert channel.stats.messages_lost > 0
        assert channel.stats.messages_delivered + channel.stats.messages_lost == 200
        assert 0.3 < channel.stats.loss_rate < 0.7

    def test_byte_accounting(self):
        channel = MessageChannel()
        message = make_message()
        channel.send("obj", message, time=0.0)
        channel.deliver_due(0.0)
        assert channel.stats.bytes_sent == message.size_bytes
        assert channel.stats.bytes_delivered == message.size_bytes

    def test_loss_rate_empty(self):
        assert MessageChannel().stats.loss_rate == 0.0


class TestLocationServer:
    def test_register_twice_rejected(self):
        server = LocationServer()
        server.register_object("a")
        with pytest.raises(ValueError):
            server.register_object("a")

    def test_predict_before_update_is_none(self):
        server = LocationServer()
        server.register_object("a", prediction=LinearPrediction())
        assert server.predict_position("a", 10.0) is None

    def test_receive_and_predict(self):
        server = LocationServer()
        server.register_object("a", prediction=LinearPrediction(), accuracy=100.0)
        server.receive_update("a", make_message(time=0.0, velocity=(10.0, 0.0)), time=0.0)
        predicted = server.predict_position("a", 5.0)
        np.testing.assert_allclose(predicted, [50.0, 0.0])
        record = server.tracked_object("a")
        assert record.updates_received == 1
        assert record.last_update_time == 0.0

    def test_static_prediction_default(self):
        server = LocationServer()
        server.register_object("a")
        server.receive_update("a", make_message(position=(7.0, 8.0)), time=0.0)
        np.testing.assert_allclose(server.predict_position("a", 100.0), [7.0, 8.0])

    def test_all_positions_skips_silent_objects(self):
        server = LocationServer()
        server.register_object("a")
        server.register_object("b")
        server.receive_update("a", make_message(position=(1.0, 1.0)), time=0.0)
        positions = server.all_positions(0.0)
        assert set(positions) == {"a"}

    def test_is_registered_and_ids(self):
        server = LocationServer()
        server.register_object("x")
        assert server.is_registered("x")
        assert not server.is_registered("y")
        assert server.object_ids() == ["x"]

    def test_adopt_and_remove_move_records_between_servers(self):
        """The shard-handoff primitives preserve the record wholesale."""
        a, b = LocationServer(), LocationServer()
        a.register_object("car", prediction=StaticPrediction(), accuracy=30.0)
        a.receive_update("car", make_message(position=(3.0, 4.0)), time=5.0)
        record = a.remove_object("car")
        assert not a.is_registered("car")
        b.adopt(record)
        assert b.is_registered("car")
        moved = b.tracked_object("car")
        assert moved is record
        assert moved.updates_received == 1
        assert moved.last_update_time == 5.0
        with pytest.raises(ValueError):
            b.adopt(record)


class TestLocationSource:
    def test_source_transmits_protocol_updates(self, straight_trace):
        protocol = LinearPredictionProtocol(accuracy=50.0, estimation_window=2)
        channel = MessageChannel()
        source = LocationSource("car-1", protocol, channel)
        for sample in straight_trace:
            source.process_sighting(sample.time, sample.position)
        assert source.updates_sent == protocol.updates_sent
        assert channel.stats.messages_sent == source.updates_sent
        assert len(source.sent_messages) == source.updates_sent

    def test_default_channel_created(self):
        source = LocationSource("car-2", LinearPredictionProtocol(accuracy=100.0))
        message = source.process_sighting(0.0, (0.0, 0.0))
        assert message is not None
        assert source.channel.stats.messages_sent == 1


class TestQueries:
    @pytest.fixture()
    def populated_server(self):
        server = LocationServer()
        for name, position in (
            ("taxi-1", (0.0, 0.0)),
            ("taxi-2", (100.0, 0.0)),
            ("taxi-3", (1000.0, 1000.0)),
        ):
            server.register_object(name, prediction=StaticPrediction(), accuracy=50.0)
            server.receive_update(name, make_message(position=position, velocity=(0.0, 0.0)), 0.0)
        server.register_object("silent", prediction=StaticPrediction(), accuracy=50.0)
        return server

    def test_position_query(self, populated_server):
        result = position_query(populated_server, "taxi-2", time=10.0)
        np.testing.assert_allclose(result.position, [100.0, 0.0])
        assert result.accuracy == 50.0
        assert result.last_update_time == 0.0

    def test_position_query_silent_object(self, populated_server):
        result = position_query(populated_server, "silent", time=10.0)
        assert result.position is None

    def test_range_query(self, populated_server):
        inside = range_query(populated_server, BoundingBox(-10.0, -10.0, 150.0, 10.0), time=0.0)
        assert inside == ["taxi-1", "taxi-2"]

    def test_range_query_with_margin(self, populated_server):
        # taxi-2 at x=100 is outside the box [0, 60] but within one accuracy
        # radius (50 m) of it.
        strict = range_query(populated_server, BoundingBox(0.0, -10.0, 60.0, 10.0), time=0.0)
        generous = range_query(
            populated_server, BoundingBox(0.0, -10.0, 60.0, 10.0), time=0.0, margin=1.0
        )
        assert "taxi-2" not in strict
        assert "taxi-2" in generous

    def test_nearest_object_query(self, populated_server):
        nearest = nearest_object_query(populated_server, (90.0, 0.0), time=0.0, k=2)
        assert [name for name, _ in nearest] == ["taxi-2", "taxi-1"]
        assert nearest[0][1] == pytest.approx(10.0)

    def test_nearest_object_query_k_zero(self, populated_server):
        assert nearest_object_query(populated_server, (0.0, 0.0), time=0.0, k=0) == []

    def test_nearest_tie_break_by_object_id(self):
        """Equidistant objects sort by id, independent of registration order."""
        for order in (("z", "m", "a"), ("a", "m", "z"), ("m", "z", "a")):
            server = LocationServer()
            offsets = {"z": (10.0, 0.0), "m": (-10.0, 0.0), "a": (0.0, 10.0)}
            for name in order:
                server.register_object(name, prediction=StaticPrediction())
                server.receive_update(name, make_message(position=offsets[name]), 0.0)
            nearest = nearest_object_query(server, (0.0, 0.0), time=0.0, k=2)
            assert [name for name, _ in nearest] == ["a", "m"]

    def test_geofence_query(self, populated_server):
        hits = geofence_query(populated_server, (0.0, 0.0), 150.0, time=0.0)
        assert [name for name, _ in hits] == ["taxi-1", "taxi-2"]
        assert hits[0][1] == pytest.approx(0.0)
        assert hits[1][1] == pytest.approx(100.0)

    def test_geofence_negative_radius_is_empty(self, populated_server):
        assert geofence_query(populated_server, (0.0, 0.0), -5.0, time=0.0) == []


class TestQueryEdgeCases:
    """Satellite regressions: unknown ids and empty servers are well-defined."""

    def test_position_query_unknown_object(self):
        server = LocationServer()
        result = position_query(server, "ghost", time=0.0)
        assert result.object_id == "ghost"
        assert result.position is None
        assert result.accuracy == float("inf")
        assert result.last_update_time is None

    def test_queries_on_empty_server(self):
        server = LocationServer()
        box = BoundingBox(-100.0, -100.0, 100.0, 100.0)
        assert range_query(server, box, time=0.0) == []
        assert nearest_object_query(server, (0.0, 0.0), time=0.0, k=5) == []
        assert geofence_query(server, (0.0, 0.0), 100.0, time=0.0) == []

    def test_queries_before_any_update(self):
        server = LocationServer()
        server.register_object("quiet", prediction=StaticPrediction(), accuracy=25.0)
        box = BoundingBox(-100.0, -100.0, 100.0, 100.0)
        assert range_query(server, box, time=0.0, margin=1.0) == []
        assert nearest_object_query(server, (0.0, 0.0), time=0.0) == []
        assert geofence_query(server, (0.0, 0.0), 1e6, time=0.0) == []
        result = position_query(server, "quiet", time=0.0)
        assert result.position is None
        assert result.accuracy == 25.0
