"""Unit tests for the experiment harness (tables, figures, ablations, report)."""

import json

import numpy as np
import pytest

from repro.experiments import report
from repro.experiments.figures import (
    FIGURE_PROTOCOLS,
    FigureResult,
    FigureSeries,
    figure_for_scenario,
)
from repro.experiments.scenarios import clear_scenario_cache, get_scenario
from repro.experiments.tables import PAPER_TABLE1, table1
from repro.mobility.scenarios import ScenarioName
from repro.sim.metrics import AccuracyMetrics, SimulationResult
from repro.sim.sweep import SweepPoint


def make_point(us, updates_per_hour):
    result = SimulationResult(
        protocol_name="p", accuracy=us, duration_h=1.0,
        updates=int(updates_per_hour), bytes_sent=0, metrics=AccuracyMetrics(),
    )
    return SweepPoint(accuracy=us, result=result)


def make_figure():
    series = {
        "distance": FigureSeries(
            "distance", "distance-based reporting",
            [make_point(50.0, 200.0), make_point(100.0, 100.0)],
        ),
        "linear": FigureSeries(
            "linear", "linear-pred dr",
            [make_point(50.0, 80.0), make_point(100.0, 50.0)],
        ),
        "map": FigureSeries(
            "map", "map-based dr",
            [make_point(50.0, 40.0), make_point(100.0, 20.0)],
        ),
    }
    return FigureResult(scenario_name="freeway", description="test", series=series)


class TestFigureDataStructures:
    def test_relative_series(self):
        figure = make_figure()
        relative = figure.relative_series()
        assert relative["linear"] == [pytest.approx(40.0), pytest.approx(50.0)]
        assert relative["map"] == [pytest.approx(20.0), pytest.approx(20.0)]

    def test_reduction_vs_baseline(self):
        figure = make_figure()
        assert figure.reduction_vs_baseline("linear") == pytest.approx(60.0)
        assert figure.reduction_vs_baseline("map") == pytest.approx(80.0)

    def test_reduction_between(self):
        figure = make_figure()
        assert figure.reduction_between("map", "linear") == pytest.approx(60.0)

    def test_as_rows(self):
        rows = make_figure().as_rows()
        assert len(rows) == 2
        assert rows[0]["us [m]"] == 50.0
        assert any("map-based dr" in key for key in rows[0])

    def test_zero_baseline_handled(self):
        series = {
            "distance": FigureSeries("distance", "d", [make_point(50.0, 0.0)]),
            "linear": FigureSeries("linear", "l", [make_point(50.0, 0.0)]),
            "map": FigureSeries("map", "m", [make_point(50.0, 0.0)]),
        }
        figure = FigureResult("x", "x", series)
        assert figure.relative_series()["linear"] == [0.0]
        assert figure.reduction_between("map", "linear") == 0.0


class TestFigureForScenario:
    def test_series_structure(self, tiny_freeway_scenario):
        figure = figure_for_scenario(
            tiny_freeway_scenario, accuracies=[100.0, 300.0]
        )
        assert set(figure.series) == set(FIGURE_PROTOCOLS)
        for series in figure.series.values():
            assert series.accuracies == [100.0, 300.0]
            assert all(u >= 0 for u in series.updates_per_hour)

    def test_protocol_ordering_freeway(self, tiny_freeway_scenario):
        figure = figure_for_scenario(tiny_freeway_scenario, accuracies=[100.0])
        distance = figure.series["distance"].updates_per_hour[0]
        linear = figure.series["linear"].updates_per_hour[0]
        mapped = figure.series["map"].updates_per_hour[0]
        assert mapped < linear < distance


class TestTables:
    def test_paper_reference_values_present(self):
        assert set(PAPER_TABLE1) == {s.value for s in ScenarioName}
        for values in PAPER_TABLE1.values():
            assert values["length_km"] > 0

    def test_table1_structure(self):
        clear_scenario_cache()
        rows = table1(scale=0.04)
        assert len(rows) == 4
        for row in rows:
            d = row.as_dict()
            assert d["length [km]"] > 0
            assert d["avg speed [km/h]"] > 0
        clear_scenario_cache()

    def test_table1_speeds_are_intensive(self):
        clear_scenario_cache()
        rows = {r.scenario: r for r in table1(scale=0.04)}
        freeway = rows["car on a freeway"]
        walking = rows["walking person"]
        # Average speeds should be in the right ballpark regardless of scale.
        assert freeway.measured.average_speed_kmh == pytest.approx(
            freeway.paper["average_speed_kmh"], rel=0.25
        )
        assert walking.measured.average_speed_kmh == pytest.approx(
            walking.paper["average_speed_kmh"], rel=0.35
        )
        clear_scenario_cache()


class TestScenarioCache:
    def test_cache_returns_same_object(self):
        clear_scenario_cache()
        a = get_scenario(ScenarioName.WALKING, scale=0.05)
        b = get_scenario("walking", scale=0.05)
        assert a is b
        clear_scenario_cache()
        c = get_scenario(ScenarioName.WALKING, scale=0.05)
        assert c is not a
        clear_scenario_cache()


class TestReport:
    def test_format_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = report.format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_empty(self):
        assert "(no data)" in report.format_table([], title="empty")

    def test_format_series_chart(self):
        chart = report.format_series_chart(
            [10.0, 20.0, 30.0],
            {"one": [1.0, 2.0, 3.0], "two": [3.0, 2.0, 1.0]},
            width=20,
            height=5,
        )
        assert "one" in chart and "two" in chart
        assert "us [m]" in chart

    def test_format_series_chart_empty(self):
        assert report.format_series_chart([], {}) == "(no data)"

    def test_to_json_handles_numpy(self):
        data = {"value": np.float64(1.5), "array": np.array([1.0, 2.0])}
        parsed = json.loads(report.to_json(data))
        assert parsed["value"] == 1.5
        assert parsed["array"] == [1.0, 2.0]

    def test_to_json_rejects_unknown(self):
        with pytest.raises(TypeError):
            report.to_json({"x": object()})
