"""Experiment harness: regenerating the paper's tables and figures.

Every table and figure of the paper's evaluation (Sec. 4) has a runner here:

* Table 1 — :func:`repro.experiments.tables.table1`
* Fig. 3 / Fig. 6 — :func:`repro.experiments.figures.route_update_counts`
* Fig. 7 (freeway) — :func:`repro.experiments.figures.figure7`
* Fig. 8 (inter-urban) — :func:`repro.experiments.figures.figure8`
* Fig. 9 (city) — :func:`repro.experiments.figures.figure9`
* Fig. 10 (walking) — :func:`repro.experiments.figures.figure10`
* headline reductions quoted in the abstract — :func:`repro.experiments.figures.headline_reductions`

plus the ablations described in DESIGN.md (:mod:`repro.experiments.ablations`).
"""

from repro.experiments.scenarios import get_scenario, clear_scenario_cache
from repro.experiments.library import (
    FleetMix,
    GENERATED_SPECS,
    ScenarioEntry,
    build_library_scenario,
    describe_scenarios,
    fleet_lanes,
    get_entry,
    register_generated,
    register_scenario,
    scenario_names,
)
from repro.experiments.tables import table1
from repro.experiments.figures import (
    FigureSeries,
    FigureResult,
    figure7,
    figure8,
    figure9,
    figure10,
    figure_for_scenario,
    route_update_counts,
    headline_reductions,
)
from repro.experiments import ablations
from repro.experiments import report
from repro.experiments import visualize

__all__ = [
    "get_scenario",
    "clear_scenario_cache",
    "FleetMix",
    "GENERATED_SPECS",
    "ScenarioEntry",
    "build_library_scenario",
    "describe_scenarios",
    "fleet_lanes",
    "get_entry",
    "register_generated",
    "register_scenario",
    "scenario_names",
    "table1",
    "FigureSeries",
    "FigureResult",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure_for_scenario",
    "route_update_counts",
    "headline_reductions",
    "ablations",
    "report",
    "visualize",
]
