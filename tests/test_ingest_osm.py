"""Unit tests for repro.ingest.osm: parsing, tag normalisation, projection."""

import numpy as np
import pytest

from repro.geo.geodesy import haversine_distance
from repro.ingest.osm import (
    HIGHWAY_CLASSES,
    ONEWAY_BOTH,
    ONEWAY_FORWARD,
    ONEWAY_REVERSE,
    load_osm,
    parse_maxspeed,
    parse_oneway,
    parse_osm_json,
    parse_osm_xml,
    project_network,
)
from repro.ingest.fixtures import synthetic_town_json, synthetic_town_xml
from repro.roadmap.elements import RoadClass


# --------------------------------------------------------------------------- #
# tag normalisation
# --------------------------------------------------------------------------- #
class TestMaxspeed:
    @pytest.mark.parametrize(
        "value, expected_kmh",
        [
            ("50", 50.0),
            ("50 km/h", 50.0),
            ("50kmh", 50.0),
            ("30 mph", 30.0 * 1.609344),
            ("30mph", 30.0 * 1.609344),
            ("walk", 7.0),
            ("50; 30", 50.0),
        ],
    )
    def test_parses_units(self, value, expected_kmh):
        assert parse_maxspeed(value) == pytest.approx(expected_kmh / 3.6)

    @pytest.mark.parametrize(
        "value", [None, "", "none", "signals", "variable", "DE:urban", "fast", "-30", "0"]
    )
    def test_unusable_values_fall_back_to_class_default(self, value):
        assert parse_maxspeed(value) is None


class TestOneway:
    @pytest.mark.parametrize("value", ["yes", "true", "1", " YES "])
    def test_forward(self, value):
        assert parse_oneway({"highway": "residential", "oneway": value},
                            RoadClass.RESIDENTIAL) == ONEWAY_FORWARD

    @pytest.mark.parametrize("value", ["-1", "reverse"])
    def test_reverse(self, value):
        assert parse_oneway({"highway": "residential", "oneway": value},
                            RoadClass.RESIDENTIAL) == ONEWAY_REVERSE

    @pytest.mark.parametrize("value", ["no", "false", "0", ""])
    def test_two_way(self, value):
        assert parse_oneway({"highway": "residential", "oneway": value},
                            RoadClass.RESIDENTIAL) == ONEWAY_BOTH

    def test_motorway_implied_oneway(self):
        assert parse_oneway({"highway": "motorway"}, RoadClass.MOTORWAY) == ONEWAY_FORWARD
        assert parse_oneway({"highway": "motorway_link"}, RoadClass.MOTORWAY) == ONEWAY_FORWARD
        # ... unless explicitly two-way.
        assert parse_oneway({"highway": "motorway", "oneway": "no"},
                            RoadClass.MOTORWAY) == ONEWAY_BOTH

    def test_roundabout_implied_oneway(self):
        assert parse_oneway({"highway": "residential", "junction": "roundabout"},
                            RoadClass.RESIDENTIAL) == ONEWAY_FORWARD


class TestHighwayClasses:
    def test_all_mapped_values_are_road_classes(self):
        assert set(HIGHWAY_CLASSES.values()) <= set(RoadClass)

    @pytest.mark.parametrize(
        "highway, road_class",
        [
            ("motorway", RoadClass.MOTORWAY),
            ("trunk", RoadClass.MOTORWAY),
            ("primary", RoadClass.PRIMARY),
            ("tertiary", RoadClass.SECONDARY),
            ("residential", RoadClass.RESIDENTIAL),
            ("service", RoadClass.RESIDENTIAL),
            ("footway", RoadClass.FOOTPATH),
            ("steps", RoadClass.FOOTPATH),
        ],
    )
    def test_mapping(self, highway, road_class):
        assert HIGHWAY_CLASSES[highway] is road_class


# --------------------------------------------------------------------------- #
# XML parsing
# --------------------------------------------------------------------------- #
TINY_XML = """<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6">
  <node id="1" lat="48.70" lon="9.10"/>
  <node id="2" lat="48.70" lon="9.11"/>
  <node id="3" lat="48.71" lon="9.11"/>
  <node id="4" lat="48.72" lon="9.12"/>
  <way id="10">
    <nd ref="1"/>
    <nd ref="2"/>
    <nd ref="2"/>
    <nd ref="3"/>
    <nd ref="999"/>
    <tag k="highway" v="residential"/>
    <tag k="maxspeed" v="30"/>
    <tag k="name" v="Teststrasse"/>
  </way>
  <way id="11">
    <nd ref="3"/>
    <nd ref="1"/>
    <tag k="highway" v="primary"/>
    <tag k="oneway" v="-1"/>
  </way>
  <way id="12">
    <nd ref="1"/>
    <nd ref="4"/>
    <tag k="building" v="yes"/>
  </way>
  <way id="13">
    <nd ref="1"/>
    <nd ref="4"/>
    <tag k="highway" v="proposed"/>
  </way>
  <way id="14">
    <nd ref="999"/>
    <nd ref="998"/>
    <tag k="highway" v="residential"/>
  </way>
  <relation id="1">
    <member type="way" ref="10" role=""/>
  </relation>
</osm>
"""


class TestParseXml:
    def test_counts(self):
        network = parse_osm_xml(TINY_XML)
        stats = network.stats
        assert stats.nodes == 4
        assert stats.ways == 5
        assert stats.highway_ways == 4  # 10, 11, 13, 14
        assert stats.kept_ways == 2  # 10 and 11
        assert stats.skipped_unknown_class == 1  # proposed
        assert stats.skipped_degenerate == 1  # way 14: both refs missing
        assert stats.missing_node_refs == 3  # 999 in way 10, 999+998 in way 14

    def test_duplicate_and_missing_refs_are_dropped(self):
        network = parse_osm_xml(TINY_XML)
        way = next(w for w in network.ways if w.id == 10)
        assert way.nodes == (1, 2, 3)
        assert way.speed_limit == pytest.approx(30.0 / 3.6)
        assert way.name == "Teststrasse"

    def test_reverse_oneway_is_flipped_to_forward(self):
        network = parse_osm_xml(TINY_XML)
        way = next(w for w in network.ways if w.id == 11)
        assert way.nodes == (1, 3)
        assert way.oneway == ONEWAY_FORWARD
        assert way.road_class is RoadClass.PRIMARY

    def test_only_referenced_nodes_are_kept(self):
        network = parse_osm_xml(TINY_XML)
        assert set(network.nodes) == {1, 2, 3}

    def test_accepts_file_and_file_object(self, tmp_path):
        path = tmp_path / "tiny.osm"
        path.write_text(TINY_XML, encoding="utf-8")
        from_path = parse_osm_xml(path)
        with path.open("rb") as fh:
            from_object = parse_osm_xml(fh)
        assert from_path.stats.as_dict() == from_object.stats.as_dict()
        assert set(from_path.nodes) == set(from_object.nodes)


class TestLoadOsm:
    def test_sniffs_xml_text_path_and_object(self, tmp_path):
        xml = synthetic_town_xml(seed=3)
        path = tmp_path / "town.osm"
        path.write_text(xml, encoding="utf-8")
        for source in (xml, path, str(path)):
            network = load_osm(source)
            assert network.stats.kept_ways > 0
        with path.open("rb") as fh:
            assert load_osm(fh).stats.kept_ways > 0

    def test_sniffs_json(self, tmp_path):
        doc = synthetic_town_json(seed=3)
        path = tmp_path / "town.json"
        path.write_text(doc, encoding="utf-8")
        assert load_osm(doc).stats.kept_ways > 0
        assert load_osm(path).stats.kept_ways > 0

    def test_xml_and_json_fixtures_agree(self):
        from_xml = load_osm(synthetic_town_xml(seed=5))
        from_json = parse_osm_json(synthetic_town_json(seed=5))
        assert set(from_xml.nodes) == set(from_json.nodes)
        assert [w.nodes for w in from_xml.ways] == [w.nodes for w in from_json.ways]
        assert [w.road_class for w in from_xml.ways] == [
            w.road_class for w in from_json.ways
        ]
        assert [w.speed_limit for w in from_xml.ways] == [
            w.speed_limit for w in from_json.ways
        ]


# --------------------------------------------------------------------------- #
# projection
# --------------------------------------------------------------------------- #
class TestProjection:
    def test_default_origin_is_bbox_centre(self):
        network = parse_osm_xml(TINY_XML)
        projected = project_network(network)
        min_lat, min_lon, max_lat, max_lon = network.bounds_geodetic()
        assert projected.origin[0] == pytest.approx((min_lat + max_lat) / 2.0)
        assert projected.origin[1] == pytest.approx((min_lon + max_lon) / 2.0)

    def test_local_distances_match_haversine(self):
        network = parse_osm_xml(TINY_XML)
        projected = project_network(network)
        n1, n3 = network.nodes[1], network.nodes[3]
        local = float(np.hypot(*(projected.positions[1] - projected.positions[3])))
        geodesic = haversine_distance(n1.lat, n1.lon, n3.lat, n3.lon)
        # Equirectangular vs great-circle agree to well under sensor noise
        # over a ~1.5 km extent.
        assert local == pytest.approx(geodesic, rel=1e-4)

    def test_explicit_origin_gives_shared_frame(self):
        network = parse_osm_xml(TINY_XML)
        a = project_network(network, origin=(48.70, 9.10))
        assert a.origin == (48.70, 9.10)
        assert np.hypot(*a.positions[1]) < 1.0  # node 1 sits at the origin

    def test_empty_network_raises(self):
        empty = parse_osm_xml("<osm version='0.6'></osm>")
        with pytest.raises(ValueError, match="no usable highway network"):
            project_network(empty)
