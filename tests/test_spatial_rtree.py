"""Unit tests for repro.spatial.rtree."""

import random

import numpy as np
import pytest

from repro.geo.bbox import BoundingBox
from repro.geo.segment import Segment
from repro.spatial.grid import GridIndex
from repro.spatial.index import IndexedItem, brute_force_nearest
from repro.spatial.rtree import STRtree


def random_items(n, seed=0, extent=5000.0):
    rng = random.Random(seed)
    items = []
    for i in range(n):
        x, y = rng.uniform(0, extent), rng.uniform(0, extent)
        dx, dy = rng.uniform(-300, 300), rng.uniform(-300, 300)
        seg = Segment((x, y), (x + dx, y + dy))
        items.append(
            IndexedItem(key=i, bounds=BoundingBox(*seg.bounds()), distance=seg.distance_to)
        )
    return items


class TestConstruction:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            STRtree(node_capacity=1)

    def test_empty_tree(self):
        tree = STRtree()
        assert len(tree) == 0
        assert tree.height() == 0
        assert tree.query_bbox(BoundingBox(0, 0, 1, 1)) == []
        assert tree.nearest((0.0, 0.0)) is None

    def test_len_and_height(self):
        tree = STRtree(random_items(100), node_capacity=8)
        assert len(tree) == 100
        assert tree.height() >= 2

    def test_single_item(self):
        tree = STRtree(random_items(1))
        assert tree.height() == 1
        assert len(tree.query_bbox(BoundingBox(-1e6, -1e6, 1e6, 1e6))) == 1


class TestQueries:
    def test_query_bbox_matches_linear_scan(self):
        items = random_items(200, seed=1)
        tree = STRtree(items, node_capacity=10)
        box = BoundingBox(1000.0, 1000.0, 2500.0, 2500.0)
        expected = {item.key for item in items if item.bounds.intersects(box)}
        got = {item.key for item in tree.query_bbox(box)}
        assert got == expected

    def test_nearest_matches_brute_force(self):
        items = random_items(150, seed=2)
        tree = STRtree(items)
        for query in [(0.0, 0.0), (2500.0, 2500.0), (4999.0, 10.0), (-500.0, 6000.0)]:
            expected = brute_force_nearest(items, query)
            got = tree.nearest(query)
            assert got is not None and expected is not None
            assert got[1] == pytest.approx(expected[1])

    def test_agrees_with_grid_index(self):
        items = random_items(300, seed=3)
        tree = STRtree(items)
        grid = GridIndex(cell_size=400.0, items=items)
        rng = random.Random(7)
        for _ in range(25):
            q = (rng.uniform(-500, 5500), rng.uniform(-500, 5500))
            t = tree.nearest(q)
            g = grid.nearest(q)
            assert t is not None and g is not None
            assert t[1] == pytest.approx(g[1], abs=1e-9)

    def test_insert_after_build_is_found(self):
        items = random_items(50, seed=4)
        tree = STRtree(items)
        far = IndexedItem(
            key="extra",
            bounds=BoundingBox(100000.0, 100000.0, 100010.0, 100010.0),
            distance=lambda p: float(np.hypot(p[0] - 100005.0, p[1] - 100005.0)),
        )
        tree.insert(far)
        assert len(tree) == 51
        found = tree.nearest((100004.0, 100004.0))
        assert found is not None
        assert found[0].key == "extra"

    def test_query_radius(self):
        items = random_items(100, seed=5)
        tree = STRtree(items)
        hits = tree.query_radius((2500.0, 2500.0), 800.0)
        for item in hits:
            assert item.distance((2500.0, 2500.0)) <= 800.0
        expected = {i.key for i in items if i.distance((2500.0, 2500.0)) <= 800.0}
        assert {i.key for i in hits} == expected
