"""Contraction-hierarchy routing: offline preprocessing, sub-ms queries.

``RoutePlanner.shortest_route`` answers one query with one Dijkstra run —
fine for town fixtures, hopeless for metro-scale imports where a single
query visits hundreds of thousands of nodes.  This module adds the classic
two-phase alternative (Geisberger et al.'s contraction hierarchies):

* **offline** — :meth:`ContractionHierarchy.build` contracts nodes in
  importance order (edge difference + deleted-neighbour + hierarchy-depth
  terms, lazily re-evaluated on pop, ties broken by node id), inserting a shortcut
  ``u → w`` with cost ``c(u,v) + c(v,w)`` only when a *witness search*
  proves no better path survives the removal of ``v``;
* **online** — :meth:`ContractionHierarchy.query` runs two upward
  Dijkstra searches (forward from the source, backward over reversed
  edges from the target), meets in the middle, and unpacks every shortcut
  back to the exact original link sequence, so the :class:`Route` handed
  to the mobility layer and the known-route protocol is indistinguishable
  from one planned by plain Dijkstra.

Determinism and bit-identity
----------------------------
Every path cost is a lexicographically compared pair ``(cost, tie)``:
``cost`` is the float sum of link weights and ``tie`` an exact integer sum
of per-link tie keys derived from the link's endpoint node ids
(:func:`link_tie_key`).  The tie component makes the optimum unique, so
equal-cost ties are broken identically — and platform-independently — by
the reference Dijkstra and the hierarchy query, which is what lets the
test suite assert *path* identity, not just cost identity.  Reported costs
are always re-accumulated left-to-right over the unpacked original links
(exactly the association order of Dijkstra's label updates), so the two
engines agree bitwise even though shortcut weights are pre-summed.

The module works on :class:`RoutingGraph`, a compact adjacency-list view
that can be extracted from a :class:`~repro.roadmap.graph.RoadMap` or
streamed straight out of a tiled big-map store
(:mod:`repro.ingest.tiles`) without materialising link geometry.
"""

from __future__ import annotations

import time
from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "RoutingGraph",
    "ContractionHierarchy",
    "PlannedPath",
    "link_tie_key",
    "dijkstra_path",
]

_M64 = (1 << 64) - 1
#: Tie keys are masked to 40 bits so that the exact integer sum along any
#: realistic path (millions of links) stays below 2**63 — small enough for
#: int64 array serialisation, large enough that two distinct equal-cost
#: paths virtually never share a sum.
_TIE_MASK = (1 << 40) - 1

#: File-format version of :meth:`ContractionHierarchy.to_dict`; part of the
#: cache key story — a bump makes every persisted hierarchy rebuild.
CH_FORMAT_VERSION = 1


def link_tie_key(from_node: int, to_node: int) -> int:
    """Deterministic tie key of a link, derived from its endpoint node ids.

    A splitmix64-style bit mix: stable across platforms and Python builds
    (unlike ``hash``), uniform enough that the integer sum of keys along a
    path is unique among equal-cost alternatives.
    """
    x = (from_node * 0x9E3779B97F4A7C15 + to_node * 0xC2B2AE3D27D4EB4F + 0x165667B19E3779F9) & _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return x & _TIE_MASK


class PlannedPath:
    """The result of one shortest-path query.

    ``cost`` is the left-to-right float sum of link weights along the path
    (bit-identical between engines), ``tie`` the exact integer tie-key sum
    that broke any equal-cost ties, ``nodes`` the intersection ids visited
    and ``links`` the link ids traversed (empty for a source == target
    query).

    ``nodes`` is materialised lazily: most consumers (route construction,
    benchmark identity checks) work from ``links`` alone, and on big maps
    the node list is an extra O(path) pass that would otherwise be paid
    inside the sub-millisecond query budget.
    """

    __slots__ = ("cost", "tie", "links", "_nodes", "_graph")

    def __init__(
        self,
        cost: float,
        tie: int,
        links: List[int],
        nodes: Optional[List[int]] = None,
        graph: Optional["RoutingGraph"] = None,
    ):
        self.cost = cost
        self.tie = tie
        self.links = links
        self._nodes = nodes
        self._graph = graph

    @property
    def nodes(self) -> List[int]:
        if self._nodes is None:
            self._nodes = self._graph.nodes_of_path(self.links)
        return self._nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlannedPath(cost={self.cost:.1f}, {len(self.links)} links)"


class RoutingGraph:
    """Compact directed routing graph: dense indices, composite weights.

    Nodes are re-indexed ``0 .. n-1`` in ascending original-id order (the
    deterministic baseline every tie-break builds on).  Parallel links
    between the same node pair are collapsed to the cheapest one by
    ``(weight, link id)`` — the others can never lie on a canonical
    shortest path — and self-loops are dropped entirely.
    """

    __slots__ = ("weight", "node_ids", "index_of", "out_edges", "in_edges", "link_info")

    def __init__(self, weight: str, node_ids: Sequence[int]):
        self.weight = weight
        self.node_ids: List[int] = list(node_ids)
        self.index_of: Dict[int, int] = {nid: i for i, nid in enumerate(self.node_ids)}
        n = len(self.node_ids)
        #: per node: list of ``(w, tie, to_idx, link_id)``
        self.out_edges: List[List[Tuple[float, int, int, int]]] = [[] for _ in range(n)]
        self.in_edges: List[List[Tuple[float, int, int, int]]] = [[] for _ in range(n)]
        #: link id -> ``(w, tie, from_idx, to_idx)``
        self.link_info: Dict[int, Tuple[float, int, int, int]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_links(
        cls,
        weight: str,
        links: Iterable[Tuple[int, int, int, float]],
    ) -> "RoutingGraph":
        """Build from ``(link_id, from_node, to_node, weight)`` tuples.

        Link order does not matter: edges are inserted in sorted
        ``(from, to, link_id)`` order so two producers of the same link set
        build the identical graph.
        """
        rows = sorted(links, key=lambda r: (r[1], r[2], r[0]))
        node_ids = sorted({r[1] for r in rows} | {r[2] for r in rows})
        graph = cls(weight, node_ids)
        index_of = graph.index_of
        best: Dict[Tuple[int, int], Tuple[float, int, int, int]] = {}
        for link_id, a, b, w in rows:
            if a == b:
                continue
            key = (a, b)
            old = best.get(key)
            if old is None or (w, link_id) < (old[0], old[3]):
                best[key] = (float(w), link_tie_key(a, b), index_of[b], link_id)
        for (a, _b), edge in best.items():
            u = index_of[a]
            graph.out_edges[u].append(edge)
            graph.in_edges[edge[2]].append((edge[0], edge[1], u, edge[3]))
            graph.link_info[edge[3]] = (edge[0], edge[1], u, edge[2])
        return graph

    @classmethod
    def from_roadmap(cls, roadmap, weight: str = "length") -> "RoutingGraph":
        """Extract the routing view of a :class:`~repro.roadmap.graph.RoadMap`.

        Weights match the planner's conventions exactly: ``length`` is the
        link arc length in metres, ``travel_time`` the traversal time at
        the speed limit.
        """
        if weight not in ("length", "travel_time"):
            raise ValueError("weight must be 'length' or 'travel_time'")
        rows = []
        for link_id in sorted(roadmap.links):
            link = roadmap.link(link_id)
            w = link.length if weight == "length" else link.travel_time()
            rows.append((link_id, link.from_node, link.to_node, w))
        return cls.from_links(weight, rows)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    def num_nodes(self) -> int:
        return len(self.node_ids)

    def num_edges(self) -> int:
        return len(self.link_info)

    def path_cost(self, link_ids: Sequence[int]) -> Tuple[float, int]:
        """Left-to-right accumulated ``(cost, tie)`` over original links.

        This is the association order of Dijkstra's distance labels along
        the final path, so both engines report it bit-identically.
        """
        cost = 0.0
        tie = 0
        for lid in link_ids:
            info = self.link_info[lid]
            cost += info[0]
            tie += info[1]
        return cost, tie

    def nodes_of_path(self, link_ids: Sequence[int]) -> List[int]:
        """Original node ids visited by a link-id path."""
        if not link_ids:
            return []
        first = self.link_info[link_ids[0]]
        nodes = [self.node_ids[first[2]]]
        for lid in link_ids:
            nodes.append(self.node_ids[self.link_info[lid][3]])
        return nodes


def dijkstra_path(graph: RoutingGraph, source: int, target: int) -> Optional[PlannedPath]:
    """Reference shortest path with deterministic tie-breaking.

    A plain label-setting Dijkstra over composite ``(cost, tie)`` weights;
    the unique optimum under the composite order is what the hierarchy
    query reproduces.  ``source``/``target`` are original node ids; returns
    ``None`` when the target is unreachable.
    """
    index_of = graph.index_of
    if source not in index_of or target not in index_of:
        return None
    s = index_of[source]
    t = index_of[target]
    if s == t:
        return PlannedPath(0.0, 0, [], nodes=[source])
    out_edges = graph.out_edges
    dist: Dict[int, Tuple[float, int]] = {s: (0.0, 0)}
    parent: Dict[int, Tuple[int, int]] = {}
    settled = set()
    heap: List[Tuple[float, int, int]] = [(0.0, 0, s)]
    while heap:
        df, dt, u = heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u == t:
            break
        for w, tie, v, link in out_edges[u]:
            if v in settled:
                continue
            nf = df + w
            nt = dt + tie
            old = dist.get(v)
            if old is None or (nf, nt) < old:
                dist[v] = (nf, nt)
                parent[v] = (u, link)
                heappush(heap, (nf, nt, v))
    if t not in settled:
        return None
    links: List[int] = []
    node = t
    while node != s:
        prev, link = parent[node]
        links.append(link)
        node = prev
    links.reverse()
    cost, tie = graph.path_cost(links)
    return PlannedPath(cost, tie, links, graph=graph)


class ContractionHierarchy:
    """A preprocessed routing hierarchy over one :class:`RoutingGraph`.

    Build once per (map content, weight) — see
    :func:`repro.ingest.cache.load_or_build_hierarchy` for the persistent
    cache — then answer queries in well under a millisecond on graphs
    where Dijkstra takes seconds.
    """

    #: Witness searches settle at most this many nodes; hitting the cap
    #: conservatively inserts the shortcut (never harms correctness, only
    #: adds a redundant edge).  Too small a budget is a false economy:
    #: missed witnesses densify the core and every later search pays.
    WITNESS_SETTLE_LIMIT = 120

    def __init__(self, graph: RoutingGraph):
        self.graph = graph
        n = graph.num_nodes()
        self.rank: List[int] = [0] * n
        #: per node: upward out-edges ``(w, tie, to_idx, mid_idx, link_id)``
        #: (``mid_idx`` is -1 for an original link)
        self.fwd_up: List[List[Tuple[float, int, int, int, int]]] = [[] for _ in range(n)]
        #: per node: upward in-edges ``(w, tie, from_idx, mid_idx, link_id)``
        self.bwd_up: List[List[Tuple[float, int, int, int, int]]] = [[] for _ in range(n)]
        #: ``(a_idx, b_idx) -> (mid_idx, link_id)`` for shortcut unpacking
        self.edge_map: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.num_shortcuts = 0
        self.build_seconds = 0.0
        self._query_scratch: Optional[_QueryScratch] = None
        #: ``(a_idx, b_idx) -> (links, weights, tie_sum)`` — fully unpacked
        #: CH edges, memoised across queries (see :meth:`_expand`).  The tie
        #: component is pre-summed: integer addition is associative, so the
        #: cached sum is exact, unlike float weights which must stay
        #: per-link to preserve the left-to-right accumulation order.
        self._expand_cache: Dict[
            Tuple[int, int], Tuple[Tuple[int, ...], Tuple[float, ...], int]
        ] = {}

    # ------------------------------------------------------------------ #
    # offline phase
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, graph: RoutingGraph, witness_settles: Optional[int] = None
    ) -> "ContractionHierarchy":
        """Contract every node in importance order and assemble the search graph."""
        started = time.perf_counter()
        ch = cls(graph)
        n = graph.num_nodes()
        settle_limit = cls.WITNESS_SETTLE_LIMIT if witness_settles is None else witness_settles
        # Live "core" adjacency, mutated as nodes contract; values are
        # (w, tie, mid_idx, link_id) with mid_idx == -1 for original links.
        out: List[Dict[int, Tuple[float, int, int, int]]] = [{} for _ in range(n)]
        inc: List[Dict[int, Tuple[float, int, int, int]]] = [{} for _ in range(n)]
        # Every edge the hierarchy ever contained (originals + shortcuts,
        # cheaper parallels overwriting costlier ones).
        all_edges: Dict[Tuple[int, int], Tuple[float, int, int, int]] = {}
        for u in range(n):
            for w, tie, v, link in graph.out_edges[u]:
                edge = (w, tie, -1, link)
                out[u][v] = edge
                inc[v][u] = edge
                all_edges[(u, v)] = edge
        deleted = [0] * n
        contracted = [False] * n
        # A node's cached priority/shortcut list stays valid while none of
        # its neighbours contract: contraction preserves exact core
        # distances, so previously found witnesses survive, and a fresh
        # version guarantees the incident edges themselves are unchanged.
        version = [0] * n
        scratch = _WitnessScratch(n)

        def simulate(v: int):
            """Shortcuts needed to contract *v* plus its current degree."""
            inc_v = inc[v]
            out_v = out[v]
            removed = len(inc_v) + len(out_v)
            shortcuts: List[Tuple[int, int, float, int]] = []
            if inc_v and out_v:
                out_items = [
                    (w2, e[0], e[1]) for w2, e in out_v.items() if w2 != v
                ]
                for u, (w1f, w1t, _m, _l) in inc_v.items():
                    if u == v:
                        continue
                    targets: Dict[int, Tuple[float, int]] = {}
                    bound = 0.0
                    for w2, ef, et in out_items:
                        if w2 == u:
                            continue
                        cf = w1f + ef
                        targets[w2] = (cf, w1t + et)
                        if cf > bound:
                            bound = cf
                    if not targets:
                        continue
                    settled = _witness_search(
                        out, u, v, targets, bound, settle_limit, scratch
                    )
                    for w2, need in targets.items():
                        got = settled.get(w2)
                        if got is None or got > need:
                            shortcuts.append((u, w2, need[0], need[1]))
            return shortcuts, removed

        # level[v]: one more than the highest level among v's already
        # contracted neighbours — a proxy for the depth of the hierarchy
        # below v.  Folding it into the priority flattens the hierarchy
        # (nodes whose neighbourhood already towers are postponed), which
        # directly shrinks the upward search spaces of the online phase.
        level = [0] * n

        def priority(v: int):
            shortcuts, removed = simulate(v)
            return 2 * (len(shortcuts) - removed) + deleted[v] + level[v], shortcuts

        heap: List[Tuple[int, int, int, List[Tuple[int, int, float, int]]]] = []
        for v in range(n):
            p, shortcuts = priority(v)
            heap.append((p, v, 0, shortcuts))
        heapify(heap)

        next_rank = 0
        rank = ch.rank
        while heap:
            p, v, ver, shortcuts = heappop(heap)
            if contracted[v]:
                continue
            if ver != version[v]:
                # Neighbourhood changed since this entry was computed.
                p2, shortcuts = priority(v)
                if heap and (p2, v) > heap[0][:2]:
                    heappush(heap, (p2, v, version[v], shortcuts))
                    continue
            # Contract v: materialise its shortcuts, detach it from the core.
            for u, w2, cf, ct in shortcuts:
                edge = (cf, ct, v, -1)
                old = out[u].get(w2)
                if old is None or (cf, ct) < (old[0], old[1]):
                    out[u][w2] = edge
                    inc[w2][u] = edge
                    all_edges[(u, w2)] = edge
                    ch.num_shortcuts += 1
            neighbours = set(inc[v]) | set(out[v])
            neighbours.discard(v)
            for u in inc[v]:
                if u != v:
                    del out[u][v]
            for w2 in out[v]:
                if w2 != v:
                    del inc[w2][v]
            out[v] = {}
            inc[v] = {}
            lv = level[v] + 1
            for u in neighbours:
                deleted[u] += 1
                version[u] += 1
                if level[u] < lv:
                    level[u] = lv
            contracted[v] = True
            rank[v] = next_rank
            next_rank += 1

        fwd_up = ch.fwd_up
        bwd_up = ch.bwd_up
        edge_map = ch.edge_map
        for (a, b), (w, tie, mid, link) in all_edges.items():
            edge_map[(a, b)] = (mid, link)
            if rank[b] > rank[a]:
                fwd_up[a].append((w, tie, b, mid, link))
            else:
                bwd_up[b].append((w, tie, a, mid, link))
        ch.build_seconds = time.perf_counter() - started
        return ch

    # ------------------------------------------------------------------ #
    # online phase
    # ------------------------------------------------------------------ #
    def query(self, source: int, target: int) -> Optional[PlannedPath]:
        """The canonical shortest path from *source* to *target* (original ids).

        Bidirectional upward search; both frontiers only climb the
        hierarchy, and either stops as soon as its next tentative distance
        cannot beat the best meeting point found so far.  Returns ``None``
        when the target is unreachable.
        """
        index_of = self.graph.index_of
        if source not in index_of or target not in index_of:
            return None
        s = index_of[source]
        t = index_of[target]
        if s == t:
            return PlannedPath(0.0, 0, [], nodes=[source])
        fwd_up = self.fwd_up
        bwd_up = self.bwd_up
        scratch = self._query_scratch
        if scratch is None:
            scratch = self._query_scratch = _QueryScratch(self.graph.num_nodes())
        run = scratch.run + 1
        scratch.run = run
        vis_f = scratch.vis_f
        vis_b = scratch.vis_b
        df_f = scratch.df_f
        dt_f = scratch.dt_f
        df_b = scratch.df_b
        dt_b = scratch.dt_b
        par_f = scratch.par_f
        par_b = scratch.par_b
        set_f = scratch.set_f
        set_b = scratch.set_b
        vis_f[s] = run
        df_f[s] = 0.0
        dt_f[s] = 0
        vis_b[t] = run
        df_b[t] = 0.0
        dt_b[t] = 0
        heap_f: List[Tuple[float, int, int]] = [(0.0, 0, s)]
        heap_b: List[Tuple[float, int, int]] = [(0.0, 0, t)]
        best_f = None
        best_t = 0
        meet = -1
        while heap_f or heap_b:
            if heap_f:
                df, dt, u = heap_f[0]
                if best_f is not None and (df > best_f or (df == best_f and dt >= best_t)):
                    heap_f = []
                else:
                    heappop(heap_f)
                    if set_f[u] != run:
                        set_f[u] = run
                        if vis_b[u] == run:
                            tf = df + df_b[u]
                            tt = dt + dt_b[u]
                            if best_f is None or tf < best_f or (tf == best_f and tt < best_t):
                                best_f = tf
                                best_t = tt
                                meet = u
                        # Stall-on-demand: a settled higher node x with a
                        # downward edge x->u witnessing a shorter path to u
                        # proves u's upward label is not the true distance,
                        # so u cannot be the peak of the canonical path.
                        stalled = False
                        for w, tie, x, _mid, _link in bwd_up[u]:
                            if vis_f[x] == run:
                                sf = df_f[x] + w
                                if sf < df or (sf == df and dt_f[x] + tie < dt):
                                    stalled = True
                                    break
                        if not stalled:
                            for w, tie, v, mid, link in fwd_up[u]:
                                if set_f[v] == run:
                                    continue
                                nf = df + w
                                if vis_f[v] == run:
                                    of = df_f[v]
                                    if nf > of:
                                        continue
                                    nt = dt + tie
                                    if nf == of and nt >= dt_f[v]:
                                        continue
                                else:
                                    nt = dt + tie
                                    vis_f[v] = run
                                df_f[v] = nf
                                dt_f[v] = nt
                                par_f[v] = (u, mid, link)
                                heappush(heap_f, (nf, nt, v))
            if heap_b:
                df, dt, u = heap_b[0]
                if best_f is not None and (df > best_f or (df == best_f and dt >= best_t)):
                    heap_b = []
                else:
                    heappop(heap_b)
                    if set_b[u] != run:
                        set_b[u] = run
                        if vis_f[u] == run:
                            tf = df_f[u] + df
                            tt = dt_f[u] + dt
                            if best_f is None or tf < best_f or (tf == best_f and tt < best_t):
                                best_f = tf
                                best_t = tt
                                meet = u
                        stalled = False
                        for w, tie, x, _mid, _link in fwd_up[u]:
                            if vis_b[x] == run:
                                sf = w + df_b[x]
                                if sf < df or (sf == df and tie + dt_b[x] < dt):
                                    stalled = True
                                    break
                        if not stalled:
                            for w, tie, v, mid, link in bwd_up[u]:
                                if set_b[v] == run:
                                    continue
                                nf = df + w
                                if vis_b[v] == run:
                                    of = df_b[v]
                                    if nf > of:
                                        continue
                                    nt = dt + tie
                                    if nf == of and nt >= dt_b[v]:
                                        continue
                                else:
                                    nt = dt + tie
                                    vis_b[v] = run
                                df_b[v] = nf
                                dt_b[v] = nt
                                par_b[v] = (u, mid, link)
                                heappush(heap_b, (nf, nt, v))
        if best_f is None:
            return None
        # CH edges s -> meet (forward chain) and meet -> t (backward chain).
        up_edges: List[Tuple[int, int, int, int]] = []
        node = meet
        while node != s:
            prev, mid, link = par_f[node]
            up_edges.append((prev, node, mid, link))
            node = prev
        up_edges.reverse()
        node = meet
        while node != t:
            prev, mid, link = par_b[node]
            up_edges.append((node, prev, mid, link))
            node = prev
        # Assemble the answer in one pass: links, cost and tie accumulate
        # left-to-right over *original* link weights — float adds in the
        # exact order ``RoutingGraph.path_cost`` would apply them, so the
        # reported cost is bit-identical to the reference Dijkstra's.
        link_info = self.graph.link_info
        links: List[int] = []
        cost = 0.0
        tie = 0
        for a, b, mid, link in up_edges:
            if mid < 0:
                info = link_info[link]
                links.append(link)
                cost += info[0]
                tie += info[1]
            else:
                seg_links, seg_ws, seg_tie = self._expand(a, b, mid, link)
                links.extend(seg_links)
                for w in seg_ws:
                    cost += w
                tie += seg_tie
        return PlannedPath(cost, tie, links, graph=self.graph)

    #: Soft cap on :attr:`_expand_cache` entries; crossing it clears the
    #: memo wholesale (queries only repopulate what they actually touch).
    _EXPAND_CACHE_LIMIT = 1 << 20

    def _expand(
        self, a: int, b: int, mid: int, link: int
    ) -> Tuple[Tuple[int, ...], Tuple[float, ...], int]:
        """Fully unpack one CH edge into ``(links, weights, tie_sum)``.

        Expansions are memoised per edge: popular shortcuts (motorway
        spines) appear on most long-distance paths, so after a short
        warm-up the per-query unpacking cost drops from O(path · nesting)
        dict walks to a few C-level tuple concatenations.  Iterative
        post-order so deeply nested shortcuts cannot overflow the
        recursion limit.
        """
        cache = self._expand_cache
        got = cache.get((a, b))
        if got is not None:
            return got
        if len(cache) > self._EXPAND_CACHE_LIMIT:
            cache.clear()
        edge_map = self.edge_map
        link_info = self.graph.link_info
        # (a, b, mid, link, ready): ready entries have both children cached.
        stack = [(a, b, mid, link, False)]
        while stack:
            ea, eb, emid, elink, ready = stack.pop()
            key = (ea, eb)
            if ready:
                if key not in cache:
                    l1, w1, t1 = cache[(ea, emid)]
                    l2, w2, t2 = cache[(emid, eb)]
                    cache[key] = (l1 + l2, w1 + w2, t1 + t2)
                continue
            if key in cache:
                continue
            if elink >= 0:
                info = link_info[elink]
                cache[key] = ((elink,), (info[0],), info[1])
                continue
            ma, la = edge_map[(ea, emid)]
            mb, lb = edge_map[(emid, eb)]
            stack.append((ea, eb, emid, elink, True))
            stack.append((emid, eb, mb, lb, False))
            stack.append((ea, emid, ma, la, False))
        return cache[(a, b)]

    def warm_expansions(self, top_nodes: int = 1024) -> int:
        """Pre-expand every CH edge stored at the *top_nodes* highest-ranked
        nodes, returning the number of memo entries added.

        Long-distance queries spend their middle section on edges between
        top-of-hierarchy nodes — exactly the deeply nested shortcuts whose
        first-touch unpacking dominates cold-query latency.  Warming them
        once after :meth:`build`/:meth:`from_dict` (seconds, bounded memory)
        moves that cost out of the per-query budget; the low-rank edges a
        query still meets cold expand in a handful of steps.
        """
        n = self.graph.num_nodes()
        threshold = n - top_nodes
        before = len(self._expand_cache)
        for u, r in enumerate(self.rank):
            if r < threshold:
                continue
            for _w, _tie, v, mid, link in self.fwd_up[u]:
                if mid >= 0:
                    self._expand(u, v, mid, link)
            for _w, _tie, a, mid, link in self.bwd_up[u]:
                if mid >= 0:
                    self._expand(a, u, mid, link)
        return len(self._expand_cache) - before

    # ------------------------------------------------------------------ #
    # serialisation (the compiled-map cache persists hierarchies as JSON)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """A JSON-serialisable document; floats round-trip exactly."""
        a_col: List[int] = []
        b_col: List[int] = []
        w_col: List[float] = []
        tie_col: List[int] = []
        mid_col: List[int] = []
        link_col: List[int] = []
        for u, edges in enumerate(self.fwd_up):
            for w, tie, v, mid, link in edges:
                a_col.append(u)
                b_col.append(v)
                w_col.append(w)
                tie_col.append(tie)
                mid_col.append(mid)
                link_col.append(link)
        for v, edges in enumerate(self.bwd_up):
            for w, tie, u, mid, link in edges:
                a_col.append(u)
                b_col.append(v)
                w_col.append(w)
                tie_col.append(tie)
                mid_col.append(mid)
                link_col.append(link)
        return {
            "format": "repro-ch",
            "version": CH_FORMAT_VERSION,
            "weight": self.graph.weight,
            "node_ids": list(self.graph.node_ids),
            "rank": list(self.rank),
            "edges": {
                "a": a_col,
                "b": b_col,
                "w": w_col,
                "tie": tie_col,
                "mid": mid_col,
                "link": link_col,
            },
            "stats": {
                "nodes": self.graph.num_nodes(),
                "original_edges": self.graph.num_edges(),
                "shortcuts": self.num_shortcuts,
                "build_seconds": self.build_seconds,
            },
        }

    @classmethod
    def from_dict(cls, graph: RoutingGraph, data: dict) -> "ContractionHierarchy":
        """Rebuild a hierarchy persisted by :meth:`to_dict` over *graph*.

        Raises
        ------
        ValueError
            If the document is not a hierarchy, was written by another
            format version, or does not belong to *graph* (different
            weight kind or node set) — the caller then rebuilds.
        """
        if data.get("format") != "repro-ch":
            raise ValueError("not a repro contraction-hierarchy document")
        if data.get("version") != CH_FORMAT_VERSION:
            raise ValueError(
                f"unsupported hierarchy format version {data.get('version')!r}; "
                f"this build reads version {CH_FORMAT_VERSION}"
            )
        if data.get("weight") != graph.weight:
            raise ValueError(
                f"hierarchy was built for weight {data.get('weight')!r}, "
                f"not {graph.weight!r}"
            )
        if list(data.get("node_ids", ())) != graph.node_ids:
            raise ValueError("hierarchy does not match the graph's node set")
        if int(data.get("stats", {}).get("original_edges", -1)) != graph.num_edges():
            raise ValueError("hierarchy does not match the graph's edge count")
        ch = cls(graph)
        ch.rank = [int(r) for r in data["rank"]]
        if len(ch.rank) != graph.num_nodes():
            raise ValueError("hierarchy rank table does not match the graph")
        edges = data["edges"]
        rank = ch.rank
        link_info = graph.link_info
        n_shortcuts = 0
        for a, b, w, tie, mid, link in zip(
            edges["a"], edges["b"], edges["w"], edges["tie"], edges["mid"], edges["link"]
        ):
            a = int(a)
            b = int(b)
            entry = (float(w), int(tie), int(mid), int(link))
            if entry[2] >= 0:
                n_shortcuts += 1
            else:
                # An original edge: its weight, tie key and endpoints must
                # match the graph's link table bit for bit — a same-shaped
                # but different graph (or stale weights) is rejected here.
                info = link_info.get(entry[3])
                if info is None or info[0] != entry[0] or info[1] != entry[1]:
                    raise ValueError("hierarchy edge table does not match the graph")
            ch.edge_map[(a, b)] = (entry[2], entry[3])
            if rank[b] > rank[a]:
                ch.fwd_up[a].append((entry[0], entry[1], b, entry[2], entry[3]))
            else:
                ch.bwd_up[b].append((entry[0], entry[1], a, entry[2], entry[3]))
        ch.num_shortcuts = n_shortcuts
        stats = data.get("stats", {})
        ch.build_seconds = float(stats.get("build_seconds", 0.0))
        return ch


class _QueryScratch:
    """Reusable per-hierarchy scratch for the bidirectional query.

    Same run-id-stamped array technique as :class:`_WitnessScratch`: a
    query touches a few hundred nodes out of a million, so allocating
    dicts per query would dominate the sub-millisecond budget.
    """

    __slots__ = (
        "vis_f", "vis_b", "df_f", "df_b", "dt_f", "dt_b",
        "par_f", "par_b", "set_f", "set_b", "run",
    )

    def __init__(self, n: int):
        self.vis_f = [0] * n
        self.vis_b = [0] * n
        self.df_f = [0.0] * n
        self.df_b = [0.0] * n
        self.dt_f = [0] * n
        self.dt_b = [0] * n
        self.par_f: List[Optional[Tuple[int, int, int]]] = [None] * n
        self.par_b: List[Optional[Tuple[int, int, int]]] = [None] * n
        self.set_f = [0] * n
        self.set_b = [0] * n
        self.run = 0


class _WitnessScratch:
    """Reusable per-build scratch for witness searches.

    Preallocated arrays with a run-id stamp replace per-search dicts —
    the dominant cost of preprocessing in CPython is exactly these inner
    loops, and list indexing beats dict hashing by a wide margin.
    """

    __slots__ = ("visit", "distf", "distt", "settled", "run")

    def __init__(self, n: int):
        self.visit = [0] * n
        self.distf = [0.0] * n
        self.distt = [0] * n
        self.settled = [0] * n
        self.run = 0


def _witness_search(
    out: List[Dict[int, Tuple[float, int, int, int]]],
    source: int,
    excluded: int,
    targets: Dict[int, Tuple[float, int]],
    bound: float,
    settle_limit: int,
    scratch: _WitnessScratch,
) -> Dict[int, Tuple[float, int]]:
    """Local Dijkstra from *source* over the core, skipping *excluded*.

    Returns the settled composite distances of the target nodes; the
    search stops once every target is settled, the float distance exceeds
    *bound*, or *settle_limit* nodes were settled (whichever comes first).
    """
    run = scratch.run + 1
    scratch.run = run
    visit = scratch.visit
    distf = scratch.distf
    distt = scratch.distt
    settled = scratch.settled
    visit[source] = run
    distf[source] = 0.0
    distt[source] = 0
    heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
    remaining = len(targets)
    budget = settle_limit
    found: Dict[int, Tuple[float, int]] = {}
    while heap and remaining and budget:
        df, dt, x = heappop(heap)
        if settled[x] == run:
            continue
        if df > bound:
            break
        settled[x] = run
        budget -= 1
        if x in targets:
            found[x] = (df, dt)
            remaining -= 1
        for y, e in out[x].items():
            if y == excluded or settled[y] == run:
                continue
            nf = df + e[0]
            if visit[y] == run:
                of = distf[y]
                if nf > of:
                    continue
                nt = dt + e[1]
                if nf == of and nt >= distt[y]:
                    continue
            else:
                nt = dt + e[1]
                visit[y] = run
            distf[y] = nf
            distt[y] = nt
            heappush(heap, (nf, nt, y))
    return found
