"""Trace containers.

:class:`Trace` stores a time-ordered sequence of position sightings in the
local planar frame.  It is deliberately a thin, array-backed container —
NumPy arrays for times and positions — because the simulation loops iterate
over traces with hour-long, 1 Hz data (thousands of samples) and per-sample
object allocation would dominate the run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

import numpy as np

from repro.geo.vec import Vec2, as_vec


@dataclass(frozen=True)
class TraceSample:
    """A single position sighting.

    Attributes
    ----------
    time:
        Timestamp in seconds (simulation time or seconds since trace start).
    position:
        Position in local planar metres.
    """

    time: float
    position: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", as_vec(self.position))
        object.__setattr__(self, "time", float(self.time))


class Trace:
    """A time-ordered sequence of position sightings.

    Parameters
    ----------
    times:
        Strictly increasing timestamps in seconds.
    positions:
        ``(n, 2)`` array of positions in metres, parallel to *times*.
    name:
        Optional label used in reports ("car, freeway", ...).
    """

    __slots__ = ("_times", "_positions", "name")

    def __init__(self, times: Sequence[float], positions, name: str = ""):
        t = np.asarray(times, dtype=float)
        p = np.asarray(positions, dtype=float)
        if t.ndim != 1:
            raise ValueError("times must be one-dimensional")
        if p.shape != (len(t), 2):
            raise ValueError(
                f"positions must have shape ({len(t)}, 2), got {p.shape!r}"
            )
        if len(t) == 0:
            raise ValueError("a trace needs at least one sample")
        if len(t) > 1 and not np.all(np.diff(t) > 0):
            raise ValueError("timestamps must be strictly increasing")
        if not np.all(np.isfinite(t)) or not np.all(np.isfinite(p)):
            raise ValueError("times and positions must be finite")
        self._times = t
        self._positions = p
        self.name = name

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_samples(cls, samples: Iterable[TraceSample], name: str = "") -> "Trace":
        """Build a trace from :class:`TraceSample` objects."""
        samples = list(samples)
        if not samples:
            raise ValueError("a trace needs at least one sample")
        return cls(
            [s.time for s in samples], np.array([s.position for s in samples]), name=name
        )

    # ------------------------------------------------------------------ #
    # array access
    # ------------------------------------------------------------------ #
    @property
    def times(self) -> np.ndarray:
        """Timestamps in seconds (read-only view)."""
        view = self._times.view()
        view.flags.writeable = False
        return view

    @property
    def positions(self) -> np.ndarray:
        """Positions as an ``(n, 2)`` array in metres (read-only view)."""
        view = self._positions.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return len(self._times)

    def __getitem__(self, index: Union[int, slice]) -> Union[TraceSample, "Trace"]:
        if isinstance(index, slice):
            return Trace(self._times[index], self._positions[index], name=self.name)
        return TraceSample(float(self._times[index]), self._positions[index].copy())

    def __iter__(self) -> Iterator[TraceSample]:
        for i in range(len(self)):
            yield TraceSample(float(self._times[i]), self._positions[i].copy())

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def duration(self) -> float:
        """Trace duration in seconds."""
        return float(self._times[-1] - self._times[0])

    @property
    def sampling_interval(self) -> float:
        """Median spacing between consecutive samples, in seconds."""
        if len(self) < 2:
            return 0.0
        return float(np.median(np.diff(self._times)))

    def path_length(self) -> float:
        """Total travelled distance in metres (sum of sample-to-sample steps)."""
        if len(self) < 2:
            return 0.0
        deltas = np.diff(self._positions, axis=0)
        return float(np.hypot(deltas[:, 0], deltas[:, 1]).sum())

    def speeds(self) -> np.ndarray:
        """Instantaneous speeds (m/s) between consecutive samples.

        The returned array has ``len(self) - 1`` entries; entry ``i`` is the
        mean speed between samples ``i`` and ``i + 1``.
        """
        if len(self) < 2:
            return np.zeros(0)
        deltas = np.diff(self._positions, axis=0)
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        dts = np.diff(self._times)
        return dists / dts

    def bounds(self) -> tuple[float, float, float, float]:
        """Axis-aligned bounds of the positions ``(min_x, min_y, max_x, max_y)``."""
        mins = self._positions.min(axis=0)
        maxs = self._positions.max(axis=0)
        return (float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def shifted(self, time_offset: float = 0.0, position_offset: Vec2 = (0.0, 0.0)) -> "Trace":
        """A copy with all timestamps and/or positions offset."""
        return Trace(
            self._times + float(time_offset),
            self._positions + as_vec(position_offset),
            name=self.name,
        )

    def clipped(self, start_time: float, end_time: float) -> "Trace":
        """The sub-trace with ``start_time <= t <= end_time``."""
        mask = (self._times >= start_time) & (self._times <= end_time)
        if not np.any(mask):
            raise ValueError("no samples fall inside the requested interval")
        return Trace(self._times[mask], self._positions[mask], name=self.name)

    def with_positions(self, positions: np.ndarray) -> "Trace":
        """A copy with the same timestamps but different positions.

        Used by the noise models, which perturb positions sample by sample.
        """
        return Trace(self._times.copy(), positions, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({self.name or 'unnamed'}: {len(self)} samples, "
            f"{self.duration / 3600.0:.2f} h, {self.path_length() / 1000.0:.1f} km)"
        )
