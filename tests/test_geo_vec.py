"""Unit tests for repro.geo.vec."""

import math

import numpy as np
import pytest

from repro.geo.vec import (
    as_vec,
    cross,
    distance,
    distance_sq,
    dot,
    lerp,
    norm,
    normalize,
    perpendicular,
    rotate,
)


class TestAsVec:
    def test_accepts_tuple(self):
        v = as_vec((1.0, 2.0))
        assert isinstance(v, np.ndarray)
        assert v.dtype == float
        assert v.tolist() == [1.0, 2.0]

    def test_accepts_list_and_array(self):
        assert as_vec([3, 4]).tolist() == [3.0, 4.0]
        assert as_vec(np.array([3.0, 4.0])).tolist() == [3.0, 4.0]

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            as_vec((1.0, 2.0, 3.0))
        with pytest.raises(ValueError):
            as_vec([[1.0, 2.0]])

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            as_vec((float("nan"), 0.0))
        with pytest.raises(ValueError):
            as_vec((float("inf"), 0.0))


class TestDistance:
    def test_pythagorean(self):
        assert distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_squared_matches_distance(self):
        assert distance_sq((1, 1), (4, 5)) == pytest.approx(distance((1, 1), (4, 5)) ** 2)

    def test_zero_distance(self):
        assert distance((2, 3), (2, 3)) == 0.0

    def test_symmetry(self):
        assert distance((1, 2), (5, -3)) == pytest.approx(distance((5, -3), (1, 2)))


class TestNormAndNormalize:
    def test_norm(self):
        assert norm((3, 4)) == pytest.approx(5.0)

    def test_normalize_unit_length(self):
        n = normalize((10.0, 0.0))
        assert n.tolist() == [1.0, 0.0]

    def test_normalize_preserves_direction(self):
        n = normalize((3.0, 4.0))
        assert n[0] == pytest.approx(0.6)
        assert n[1] == pytest.approx(0.8)

    def test_normalize_zero_vector_returns_zero(self):
        assert normalize((0.0, 0.0)).tolist() == [0.0, 0.0]


class TestProducts:
    def test_dot(self):
        assert dot((1, 2), (3, 4)) == pytest.approx(11.0)

    def test_dot_orthogonal(self):
        assert dot((1, 0), (0, 5)) == 0.0

    def test_cross_right_handed(self):
        assert cross((1, 0), (0, 1)) == pytest.approx(1.0)
        assert cross((0, 1), (1, 0)) == pytest.approx(-1.0)

    def test_cross_parallel_is_zero(self):
        assert cross((2, 2), (4, 4)) == pytest.approx(0.0)


class TestLerpRotatePerpendicular:
    def test_lerp_endpoints(self):
        assert lerp((0, 0), (10, 20), 0.0).tolist() == [0.0, 0.0]
        assert lerp((0, 0), (10, 20), 1.0).tolist() == [10.0, 20.0]

    def test_lerp_midpoint(self):
        assert lerp((0, 0), (10, 20), 0.5).tolist() == [5.0, 10.0]

    def test_rotate_quarter_turn(self):
        r = rotate((1.0, 0.0), math.pi / 2)
        assert r[0] == pytest.approx(0.0, abs=1e-12)
        assert r[1] == pytest.approx(1.0)

    def test_rotate_preserves_length(self):
        r = rotate((3.0, 4.0), 1.234)
        assert norm(r) == pytest.approx(5.0)

    def test_perpendicular_is_orthogonal(self):
        v = (3.0, 4.0)
        assert dot(v, perpendicular(v)) == pytest.approx(0.0)

    def test_perpendicular_is_left_turn(self):
        assert perpendicular((1.0, 0.0)).tolist() == [0.0, 1.0]
