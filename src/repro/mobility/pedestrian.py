"""Pedestrian simulation.

A walking person differs from a vehicle mainly in scale: speeds around
1.3 m/s, frequent short pauses, many direction changes on a fine-grained
footpath network, and — crucially for the protocols — a much lower ratio of
movement per second to sensor noise, which is why the paper uses a longer
heading-estimation window (n = 8) and a smaller maximum requested
uncertainty (250 m) in the walking scenario.

The simulator reuses the longitudinal :class:`~repro.mobility.kinematics.SpeedController`
with a pedestrian-specific parameterisation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.mobility.kinematics import DriverProfile
from repro.mobility.vehicle import SimulatedJourney, VehicleSimulator
from repro.roadmap.elements import RoadClass
from repro.roadmap.routing import Route


@dataclass(frozen=True)
class PedestrianProfile:
    """Walking-behaviour parameters.

    Attributes
    ----------
    walking_speed_factor:
        Fraction of the footpath "speed limit" (typically 5.5 km/h) actually
        walked.
    pause_probability:
        Probability of pausing at a node (shop window, traffic light, ...).
    pause_duration_range:
        ``(min, max)`` pause duration in seconds.
    speed_noise_sigma:
        Relative variability of the walking speed.
    """

    walking_speed_factor: float = 0.9
    pause_probability: float = 0.12
    pause_duration_range: tuple[float, float] = (5.0, 60.0)
    speed_noise_sigma: float = 0.1

    def as_driver_profile(self) -> DriverProfile:
        """Translate into the generic longitudinal-controller profile.

        The ``speed_cap`` pins the pace to walking speed regardless of the
        link's legal limit: on dedicated footpath networks the two coincide
        (the cap equals the footpath class limit, so nothing changes), but
        a pedestrian on an imported street map must not inherit the
        street's 50 km/h.
        """
        return DriverProfile(
            speed_factor=self.walking_speed_factor,
            max_acceleration=0.8,
            max_deceleration=1.0,
            lateral_acceleration=1.0,
            stop_probability=self.pause_probability,
            stop_duration_range=self.pause_duration_range,
            speed_noise_sigma=self.speed_noise_sigma,
            speed_cap=RoadClass.FOOTPATH.default_speed_limit,
        )


class PedestrianSimulator:
    """Walks a pedestrian along a route on a footpath network."""

    def __init__(
        self,
        route: Route,
        profile: Optional[PedestrianProfile] = None,
        sample_interval: float = 1.0,
        rng: Optional[random.Random] = None,
        extra_stops: Optional[Sequence[Tuple[float, float]]] = None,
    ):
        self.profile = profile or PedestrianProfile()
        self._vehicle = VehicleSimulator(
            route,
            self.profile.as_driver_profile(),
            sample_interval=sample_interval,
            rng=rng,
            extra_stops=extra_stops,
        )

    @property
    def route(self) -> Route:
        """The route being walked."""
        return self._vehicle.route

    def run(self, name: str = "walking person") -> SimulatedJourney:
        """Simulate the walk and return the recorded journey."""
        return self._vehicle.run(name=name)
