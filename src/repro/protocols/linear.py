"""Linear-prediction dead reckoning.

"This simple dead-reckoning protocol assumes that the mobile object keeps on
moving along a line given by the reported position and direction and with
the reported speed." (paper Sec. 2)

The source estimates speed and heading from the last *n* sightings
(:mod:`repro.traces.estimation`), predicts with the same linear function the
server uses and transmits a new state whenever the deviation plus the sensor
uncertainty exceeds the requested accuracy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.protocols.base import UpdateProtocol, UpdateReason
from repro.protocols.prediction import LinearPrediction, PredictionFunction


class LinearPredictionProtocol(UpdateProtocol):
    """Dead reckoning with constant-velocity (linear) prediction."""

    name = "linear-prediction dead reckoning"

    def __init__(
        self,
        accuracy: float,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
    ):
        super().__init__(accuracy, sensor_uncertainty, estimation_window)
        self._prediction = LinearPrediction()

    def prediction_function(self) -> PredictionFunction:
        return self._prediction

    def _should_update(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> Optional[UpdateReason]:
        if self._threshold_exceeded(time, position):
            return UpdateReason.THRESHOLD
        return None
