"""Unit tests for repro.roadmap.elements."""

import math

import numpy as np
import pytest

from repro.geo.polyline import Polyline
from repro.roadmap.elements import Intersection, Link, RoadClass


@pytest.fixture()
def l_link():
    """A link with an L-shaped geometry (100 m east then 100 m north)."""
    return Link(
        id=7,
        from_node=1,
        to_node=2,
        geometry=Polyline([(0.0, 0.0), (100.0, 0.0), (100.0, 100.0)]),
        road_class=RoadClass.RESIDENTIAL,
    )


class TestRoadClass:
    def test_default_speed_limits_are_positive(self):
        for cls in RoadClass:
            assert cls.default_speed_limit > 0

    def test_motorway_fastest(self):
        assert RoadClass.MOTORWAY.default_speed_limit == max(
            cls.default_speed_limit for cls in RoadClass
        )

    def test_priority_ordering(self):
        assert RoadClass.MOTORWAY.priority > RoadClass.PRIMARY.priority
        assert RoadClass.RESIDENTIAL.priority > RoadClass.FOOTPATH.priority


class TestIntersection:
    def test_position_coerced(self):
        node = Intersection(id=3, position=(1.0, 2.0))
        assert isinstance(node.position, np.ndarray)

    def test_distance_to(self):
        node = Intersection(id=3, position=(0.0, 0.0))
        assert node.distance_to((3.0, 4.0)) == pytest.approx(5.0)


class TestLink:
    def test_length(self, l_link):
        assert l_link.length == pytest.approx(200.0)

    def test_default_speed_limit_from_class(self, l_link):
        assert l_link.speed_limit == pytest.approx(RoadClass.RESIDENTIAL.default_speed_limit)

    def test_explicit_speed_limit(self):
        link = Link(
            id=1,
            from_node=0,
            to_node=1,
            geometry=Polyline([(0, 0), (10, 0)]),
            speed_limit=10.0,
        )
        assert link.speed_limit == 10.0

    def test_invalid_speed_limit(self):
        with pytest.raises(ValueError):
            Link(
                id=1,
                from_node=0,
                to_node=1,
                geometry=Polyline([(0, 0), (10, 0)]),
                speed_limit=-1.0,
            )

    def test_endpoints(self, l_link):
        assert l_link.start_position.tolist() == [0.0, 0.0]
        assert l_link.end_position.tolist() == [100.0, 100.0]

    def test_point_and_direction(self, l_link):
        assert l_link.point_at(150.0).tolist() == [100.0, 50.0]
        assert l_link.direction_at(150.0).tolist() == [0.0, 1.0]

    def test_entry_exit_bearings(self, l_link):
        assert l_link.entry_bearing() == pytest.approx(math.pi / 2)
        assert l_link.exit_bearing() == pytest.approx(0.0)

    def test_projection(self, l_link):
        matched, offset, dist = l_link.project((40.0, 10.0))
        assert matched.tolist() == [40.0, 0.0]
        assert offset == pytest.approx(40.0)
        assert dist == pytest.approx(10.0)

    def test_shape_points(self, l_link):
        shape = l_link.shape_points()
        assert shape.shape == (1, 2)
        assert shape[0].tolist() == [100.0, 0.0]

    def test_bounds(self, l_link):
        assert l_link.bounds().as_tuple() == (0.0, 0.0, 100.0, 100.0)

    def test_travel_time(self, l_link):
        assert l_link.travel_time(speed=10.0) == pytest.approx(20.0)
        assert l_link.travel_time() == pytest.approx(200.0 / l_link.speed_limit)

    def test_travel_time_invalid_speed(self, l_link):
        with pytest.raises(ValueError):
            l_link.travel_time(speed=0.0)
