"""Application-level queries against the location server.

The paper motivates the location service with queries such as "find the
nearest taxi cab depending on the user's current location" and "address all
users that are currently inside a department of a store" (Sec. 1).  These
helpers implement the three standard flavours on top of the server's
predicted positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.vec import Vec2, as_vec, distance
from repro.service.server import LocationServer


@dataclass(frozen=True)
class PositionQueryResult:
    """Answer to a position query."""

    object_id: str
    position: Optional[np.ndarray]
    accuracy: float
    last_update_time: Optional[float]


def position_query(server: LocationServer, object_id: str, time: float) -> PositionQueryResult:
    """Where is *object_id* (assumed to be) at *time*?

    The answer carries the accuracy the source guarantees, so applications
    can reason about the uncertainty of the returned position.
    """
    record = server.tracked_object(object_id)
    return PositionQueryResult(
        object_id=object_id,
        position=record.predict(time),
        accuracy=record.accuracy,
        last_update_time=record.last_update_time,
    )


def range_query(
    server: LocationServer, area: BoundingBox, time: float, margin: float = 0.0
) -> List[str]:
    """All objects whose predicted position lies inside *area* at *time*.

    *margin* grows the area by the per-object accuracy bound when positive
    multiples of it are desired (e.g. ``margin=1.0`` adds one accuracy radius),
    so that the query never misses an object that could actually be inside.
    """
    hits: List[str] = []
    for object_id in server.object_ids():
        record = server.tracked_object(object_id)
        predicted = record.predict(time)
        if predicted is None:
            continue
        effective_area = area
        if margin > 0.0 and record.accuracy != float("inf"):
            effective_area = area.expanded(margin * record.accuracy)
        if effective_area.contains_point(predicted):
            hits.append(object_id)
    return sorted(hits)


def nearest_object_query(
    server: LocationServer, point: Vec2, time: float, k: int = 1
) -> List[Tuple[str, float]]:
    """The *k* objects predicted to be closest to *point* at *time*.

    Returns ``(object_id, distance)`` pairs sorted by distance.  Objects that
    have never reported are ignored.
    """
    p = as_vec(point)
    scored: List[Tuple[str, float]] = []
    for object_id, predicted in server.all_positions(time).items():
        scored.append((object_id, distance(predicted, p)))
    scored.sort(key=lambda pair: (pair[1], pair[0]))
    return scored[: max(0, k)]
