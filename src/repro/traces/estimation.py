"""Speed and heading estimation from position sightings.

The object state reported to the location server contains the current speed
and direction of movement.  Footnote 1 of the paper notes that "if speed and
direction are not directly available, they can be inferred from the last *n*
position sightings", and Sec. 4 reports the window sizes that worked best:
n = 2 for freeway traffic, 4 for city and inter-urban traffic and 8 for a
walking person.  :class:`StateEstimator` implements exactly that sliding
window least-squares estimate.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

import numpy as np

from repro.geo.vec import Vec2, as_vec


def estimate_velocity(
    times: np.ndarray, positions: np.ndarray
) -> Tuple[np.ndarray, float]:
    """Least-squares velocity estimate from a window of sightings.

    Fits ``position(t) = p0 + v * t`` independently per axis over the given
    window and returns ``(velocity_vector, speed)``.  With exactly two
    samples this degenerates to the finite difference the paper uses for the
    freeway case; larger windows average out sensor noise at the cost of lag,
    matching the trade-off described in the paper.
    """
    times = np.asarray(times, dtype=float)
    positions = np.asarray(positions, dtype=float)
    if len(times) < 2:
        return np.zeros(2), 0.0
    t = times - times[-1]
    # Least squares slope per axis: cov(t, x) / var(t).  The sums are written
    # as elementwise products reduced with ``sum`` so that the batched
    # implementation in :func:`estimate_trace` performs bitwise-identical
    # arithmetic row by row.
    t_mean = t.mean()
    t_centered = t - t_mean
    denom = float((t_centered * t_centered).sum())
    if denom == 0.0:
        return np.zeros(2), 0.0
    vx = float((t_centered * (positions[:, 0] - positions[:, 0].mean())).sum()) / denom
    vy = float((t_centered * (positions[:, 1] - positions[:, 1].mean())).sum()) / denom
    velocity = np.array([vx, vy])
    speed = float(np.hypot(vx, vy))
    return velocity, speed


def estimate_trace(
    times: np.ndarray, positions: np.ndarray, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sliding-window estimates for every sample of a whole trace at once.

    Returns ``(velocities, speeds)`` with shapes ``(n, 2)`` and ``(n,)``:
    exactly what feeding the samples one by one through a
    :class:`StateEstimator` with the same *window* would produce, but
    computed with batched NumPy operations.  The fixed-size windows (every
    index from ``window - 1`` on) are evaluated in one vectorised pass whose
    arithmetic matches :func:`estimate_velocity` operation for operation, so
    the results are bitwise identical to the streaming estimator — the
    simulation engine relies on that to keep its fast path equivalent to the
    per-sighting protocol API.
    """
    if window < 2:
        raise ValueError("window must be at least 2")
    times = np.asarray(times, dtype=float)
    positions = np.asarray(positions, dtype=float)
    n = len(times)
    velocities = np.zeros((n, 2))
    speeds = np.zeros(n)
    if n < 2:
        return velocities, speeds
    w = int(window)
    # Ramp-up: the first sightings see growing windows of size 2 .. w - 1.
    for i in range(1, min(w - 1, n)):
        velocities[i], speeds[i] = estimate_velocity(times[: i + 1], positions[: i + 1])
    if n < w:
        return velocities, speeds
    from numpy.lib.stride_tricks import sliding_window_view

    tw = np.ascontiguousarray(sliding_window_view(times, w))
    xw = np.ascontiguousarray(sliding_window_view(positions[:, 0], w))
    yw = np.ascontiguousarray(sliding_window_view(positions[:, 1], w))
    t_rel = tw - tw[:, -1:]
    t_centered = t_rel - t_rel.mean(axis=1, keepdims=True)
    denom = (t_centered * t_centered).sum(axis=1)
    ok = denom != 0.0
    denom_safe = np.where(ok, denom, 1.0)
    vx = (t_centered * (xw - xw.mean(axis=1, keepdims=True))).sum(axis=1) / denom_safe
    vy = (t_centered * (yw - yw.mean(axis=1, keepdims=True))).sum(axis=1) / denom_safe
    vx = np.where(ok, vx, 0.0)
    vy = np.where(ok, vy, 0.0)
    velocities[w - 1 :, 0] = vx
    velocities[w - 1 :, 1] = vy
    speeds[w - 1 :] = np.hypot(vx, vy)
    return velocities, speeds


class StateEstimator:
    """Sliding-window speed/heading estimator fed one sighting at a time.

    Parameters
    ----------
    window:
        Number of most recent sightings used for the estimate (the paper's
        *n*).  ``window = 2`` reproduces a simple finite difference.
    """

    def __init__(self, window: int = 4):
        if window < 2:
            raise ValueError("window must be at least 2")
        self.window = int(window)
        self._times: Deque[float] = deque(maxlen=window)
        self._positions: Deque[np.ndarray] = deque(maxlen=window)

    def reset(self) -> None:
        """Forget all past sightings."""
        self._times.clear()
        self._positions.clear()

    def update(self, time: float, position: Vec2) -> Tuple[np.ndarray, float]:
        """Add a sighting and return the current ``(velocity, speed)`` estimate.

        Until two sightings have been seen the estimate is zero velocity,
        which is also what a receiver reports before it has a fix history.
        """
        self._times.append(float(time))
        self._positions.append(as_vec(position))
        if len(self._times) < 2:
            return np.zeros(2), 0.0
        return estimate_velocity(
            np.array(self._times), np.array(self._positions)
        )

    @property
    def n_samples(self) -> int:
        """Number of sightings currently inside the window."""
        return len(self._times)

    def current_direction(self) -> np.ndarray:
        """Unit direction of the current velocity estimate (zero if unknown)."""
        velocity, speed = estimate_velocity(
            np.array(self._times), np.array(self._positions)
        ) if len(self._times) >= 2 else (np.zeros(2), 0.0)
        if speed == 0.0:
            return np.zeros(2)
        return velocity / speed


def recommended_window(mean_speed: float) -> int:
    """The paper's recommended estimation window for a given mean speed.

    Sec. 4: 2 positions for freeway traffic, 4 for city or inter-urban
    traffic, 8 for a walking person.  The thresholds interpolate those
    choices by mean speed (m/s).
    """
    if mean_speed >= 22.0:  # ~80 km/h and above: freeway-like
        return 2
    if mean_speed >= 5.0:  # between ~18 and ~80 km/h: urban / inter-urban
        return 4
    return 8
