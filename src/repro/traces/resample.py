"""Resampling utilities for traces.

The paper's receiver logs one fix per second; other data sources (or the
mobility simulator run at a finer time step) may use different rates.  These
helpers convert between sampling rates so protocols are always compared on
identical inputs.
"""

from __future__ import annotations

import numpy as np

from repro.traces.trace import Trace


def resample_uniform(trace: Trace, interval: float) -> Trace:
    """Resample *trace* to a uniform *interval* by linear interpolation.

    The first and last timestamps are preserved; intermediate positions are
    interpolated per axis.  Raises for non-positive intervals or single-sample
    traces.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    if len(trace) < 2:
        raise ValueError("cannot resample a trace with fewer than two samples")
    t0 = float(trace.times[0])
    t1 = float(trace.times[-1])
    n = max(2, int(np.floor((t1 - t0) / interval)) + 1)
    new_times = t0 + np.arange(n) * interval
    new_times = new_times[new_times <= t1 + 1e-9]
    if new_times[-1] < t1 - 1e-9:
        new_times = np.append(new_times, t1)
    xs = np.interp(new_times, trace.times, trace.positions[:, 0])
    ys = np.interp(new_times, trace.times, trace.positions[:, 1])
    return Trace(new_times, np.column_stack((xs, ys)), name=trace.name)


def decimate(trace: Trace, factor: int) -> Trace:
    """Keep every *factor*-th sample of *trace* (always keeping the first)."""
    if factor < 1:
        raise ValueError("factor must be at least 1")
    indices = np.arange(0, len(trace), factor)
    return Trace(trace.times[indices], trace.positions[indices], name=trace.name)
