"""Memory-layout regression guard: the hot per-object classes stay slotted.

At mega-fleet scale (100k tracked objects) an accidental ``__dict__`` on
any per-object class costs ~10 MB and turns fixed-offset attribute loads
back into dict lookups.  These tests pin the layout so a refactor that
drops ``slots=True`` (e.g. re-declaring one of the dataclasses without it)
fails loudly instead of silently regressing the fleet's footprint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocols.base import ObjectState, UpdateMessage, UpdateReason
from repro.protocols.prediction import StaticPrediction
from repro.protocols.reporting import DistanceBasedReporting
from repro.service.channel import ChannelStats, MessageChannel
from repro.service.facade import QueryCounters, ShardLoad
from repro.service.server import TrackedObject
from repro.sim.columnar import ColumnarStore
from repro.sim.fleet import FleetLane, _LaneState
from repro.sim.kernel import EventKernel
from repro.traces.trace import Trace


def _state() -> ObjectState:
    return ObjectState(
        time=0.0,
        position=np.zeros(2),
        velocity=np.zeros(2),
        speed=0.0,
    )


def _lane() -> FleetLane:
    times = np.array([0.0, 1.0])
    return FleetLane(
        object_id="obj",
        protocol=DistanceBasedReporting(50.0),
        sensor_trace=Trace(times, np.zeros((2, 2))),
    )


def _instances():
    lane = _lane()
    return [
        _state(),
        UpdateMessage(sequence=1, state=_state(), reason=UpdateReason.INITIAL),
        TrackedObject(object_id="obj", prediction=StaticPrediction(), accuracy=50.0),
        ChannelStats(),
        ShardLoad(shard_id=0),
        QueryCounters(),
        lane,
        _LaneState(lane, MessageChannel()),
        EventKernel(),
        Trace(np.array([0.0, 1.0]), np.zeros((2, 2))),
        ColumnarStore(["obj"], accuracy=50.0, sensor_uncertainty=0.0),
    ]


@pytest.mark.parametrize(
    "instance", _instances(), ids=lambda i: type(i).__name__
)
def test_hot_classes_have_no_instance_dict(instance):
    assert not hasattr(instance, "__dict__"), (
        f"{type(instance).__name__} grew a per-instance __dict__; "
        "keep the hot per-object classes slotted"
    )


@pytest.mark.parametrize(
    "instance", _instances(), ids=lambda i: type(i).__name__
)
def test_hot_classes_reject_stray_attributes(instance):
    # Plain slotted classes raise AttributeError; the frozen slotted
    # dataclasses raise through their generated __setattr__ (TypeError on
    # this interpreter) — either way the stray attribute must not stick.
    with pytest.raises((AttributeError, TypeError)):
        instance.definitely_not_a_slot = 1


def test_slots_cover_the_whole_mro():
    """No class in the hierarchy smuggles a ``__dict__`` back in."""
    for cls in (ObjectState, UpdateMessage, TrackedObject, ChannelStats,
                ShardLoad, QueryCounters, FleetLane, EventKernel, Trace,
                ColumnarStore):
        offenders = [
            base.__name__
            for base in cls.__mro__
            if base is not object and "__dict__" in vars(base)
        ]
        assert not offenders, f"{cls.__name__}: __dict__ via {offenders}"
