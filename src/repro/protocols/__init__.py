"""Location-update protocols.

This package contains every protocol variant discussed in the paper
(Sec. 2, Fig. 2) plus the non-dead-reckoning baselines it compares against:

========================  ====================================================
Protocol                  Module / class
========================  ====================================================
distance-based reporting  :class:`repro.protocols.reporting.DistanceBasedReporting`
time-based reporting      :class:`repro.protocols.reporting.TimeBasedReporting`
movement-based reporting  :class:`repro.protocols.reporting.MovementBasedReporting`
linear prediction DR      :class:`repro.protocols.linear.LinearPredictionProtocol`
higher-order prediction   :class:`repro.protocols.higher_order.HigherOrderPredictionProtocol`
map-based DR              :class:`repro.protocols.mapbased.MapBasedProtocol`
map-based + probabilities :class:`repro.protocols.probabilistic.ProbabilisticMapBasedProtocol`
known-route DR            :class:`repro.protocols.known_route.KnownRouteProtocol`
Wolfson sdr / adr / dtdr  :class:`repro.protocols.adaptive`
========================  ====================================================

All protocols share the same source/server split: the *source* consumes
sensor sightings and decides when to transmit an
:class:`~repro.protocols.base.UpdateMessage`; the *server* reconstructs the
object position at any time by applying the protocol's
:class:`~repro.protocols.prediction.PredictionFunction` to the last received
update.  Source and server always use the same prediction function and
parameters — the property that lets the protocol guarantee a maximum
deviation (paper Sec. 2).
"""

from repro.protocols.base import ObjectState, UpdateMessage, UpdateProtocol, UpdateReason
from repro.protocols.prediction import (
    PredictionFunction,
    StaticPrediction,
    LinearPrediction,
    QuadraticPrediction,
    MapPrediction,
    RoutePrediction,
    TurnPolicy,
    SmallestAngleTurnPolicy,
    MainRoadTurnPolicy,
    ProbabilisticTurnPolicy,
)
from repro.protocols.reporting import (
    DistanceBasedReporting,
    TimeBasedReporting,
    MovementBasedReporting,
)
from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.higher_order import HigherOrderPredictionProtocol
from repro.protocols.mapbased import MapBasedProtocol, MapBasedConfig
from repro.protocols.probabilistic import ProbabilisticMapBasedProtocol
from repro.protocols.known_route import KnownRouteProtocol
from repro.protocols.adaptive import (
    SpeedDeadReckoning,
    AdaptiveDeadReckoning,
    DisconnectionDetectionDeadReckoning,
)

__all__ = [
    "ObjectState",
    "UpdateMessage",
    "UpdateProtocol",
    "UpdateReason",
    "PredictionFunction",
    "StaticPrediction",
    "LinearPrediction",
    "QuadraticPrediction",
    "MapPrediction",
    "RoutePrediction",
    "TurnPolicy",
    "SmallestAngleTurnPolicy",
    "MainRoadTurnPolicy",
    "ProbabilisticTurnPolicy",
    "DistanceBasedReporting",
    "TimeBasedReporting",
    "MovementBasedReporting",
    "LinearPredictionProtocol",
    "HigherOrderPredictionProtocol",
    "MapBasedProtocol",
    "MapBasedConfig",
    "ProbabilisticMapBasedProtocol",
    "KnownRouteProtocol",
    "SpeedDeadReckoning",
    "AdaptiveDeadReckoning",
    "DisconnectionDetectionDeadReckoning",
]
