"""The compiled-map cache: import OSM extracts once, reuse everywhere.

Parsing and conditioning a city-scale extract takes orders of magnitude
longer than loading the finished road map, and sweeps rebuild their
scenario in every worker process.  :func:`import_map` therefore memoises
the *compiled* map on disk, keyed by the extract's content hash and every
pipeline option (plus the pipeline and file-format versions, so a code
change can never serve a stale map):

* cache hit — one :func:`repro.roadmap.io.load_roadmap` call,
* cache miss — full pipeline (parse → project → condition → build), then
  an atomic write of the compiled map for the next run.

The cache lives under ``$REPRO_MAP_CACHE`` (default
``~/.cache/repro/maps``); every entry is a plain version-2 road-map JSON
document whose metadata block carries the source name, geodesic origin and
the full ingest report, so a cached map is self-describing and can be
shipped around like any other saved road map.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.ingest.compact import CompiledMap, ConditioningReport, compile_roadmap
from repro.ingest.osm import load_osm, project_network
from repro.roadmap import io as roadmap_io
from repro.roadmap.hierarchy import (
    CH_FORMAT_VERSION,
    ContractionHierarchy,
    RoutingGraph,
)

_logger = logging.getLogger(__name__)

#: Bumped whenever the pipeline's output could change for the same input;
#: part of every cache key, so old entries are simply never hit again.
PIPELINE_VERSION = 1


def default_cache_dir() -> Path:
    """The compiled-map cache directory (env: ``REPRO_MAP_CACHE``)."""
    env = os.environ.get("REPRO_MAP_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "maps"


def cache_key(
    content_digest: str,
    bbox: Optional[Tuple[float, float, float, float]],
    contract: bool,
    min_stub_m: float,
    origin: Optional[Tuple[float, float]],
    index_cell_size: float,
) -> str:
    """Deterministic key over the extract content and all pipeline options."""
    payload = json.dumps(
        {
            "content": content_digest,
            "bbox": list(bbox) if bbox is not None else None,
            "contract": bool(contract),
            "min_stub_m": float(min_stub_m),
            "origin": list(origin) if origin is not None else None,
            "index_cell_size": float(index_cell_size),
            "pipeline_version": PIPELINE_VERSION,
            "format_version": roadmap_io.FORMAT_VERSION,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def compile_osm(
    source: Union[str, Path],
    bbox: Optional[Tuple[float, float, float, float]] = None,
    contract: bool = True,
    min_stub_m: float = 40.0,
    origin: Optional[Tuple[float, float]] = None,
    index_cell_size: float = 250.0,
    source_name: str = "",
) -> CompiledMap:
    """Run the full pipeline uncached (parse → project → condition → build).

    ``source`` is anything :func:`repro.ingest.osm.load_osm` accepts: a
    path, an open file, or the extract text itself.
    """
    t0 = time.perf_counter()
    network = load_osm(source)
    t1 = time.perf_counter()
    projected = project_network(network, origin=origin)
    if not source_name and isinstance(source, (str, Path)):
        text = str(source).lstrip()
        # A str source may be the document itself, not a path; never embed
        # a whole extract into the map metadata.
        if not text.startswith(("<", "{")):
            source_name = str(source)
    compiled = compile_roadmap(
        projected,
        bbox=bbox,
        contract=contract,
        min_stub_m=min_stub_m,
        index_cell_size=index_cell_size,
        source=source_name,
    )
    t2 = time.perf_counter()
    compiled.timings = {"parse_seconds": t1 - t0, "compile_seconds": t2 - t1}
    return compiled


def _from_cache_file(path: Path, index_cell_size: float) -> Optional[CompiledMap]:
    """Load a cache entry; ``None`` when it is unreadable (then re-import)."""
    try:
        t0 = time.perf_counter()
        # trusted: this process (or an earlier run of it) wrote the entry,
        # keyed by content hash — re-validating every vertex is pure cost.
        roadmap = roadmap_io.load_roadmap(
            path, index_cell_size=index_cell_size, trusted=True
        )
        seconds = time.perf_counter() - t0
        metadata = roadmap.metadata
        ingest = metadata.get("ingest", {})
        origin = metadata.get("origin", {})
        report = ConditioningReport(**ingest.get("conditioning", {}))
        origin_pair = (float(origin.get("lat", 0.0)), float(origin.get("lon", 0.0)))
    except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
        # Hand-edited, truncated or schema-stale entries are rebuilt, as
        # import_map promises — but loudly, so a persistently corrupt cache
        # (rebuilding every run) is visible.
        _logger.warning(
            "corrupt compiled-map cache entry %s (%s: %s); re-importing",
            path,
            type(exc).__name__,
            exc,
        )
        return None
    return CompiledMap(
        roadmap=roadmap,
        report=report,
        origin=origin_pair,
        parse_stats=dict(ingest.get("parse", {})),
        cached=True,
        timings={"cache_load_seconds": seconds},
    )


def import_map(
    path: Union[str, Path],
    bbox: Optional[Tuple[float, float, float, float]] = None,
    contract: bool = True,
    min_stub_m: float = 40.0,
    origin: Optional[Tuple[float, float]] = None,
    index_cell_size: float = 250.0,
    cache_dir: Optional[Union[str, Path]] = None,
    refresh: bool = False,
) -> CompiledMap:
    """Import an OSM extract, through the compiled-map cache.

    Parameters mirror :func:`compile_osm`; ``refresh=True`` forces a
    re-import (the entry is rewritten), and a corrupt or version-stale
    cache file is silently rebuilt rather than failing the run.
    """
    path = Path(path)
    content_digest = hashlib.sha256(path.read_bytes()).hexdigest()
    key = cache_key(content_digest, bbox, contract, min_stub_m, origin, index_cell_size)
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    entry = directory / f"{path.stem}-{key[:16]}.json"
    if not refresh and entry.exists():
        compiled = _from_cache_file(entry, index_cell_size)
        if compiled is not None:
            compiled.cache_path = str(entry)
            return compiled
    compiled = compile_osm(
        path,
        bbox=bbox,
        contract=contract,
        min_stub_m=min_stub_m,
        origin=origin,
        index_cell_size=index_cell_size,
        source_name=path.name,
    )
    directory.mkdir(parents=True, exist_ok=True)
    t0 = time.perf_counter()
    # Per-process temp name: concurrent importers (parallel sweep workers
    # cold-importing the same extract) each rename their own complete file
    # over the entry, last writer wins, nobody observes a partial write.
    temporary = entry.with_suffix(f".tmp{os.getpid()}")
    roadmap_io.save_roadmap(compiled.roadmap, temporary)
    temporary.replace(entry)
    compiled.timings["cache_write_seconds"] = time.perf_counter() - t0
    compiled.cache_path = str(entry)
    return compiled


# --------------------------------------------------------------------------- #
# contraction-hierarchy sidecars
# --------------------------------------------------------------------------- #
def hierarchy_path(entry: Union[str, Path], weight: str) -> Path:
    """The hierarchy sidecar next to a compiled-map cache entry.

    The sidecar name embeds the CH format version and the weight, and the
    entry name already embeds the content hash — so a changed extract, a
    changed pipeline option or a changed hierarchy format each land on a
    fresh sidecar, never a stale one.
    """
    entry = Path(entry)
    return entry.with_name(f"{entry.stem}.ch{CH_FORMAT_VERSION}-{weight}.json")


def load_or_build_hierarchy(
    graph: RoutingGraph,
    entry: Optional[Union[str, Path]] = None,
    witness_settles: Optional[int] = None,
) -> Tuple[ContractionHierarchy, bool]:
    """A contraction hierarchy for *graph*, through the sidecar cache.

    ``entry`` is the compiled-map cache entry the graph came from (e.g.
    ``CompiledMap.cache_path``); ``None`` or an empty string skips
    persistence and always builds.  Returns ``(hierarchy, cached)``.  A
    sidecar that fails validation (different node set, different weight,
    older format) is rebuilt and overwritten, mirroring the corrupt-entry
    policy of :func:`import_map`.
    """
    sidecar = hierarchy_path(entry, graph.weight) if entry else None
    if sidecar is not None and sidecar.exists():
        try:
            data = json.loads(sidecar.read_text(encoding="utf-8"))
            return ContractionHierarchy.from_dict(graph, data), True
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            _logger.warning(
                "corrupt hierarchy sidecar %s (%s: %s); rebuilding",
                sidecar,
                type(exc).__name__,
                exc,
            )
    hierarchy = ContractionHierarchy.build(graph, witness_settles=witness_settles)
    if sidecar is not None:
        sidecar.parent.mkdir(parents=True, exist_ok=True)
        temporary = sidecar.with_suffix(f".tmp{os.getpid()}")
        temporary.write_text(
            json.dumps(hierarchy.to_dict(), separators=(",", ":")), encoding="utf-8"
        )
        temporary.replace(sidecar)
    return hierarchy, False
