"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index) and prints the reproduced rows/series so
the numbers can be compared against the paper directly from the benchmark
output.

The scenario scale defaults to the paper's full trace lengths; set the
environment variable ``REPRO_BENCH_SCALE`` (e.g. ``0.25``) to run shorter
routes when wall-clock time matters more than statistics.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    """Route-length scale used by the benchmarks (env: REPRO_BENCH_SCALE)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def scale() -> float:
    """The benchmark scenario scale."""
    return bench_scale()


def pytest_configure(config):
    """Make the reproduced tables visible in plain benchmark runs.

    The benchmarks print the regenerated paper tables and ASCII figures;
    ``-rP`` adds the captured output of passed tests to the terminal summary
    so a plain ``pytest benchmarks/ --benchmark-only`` run (or one piped
    through ``tee``) records them without needing ``-s``.
    """
    config.option.reportchars = (getattr(config.option, "reportchars", "") or "") + "P"


def run_once(benchmark, func, *args, **kwargs):
    """Run *func* exactly once under pytest-benchmark timing.

    The experiments are deterministic end-to-end simulations lasting seconds
    to minutes; statistical repetition would only waste time, so every
    benchmark uses a single round.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
