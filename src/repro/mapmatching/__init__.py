"""Map matching: placing sensed positions onto road-map links.

The paper's map-based dead-reckoning protocol "basically executes a
map-matching algorithm when monitoring the sensor information at the source"
(Sec. 3).  The matcher here implements exactly the algorithm the paper
describes — nearest-link selection within a tolerance ``um``, perpendicular
projection to obtain the corrected position ``pc``, forward-tracking past
link ends, backward-tracking after wrong choices, and off-map fallback with
periodic re-acquisition — plus an offline variant used for analysis and for
learning turn probabilities from ground-truth traces.
"""

from repro.mapmatching.matcher import (
    IncrementalMapMatcher,
    MatchResult,
    MatchStatus,
    MatcherConfig,
)
from repro.mapmatching.offline import match_trace, MatchedTracePoint

__all__ = [
    "IncrementalMapMatcher",
    "MatchResult",
    "MatchStatus",
    "MatcherConfig",
    "match_trace",
    "MatchedTracePoint",
]
