"""The protocol simulation loop.

:class:`ProtocolSimulation` replays a sensor trace through a source running
an update protocol, transmits the resulting updates over a message channel
to a location server, and measures the error between the server's predicted
position and the ground truth at every sample — the paper's experimental
setup (Sec. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geo.vec import distance
from repro.protocols.base import UpdateProtocol, UpdateReason
from repro.service.channel import MessageChannel
from repro.service.server import LocationServer
from repro.service.source import LocationSource
from repro.sim.metrics import AccuracyMetrics, SimulationResult
from repro.traces.trace import Trace


@dataclass
class ProtocolSimulation:
    """One object, one protocol, one trace.

    Parameters
    ----------
    protocol:
        The (source-side) update protocol under test.
    sensor_trace:
        What the positioning sensor reports (noisy positions).
    truth_trace:
        Ground-truth positions used to measure the accuracy actually
        delivered at the server.  Must be sampled at the same timestamps as
        the sensor trace.  When omitted, the sensor trace doubles as truth.
    channel:
        Source-to-server channel; defaults to loss-free and instantaneous.
    object_id:
        Identifier under which the object is registered at the server.
    count_initial_update:
        Whether the very first update (the one that bootstraps the server)
        is included in the update count.  The paper counts transmitted
        messages, so the default is ``True``; the effect on updates/hour is
        negligible for hour-long traces.
    """

    protocol: UpdateProtocol
    sensor_trace: Trace
    truth_trace: Optional[Trace] = None
    channel: Optional[MessageChannel] = None
    object_id: str = "object-0"
    count_initial_update: bool = True

    def run(self) -> SimulationResult:
        """Execute the simulation and return the collected metrics."""
        truth = self.truth_trace if self.truth_trace is not None else self.sensor_trace
        if len(truth) != len(self.sensor_trace):
            raise ValueError("sensor and truth traces must have the same length")
        if not np.allclose(truth.times, self.sensor_trace.times):
            raise ValueError("sensor and truth traces must share their timestamps")

        channel = self.channel or MessageChannel()
        server = LocationServer()
        server.register_object(
            self.object_id,
            prediction=self.protocol.prediction_function(),
            accuracy=self.protocol.accuracy,
        )
        source = LocationSource(self.object_id, self.protocol, channel)

        metrics = AccuracyMetrics()
        metrics.set_bound(self.protocol.accuracy)
        reasons: dict[str, int] = {}

        times = self.sensor_trace.times
        sensor_positions = self.sensor_trace.positions
        truth_positions = truth.positions

        for i in range(len(times)):
            t = float(times[i])
            message = source.process_sighting(t, sensor_positions[i])
            if message is not None:
                reasons[message.reason.value] = reasons.get(message.reason.value, 0) + 1
            for obj_id, delivered in channel.deliver_due(t):
                server.receive_update(obj_id, delivered, t)
            predicted = server.predict_position(self.object_id, t)
            if predicted is not None:
                metrics.record(distance(predicted, truth_positions[i]))

        updates = source.updates_sent
        if not self.count_initial_update and updates > 0:
            updates -= 1

        matcher_stats = {}
        matching_statistics = getattr(self.protocol, "matching_statistics", None)
        if callable(matching_statistics):
            matcher_stats = matching_statistics()

        return SimulationResult(
            protocol_name=self.protocol.name,
            accuracy=self.protocol.accuracy,
            duration_h=self.sensor_trace.duration / 3600.0,
            updates=updates,
            bytes_sent=self.protocol.bytes_sent,
            metrics=metrics,
            update_reasons=reasons,
            matcher_stats=matcher_stats,
        )


def run_simulation(
    protocol: UpdateProtocol,
    sensor_trace: Trace,
    truth_trace: Optional[Trace] = None,
    channel: Optional[MessageChannel] = None,
) -> SimulationResult:
    """Convenience wrapper around :class:`ProtocolSimulation`."""
    return ProtocolSimulation(
        protocol=protocol,
        sensor_trace=sensor_trace,
        truth_trace=truth_trace,
        channel=channel,
    ).run()
