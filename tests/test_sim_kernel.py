"""The discrete-event kernel: determinism, equivalence, timers, arrivals.

The load-bearing contract is **degenerate-schedule equivalence**: when every
lane shares the tick rate and channel latency is a tick multiple, the event
kernel must produce bit-identical updates, error metrics, channel statistics
and service statistics to the tick loop — asserted here over the whole
scenario library.  On top of that sit the event-only capabilities: exact
channel delivery instants (``max_queue_delay == 0``), protocol timers firing
at exact deadlines, per-message keyed channel loss (identical across
kernels), per-lane sampling rates, Poisson query arrivals and periodic
shard-handoff maintenance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.library import FleetMix, fleet_lanes, scenario_names
from repro.mobility.generator import resample_scenario
from repro.protocols.adaptive import DisconnectionDetectionDeadReckoning
from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.reporting import TimeBasedReporting
from repro.service.channel import MessageChannel
from repro.service.facade import LocationService
from repro.sim.config import SimulationConfig
from repro.sim.engine import ProtocolSimulation
from repro.sim.fleet import FleetLane, FleetSimulation
from repro.sim.kernel import (
    DELIVERY,
    KERNELS,
    QUERY,
    SAMPLE,
    TIMER,
    EventKernel,
    validate_kernel,
)
from repro.sim.runner import ScenarioSpec, auto_region_size
from repro.sim.workload import QueryWorkload
from repro.traces.trace import Trace

#: Small per-scenario scales (mirrors the golden suite, so the per-process
#: scenario cache is shared between the two test modules).
SCALES = {"freeway": 0.05, "interurban": 0.08, "city": 0.07, "walking": 0.15}
DEFAULT_SCALE = 0.15

LIBRARY_NAMES = scenario_names()


def _scenario(name: str):
    return ScenarioSpec(name=name, scale=SCALES.get(name, DEFAULT_SCALE)).build()


def _protocol(scenario, protocol_id: str, accuracy: float = 100.0):
    return SimulationConfig(protocol_id=protocol_id, accuracy=accuracy).build_protocol(
        scenario
    )


def _run(scenario, protocol_id: str, kernel: str, channel=None):
    return ProtocolSimulation(
        protocol=_protocol(scenario, protocol_id),
        sensor_trace=scenario.sensor_trace,
        truth_trace=scenario.true_trace,
        channel=channel,
        kernel=kernel,
    ).run()


def _straight_trace(n: int = 61, dt: float = 1.0, speed: float = 20.0) -> Trace:
    times = np.arange(n) * dt
    return Trace(times, np.column_stack((times * speed, np.zeros(n))))


class RecordingChannel(MessageChannel):
    """A channel that records every send as ``(send_time, reason)``."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.sent = []

    def send(self, object_id, message, time):
        self.sent.append((time, message.reason.value))
        super().send(object_id, message, time)


# --------------------------------------------------------------------------- #
# the kernel itself
# --------------------------------------------------------------------------- #
class TestEventKernel:
    def test_orders_by_time_priority_seq(self):
        kern = EventKernel()
        kern.schedule(5.0, DELIVERY, "d@5")
        kern.schedule(5.0, SAMPLE, "s@5-first")
        kern.schedule(2.0, QUERY, "q@2")
        kern.schedule(5.0, SAMPLE, "s@5-second")
        kern.schedule(5.0, TIMER, "t@5")
        order = [kern.pop()[3] for _ in range(len(kern))]
        assert order == ["q@2", "s@5-first", "s@5-second", "t@5", "d@5"]

    def test_drain_instant_includes_same_instant_reschedules(self):
        kern = EventKernel()
        kern.schedule(1.0, SAMPLE, "a")
        kern.schedule(2.0, SAMPLE, "later")
        seen = []
        for _t, _prio, _seq, payload in kern.drain_instant():
            seen.append(payload)
            if payload == "a":
                # A handler scheduling at the instant being drained (e.g. a
                # zero-latency delivery) is picked up by the same drain.
                kern.schedule(1.0, DELIVERY, "b")
        assert seen == ["a", "b"]
        assert len(kern) == 1

    def test_validate_kernel(self):
        assert [validate_kernel(k) for k in KERNELS] == list(KERNELS)
        with pytest.raises(ValueError, match="unknown kernel"):
            validate_kernel("hybrid")
        with pytest.raises(ValueError, match="unknown kernel"):
            FleetSimulation(
                [FleetLane("x", LinearPredictionProtocol(100.0), _straight_trace())],
                kernel="hybrid",
            )


# --------------------------------------------------------------------------- #
# degenerate-schedule equivalence: event == tick, bit for bit
# --------------------------------------------------------------------------- #
class TestKernelEquivalence:
    @pytest.mark.parametrize("name", LIBRARY_NAMES)
    def test_event_equals_tick_on_every_library_scenario(self, name):
        """Updates, bytes, reasons and every error sample are identical."""
        scenario = _scenario(name)
        for protocol_id in ("distance", "linear", "map"):
            tick = _run(scenario, protocol_id, "tick")
            event = _run(scenario, protocol_id, "event")
            assert tick.as_dict() == event.as_dict(), (name, protocol_id)
            assert np.array_equal(tick.metrics.errors, event.metrics.errors)

    def test_fleet_with_latency_and_loss_channel_is_identical(self):
        """Tick-aligned latency + seeded loss: results *and* channel stats."""
        outcomes = {}
        for kernel in ("tick", "event"):
            channel = MessageChannel(latency=3.0, loss_probability=0.15, seed=11)
            lanes = fleet_lanes(
                [FleetMix("city", "linear", 100.0, 3), FleetMix("walking", "distance", 80.0, 2)],
                scale=SCALES["city"],
            )
            fleet = FleetSimulation(lanes, channel=channel, kernel=kernel).run()
            outcomes[kernel] = (
                {oid: r.as_dict() for oid, r in fleet.results.items()},
                channel.stats,
            )
        assert outcomes["tick"][0] == outcomes["event"][0]
        assert outcomes["tick"][1] == outcomes["event"][1]
        assert outcomes["tick"][1].messages_lost > 0
        assert outcomes["tick"][1].max_queue_delay == 0.0

    def test_sharded_service_stats_are_identical(self):
        outcomes = {}
        for kernel in ("tick", "event"):
            lanes = fleet_lanes([FleetMix("city", "linear", 100.0, 4)], scale=SCALES["city"])
            service = LocationService(n_shards=3, region_size=auto_region_size(lanes, 3))
            fleet = FleetSimulation(lanes, server=service, kernel=kernel).run()
            stats = dict(fleet.service_stats)
            stats.pop("query_seconds")
            stats.pop("mean_query_seconds")
            outcomes[kernel] = ({oid: r.as_dict() for oid, r in fleet.results.items()}, stats)
        assert outcomes["tick"] == outcomes["event"]

    def test_per_tick_workload_replay_is_identical(self):
        reports = {}
        for kernel in ("tick", "event"):
            lanes = fleet_lanes([FleetMix("city", "linear", 100.0, 3)], scale=SCALES["city"])
            fleet = FleetSimulation(
                lanes,
                query_workload=QueryWorkload(queries_per_tick=0.5, seed=3),
                kernel=kernel,
            ).run()
            report = fleet.workload.as_dict()
            report.pop("query_seconds")
            report.pop("mean_query_us")
            report.pop("queries_per_second")
            reports[kernel] = report
        assert reports["tick"] == reports["event"]
        assert reports["tick"]["queries"] > 0


# --------------------------------------------------------------------------- #
# mixed-rate fleets: exact delivery beats tick quantisation
# --------------------------------------------------------------------------- #
class TestMixedRateFleet:
    def _mixed_lanes(self):
        """1 Hz city cars beside 0.2 Hz mixed-rate cars, phase-shifted."""
        fast = _scenario("rush_hour_city")
        slow = _scenario("mixed_rate_city")
        lanes = []
        for n in range(3):
            protocol = _protocol(fast, "distance")
            lanes.append(FleetLane(f"fast/{n}", protocol, fast.sensor_trace, fast.true_trace))
        for n in range(3):
            protocol = _protocol(slow, "distance")
            # Phase-shift the low-rate trackers off the 1 s grid so their
            # sightings (and deliveries) fall between ticks.
            shifted = Trace(
                slow.sensor_trace.times + 0.25 * (n + 1),
                slow.sensor_trace.positions,
            )
            truth = Trace(
                slow.true_trace.times + 0.25 * (n + 1), slow.true_trace.positions
            )
            lanes.append(FleetLane(f"slow/{n}", protocol, shifted, truth))
        return lanes

    def test_results_match_and_event_delivery_is_exact(self):
        """Same updates and errors on both kernels; only the tick loop
        shows queue-delay quantisation on a non-aligned latency."""
        outcomes = {}
        for kernel in ("tick", "event"):
            channel = MessageChannel(latency=7.3)
            fleet = FleetSimulation(self._mixed_lanes(), channel=channel, kernel=kernel).run()
            outcomes[kernel] = (
                {oid: r.as_dict() for oid, r in fleet.results.items()},
                channel.stats,
            )
        assert outcomes["tick"][0] == outcomes["event"][0]
        tick_stats, event_stats = outcomes["tick"][1], outcomes["event"][1]
        assert tick_stats.messages_delivered == event_stats.messages_delivered
        assert tick_stats.max_queue_delay > 0.0
        assert event_stats.max_queue_delay == 0.0


# --------------------------------------------------------------------------- #
# protocol timer contracts
# --------------------------------------------------------------------------- #
class TestProtocolTimers:
    def test_time_based_reporting_fires_at_exact_deadlines(self):
        """Under the event kernel reports go out at exactly t0 + k·interval
        even though no sighting falls on those instants."""
        trace = _straight_trace(n=61)  # 1 Hz sightings
        channel = RecordingChannel()
        protocol = TimeBasedReporting(accuracy=100.0, interval=7.5)
        FleetSimulation(
            [FleetLane("x", protocol, trace, channel=channel)], kernel="event"
        ).run()
        timer_sends = [t for t, reason in channel.sent if reason == "timer"]
        assert timer_sends == [7.5 * k for k in range(1, 9)]

    def test_time_based_reporting_tick_is_polled(self):
        trace = _straight_trace(n=61)
        channel = RecordingChannel()
        protocol = TimeBasedReporting(accuracy=100.0, interval=7.5)
        FleetSimulation(
            [FleetLane("x", protocol, trace, channel=channel)], kernel="tick"
        ).run()
        timer_sends = [t for t, reason in channel.sent if reason == "timer"]
        # Polled: first sighting past each deadline (8, 16, 24, ... — the
        # deadline re-anchors on the late report).
        assert timer_sends == [8.0 * k for k in range(1, 8)]
        assert all(t == int(t) for t in timer_sends)

    def test_non_representable_interval_terminates_and_fires_exactly(self):
        """Regression: a for_speed()-style interval whose float rounding
        makes ``(last + interval) - last < interval`` must not wedge the
        kernel in a refire loop — the staleness check compares against the
        scheduled deadline itself, never a re-derived difference."""
        interval = 3.597122302158273  # 500 m / 139 m/s — not representable
        times = np.arange(3) * 1.0 + 0.406
        trace = Trace(times, np.column_stack((times * 20.0, np.zeros(3))))
        channel = RecordingChannel()
        protocol = TimeBasedReporting(accuracy=500.0, interval=interval)
        FleetSimulation(
            [FleetLane("x", protocol, trace, channel=channel)], kernel="event"
        ).run()  # must terminate
        assert [t for t, r in channel.sent] == [0.406]  # trace ends before t0+interval
        longer = np.arange(10) * 1.0 + 0.406
        trace = Trace(longer, np.column_stack((longer * 20.0, np.zeros(10))))
        channel = RecordingChannel()
        protocol = TimeBasedReporting(accuracy=500.0, interval=interval)
        FleetSimulation(
            [FleetLane("x", protocol, trace, channel=channel)], kernel="event"
        ).run()
        first = 0.406 + interval
        assert [t for t, r in channel.sent] == [0.406, first, first + interval]

    def test_time_based_aligned_interval_is_kernel_identical(self):
        """A tick-multiple interval is the degenerate case: identical."""
        sends = {}
        for kernel in ("tick", "event"):
            trace = _straight_trace(n=61)
            channel = RecordingChannel()
            protocol = TimeBasedReporting(accuracy=100.0, interval=6.0)
            FleetSimulation(
                [FleetLane("x", protocol, trace, channel=channel)], kernel=kernel
            ).run()
            sends[kernel] = channel.sent
        assert sends["tick"] == sends["event"]

    def test_dtdr_declares_disconnection_at_exact_timeout(self):
        # A stationary object never violates the threshold, so the only
        # signal is the silence itself.
        times = np.arange(0.0, 41.0)
        trace = Trace(times, np.zeros((41, 2)))
        exact = DisconnectionDetectionDeadReckoning(
            initial_threshold=50.0, disconnect_timeout=12.5
        )
        FleetSimulation([FleetLane("x", exact, trace)], kernel="event").run()
        assert exact.disconnection_times == [12.5]
        assert exact.disconnected
        polled = DisconnectionDetectionDeadReckoning(
            initial_threshold=50.0, disconnect_timeout=12.5
        )
        FleetSimulation([FleetLane("x", polled, trace)], kernel="tick").run()
        assert polled.disconnection_times == [13.0]  # first sighting past it

    def test_dtdr_update_clears_disconnection_state(self):
        protocol = DisconnectionDetectionDeadReckoning(
            initial_threshold=5.0, disconnect_timeout=100.0
        )
        trace = _straight_trace(n=31)  # moves fast: threshold updates fire
        FleetSimulation([FleetLane("x", protocol, trace)], kernel="event").run()
        assert protocol.disconnection_times == []
        assert not protocol.disconnected

    def test_declining_protocol_with_sticky_deadline_terminates(self):
        """Progress guard: a protocol that declines every timer fire while
        never moving its deadline must not wedge the kernel at one instant."""

        class StickyDeadline(LinearPredictionProtocol):
            def next_deadline(self):
                if self.last_reported is None:
                    return None
                return self.last_reported.time + 2.5

            def on_timer(self, time):
                return None  # always declines; deadline stays put

        protocol = StickyDeadline(1000.0)  # threshold never trips
        result = FleetSimulation(
            [FleetLane("x", protocol, _straight_trace(n=21))], kernel="event"
        ).run()  # must terminate
        assert result.results["x"].updates == 1  # just the initial report

    def test_dtdr_without_timeout_has_no_timer(self):
        protocol = DisconnectionDetectionDeadReckoning(initial_threshold=50.0)
        assert protocol.next_deadline() is None
        result = FleetSimulation(
            [FleetLane("x", protocol, _straight_trace())], kernel="event"
        ).run()
        assert protocol.disconnection_times == []
        assert result.results["x"].updates > 0


# --------------------------------------------------------------------------- #
# channel loss: keyed per message, reproducible across kernels
# --------------------------------------------------------------------------- #
class TestKeyedLoss:
    def test_seeded_loss_pattern_is_kernel_invariant(self):
        lost = {}
        for kernel in ("tick", "event"):
            channel = RecordingChannel(latency=2.0, loss_probability=0.3, seed=21)
            scenario = _scenario("city")
            protocol = _protocol(scenario, "distance")
            ProtocolSimulation(
                protocol=protocol,
                sensor_trace=scenario.sensor_trace,
                truth_trace=scenario.true_trace,
                channel=channel,
                kernel=kernel,
            ).run()
            lost[kernel] = (channel.stats.messages_sent, channel.stats.messages_lost)
        assert lost["tick"] == lost["event"]
        assert lost["tick"][1] > 0

    def test_seeded_loss_is_independent_of_send_interleaving(self):
        """The same (object, sequence) messages meet the same fate no
        matter what other traffic shares the channel."""
        from repro.protocols.base import ObjectState, UpdateMessage, UpdateReason

        def message(seq):
            state = ObjectState(time=float(seq), position=(0.0, 0.0),
                                velocity=(0.0, 0.0), speed=0.0)
            return UpdateMessage(sequence=seq, state=state, reason=UpdateReason.THRESHOLD)

        alone = MessageChannel(loss_probability=0.4, seed=7)
        for seq in range(50):
            alone.send("a", message(seq), float(seq))
        fate_alone = alone.stats.messages_lost

        crowded = MessageChannel(loss_probability=0.4, seed=7)
        for seq in range(50):
            crowded.send("noise", message(seq), float(seq))
            crowded.send("a", message(seq), float(seq))
        # Count object "a"'s losses by replaying the keyed decision.
        only_a = MessageChannel(loss_probability=0.4, seed=7)
        for seq in range(50):
            only_a.send("a", message(seq), float(seq))
        assert only_a.stats.messages_lost == fate_alone

    def test_unseeded_channel_keeps_stream_draws(self):
        channel = MessageChannel(loss_probability=0.5)
        assert channel.stats.messages_lost == 0  # nothing sent, just constructs


# --------------------------------------------------------------------------- #
# per-lane sampling rates
# --------------------------------------------------------------------------- #
class TestSampleInterval:
    def test_generated_scenario_sampling_grid(self):
        scenario = _scenario("low_power_tracker")
        assert np.allclose(np.diff(scenario.sensor_trace.times), 20.0)
        assert np.allclose(scenario.true_trace.times, scenario.sensor_trace.times)
        assert len(scenario.journey.link_ids) == len(scenario.true_trace)

    def test_scenario_spec_decimation_matches_native_samples(self):
        base = ScenarioSpec(name="city", scale=SCALES["city"]).build()
        thin = ScenarioSpec(
            name="city", scale=SCALES["city"], sample_interval=5.0
        ).build()
        assert np.array_equal(thin.sensor_trace.times, base.sensor_trace.times[::5])
        assert np.array_equal(thin.sensor_trace.positions, base.sensor_trace.positions[::5])
        assert np.array_equal(thin.true_trace.positions, base.true_trace.positions[::5])

    def test_sample_interval_is_part_of_the_cache_key(self):
        a = ScenarioSpec(name="city", scale=SCALES["city"])
        b = ScenarioSpec(name="city", scale=SCALES["city"], sample_interval=5.0)
        assert a != b
        assert a.build() is not b.build()
        assert b.build() is b.build()  # cached

    def test_non_multiple_interval_is_rejected(self):
        scenario = ScenarioSpec(name="city", scale=SCALES["city"]).build()
        with pytest.raises(ValueError, match="not a multiple"):
            resample_scenario(scenario, 2.5)

    def test_unit_interval_is_a_noop(self):
        scenario = ScenarioSpec(name="city", scale=SCALES["city"]).build()
        assert resample_scenario(scenario, 1.0) is scenario


# --------------------------------------------------------------------------- #
# Poisson query arrivals
# --------------------------------------------------------------------------- #
class TestPoissonArrivals:
    def _lanes(self):
        return fleet_lanes([FleetMix("city", "linear", 100.0, 3)], scale=SCALES["city"])

    def test_requires_event_kernel(self):
        workload = QueryWorkload(arrival_rate_per_s=0.5)
        with pytest.raises(ValueError, match="kernel='event'"):
            FleetSimulation(self._lanes(), query_workload=workload, kernel="tick")

    def test_arrivals_are_deterministic_and_close_to_rate(self):
        counts = []
        answers = []
        for _ in range(2):
            fleet = FleetSimulation(
                self._lanes(),
                query_workload=QueryWorkload(arrival_rate_per_s=0.3, seed=17),
                kernel="event",
                record_query_answers=True,
            )
            result = fleet.run()
            counts.append(result.workload.queries)
            answers.append(fleet.workload_executor.answers)
        assert counts[0] == counts[1] > 0
        assert answers[0] == answers[1]
        duration = self._lanes()[0].sensor_trace.duration
        expected = 0.3 * duration
        assert 0.5 * expected <= counts[0] <= 1.7 * expected

    def test_report_counts_sample_instants_as_ticks(self):
        fleet = FleetSimulation(
            self._lanes(),
            query_workload=QueryWorkload(arrival_rate_per_s=0.3, seed=17),
            kernel="event",
        )
        result = fleet.run()
        # One tick per distinct sample instant, not a misleading zero.
        assert result.workload.ticks == len(self._lanes()[0].sensor_trace.times)

    def test_workload_does_not_change_simulation_results(self):
        with_queries = FleetSimulation(
            self._lanes(),
            query_workload=QueryWorkload(arrival_rate_per_s=0.5, seed=1),
            kernel="event",
        ).run()
        without = FleetSimulation(self._lanes(), kernel="event").run()
        assert {o: r.as_dict() for o, r in with_queries.results.items()} == {
            o: r.as_dict() for o, r in without.results.items()
        }

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="arrival_rate_per_s"):
            QueryWorkload(arrival_rate_per_s=0.0)


# --------------------------------------------------------------------------- #
# shard-handoff maintenance events
# --------------------------------------------------------------------------- #
class TestHandoffEvents:
    def _fleet(self, **kwargs):
        lanes = fleet_lanes([FleetMix("city", "linear", 100.0, 4)], scale=SCALES["city"])
        service = LocationService(n_shards=3, region_size=auto_region_size(lanes, 3))
        return FleetSimulation(lanes, server=service, **kwargs)

    def test_requires_event_kernel_and_shardable_backend(self):
        with pytest.raises(ValueError, match="event"):
            self._fleet(handoff_interval=30.0)  # default tick kernel
        with pytest.raises(ValueError, match="rebalance"):
            FleetSimulation(
                [FleetLane("x", LinearPredictionProtocol(100.0), _straight_trace())],
                kernel="event",
                handoff_interval=30.0,
            )

    def test_maintenance_never_changes_results(self):
        plain = self._fleet(kernel="event").run()
        swept = self._fleet(kernel="event", handoff_interval=20.0).run()
        assert {o: r.as_dict() for o, r in plain.results.items()} == {
            o: r.as_dict() for o, r in swept.results.items()
        }
        # The sweeps can only add handoffs, never remove any.
        assert swept.service_stats["handoffs"] >= plain.service_stats["handoffs"]


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestKernelCli:
    def test_simulate_kernel_event(self, capsys):
        from repro.cli import main

        assert main([
            "--json", "simulate", "--scenario", "city", "--protocol", "linear",
            "--accuracy", "100", "--scale", "0.07", "--kernel", "event",
        ]) == 0
        out = capsys.readouterr().out
        assert '"updates"' in out

    def test_fleet_kernel_event(self, capsys):
        from repro.cli import main

        assert main([
            "--json", "fleet", "--mix", "city:linear:100:2",
            "--scale", "0.07", "--kernel", "event",
        ]) == 0
        assert '"updates_per_object_hour"' in capsys.readouterr().out

    def test_query_bench_rejects_explicit_rate_on_tick_kernel(self, capsys):
        from repro.cli import main

        assert main([
            "query-bench", "--scenario", "rush_hour_city", "--count", "2",
            "--scale", "0.07", "--arrival-rate", "2.0",  # default --kernel tick
        ]) == 2
        assert "kernel='event'" in capsys.readouterr().err

    def test_query_bench_poisson_kernel(self, capsys):
        from repro.cli import main

        assert main([
            "--json", "query-bench", "--scenario", "poisson_queries_freeway",
            "--count", "3", "--shards", "2", "--scale", "0.1",
            "--kernel", "event",
        ]) == 0
        out = capsys.readouterr().out
        assert '"kernel": "event"' in out
        assert '"arrival_rate_per_s": 0.5' in out
