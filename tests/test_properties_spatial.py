"""Property-based tests for the spatial indexes (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geo.bbox import BoundingBox
from repro.geo.segment import Segment
from repro.spatial.grid import GridIndex
from repro.spatial.index import IndexedItem, brute_force_nearest
from repro.spatial.rtree import STRtree

coordinate = st.floats(min_value=-10_000.0, max_value=10_000.0, allow_nan=False)
point = st.tuples(coordinate, coordinate)


def build_items(segments):
    items = []
    for i, (a, b) in enumerate(segments):
        seg = Segment(a, b)
        items.append(
            IndexedItem(key=i, bounds=BoundingBox(*seg.bounds()), distance=seg.distance_to)
        )
    return items


@settings(max_examples=50, deadline=None)
@given(
    segments=st.lists(st.tuples(point, point), min_size=1, max_size=30),
    query=point,
)
def test_grid_nearest_matches_brute_force(segments, query):
    items = build_items(segments)
    index = GridIndex(cell_size=500.0, items=items)
    expected = brute_force_nearest(items, query)
    got = index.nearest(query)
    assert got is not None and expected is not None
    assert np.isclose(got[1], expected[1], atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    segments=st.lists(st.tuples(point, point), min_size=1, max_size=30),
    query=point,
)
def test_rtree_nearest_matches_brute_force(segments, query):
    items = build_items(segments)
    tree = STRtree(items, node_capacity=4)
    expected = brute_force_nearest(items, query)
    got = tree.nearest(query)
    assert got is not None and expected is not None
    assert np.isclose(got[1], expected[1], atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    segments=st.lists(st.tuples(point, point), min_size=1, max_size=25),
    query=point,
    radius=st.floats(min_value=1.0, max_value=5_000.0),
)
def test_query_radius_is_exact(segments, query, radius):
    items = build_items(segments)
    index = GridIndex(cell_size=700.0, items=items)
    hits = {item.key for item in index.query_radius(query, radius)}
    expected = {item.key for item in items if item.distance(np.asarray(query)) <= radius}
    assert hits == expected


def test_query_radius_boundary_rounding_regression():
    """A segment whose true distance exceeds the radius by ~1e-303 (the
    distance callback rounds it to exactly the radius) must be admitted:
    membership is decided by the rounded callback, not by the exact bbox
    prune (hypothesis-found falsifying example, pinned here)."""
    items = build_items([((0.0, -1.0), (0.0, -4.78e-303))])
    index = GridIndex(cell_size=700.0, items=items)
    hits = {item.key for item in index.query_radius((0.0, 1.0), 1.0)}
    expected = {
        item.key
        for item in items
        if item.distance(np.asarray((0.0, 1.0))) <= 1.0
    }
    assert hits == expected == {0}


@settings(max_examples=50, deadline=None)
@given(segments=st.lists(st.tuples(point, point), min_size=1, max_size=25))
def test_grid_and_rtree_agree_on_bbox_queries(segments):
    items = build_items(segments)
    grid = GridIndex(cell_size=800.0, items=items)
    tree = STRtree(items, node_capacity=4)
    box = BoundingBox(-2_000.0, -2_000.0, 2_000.0, 2_000.0)
    assert {i.key for i in grid.query_bbox(box)} == {i.key for i in tree.query_bbox(box)}


# --------------------------------------------------------------------------- #
# nearest across every backend, with and without a distance cap
# --------------------------------------------------------------------------- #
@settings(max_examples=50, deadline=None)
@given(
    segments=st.lists(st.tuples(point, point), min_size=1, max_size=30),
    queries=st.lists(point, min_size=1, max_size=8),
    cell_size=st.sampled_from([120.0, 500.0, 2_500.0]),
)
def test_all_backends_agree_on_nearest_point_sets(segments, queries, cell_size):
    """Grid, STR-tree and brute force return the same nearest distance."""
    items = build_items(segments)
    grid = GridIndex(cell_size=cell_size, items=items)
    tree = STRtree(items, node_capacity=4)
    for query in queries:
        expected = brute_force_nearest(items, query)
        for backend in (grid, tree):
            got = backend.nearest(query)
            assert got is not None and expected is not None
            assert np.isclose(got[1], expected[1], atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    segments=st.lists(st.tuples(point, point), min_size=1, max_size=25),
    query=point,
    max_distance=st.floats(min_value=1.0, max_value=8_000.0),
)
def test_all_backends_agree_on_capped_nearest(segments, query, max_distance):
    """The ``max_distance`` contract holds identically on every backend."""
    items = build_items(segments)
    grid = GridIndex(cell_size=600.0, items=items)
    tree = STRtree(items, node_capacity=4)
    expected = brute_force_nearest(items, query, limit=max_distance)
    for backend in (grid, tree):
        got = backend.nearest(query, max_distance=max_distance)
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert got[1] <= max_distance + 1e-9
            assert np.isclose(got[1], expected[1], atol=1e-6)


# --------------------------------------------------------------------------- #
# polyline projection
# --------------------------------------------------------------------------- #
polyline_points = st.lists(point, min_size=2, max_size=20)


@settings(max_examples=60, deadline=None)
@given(vertices=polyline_points, query=point)
def test_polyline_projection_matches_segmentwise_minimum(vertices, query):
    """``Polyline.project`` equals the minimum over its segments."""
    from repro.geo.polyline import Polyline

    line = Polyline(vertices)
    matched, offset, dist = line.project(np.asarray(query))
    segment_min = min(seg.distance_to(np.asarray(query)) for seg in line.segments())
    assert np.isclose(dist, segment_min, atol=1e-6)
    assert 0.0 <= offset <= line.length + 1e-9
    # The matched point lies on the polyline at the reported offset and at
    # the reported distance from the query.
    assert np.allclose(matched, line.point_at(offset), atol=1e-6)
    assert np.isclose(np.hypot(*(matched - np.asarray(query))), dist, atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(vertices=polyline_points, fraction=st.floats(min_value=0.0, max_value=1.0))
def test_polyline_projection_of_on_line_point_is_exact(vertices, fraction):
    """A point taken from the polyline projects back to distance ~0."""
    from repro.geo.polyline import Polyline

    line = Polyline(vertices)
    offset = fraction * line.length
    on_line = line.point_at(offset)
    _, _, dist = line.project(on_line)
    assert dist <= 1e-6


@settings(max_examples=40, deadline=None)
@given(vertices=polyline_points, query=point)
def test_polyline_projection_agrees_across_index_backends(vertices, query):
    """Indexing polyline segments gives the same nearest distance everywhere."""
    from repro.geo.polyline import Polyline

    line = Polyline(vertices)
    items = [
        IndexedItem(key=i, bounds=BoundingBox(*seg.bounds()), distance=seg.distance_to)
        for i, seg in enumerate(line.segments())
    ]
    _, _, direct = line.project(np.asarray(query))
    for index in (
        GridIndex(cell_size=400.0, items=items),
        STRtree(items, node_capacity=4),
    ):
        got = index.nearest(query)
        assert got is not None
        assert np.isclose(got[1], direct, atol=1e-6)
    brute = brute_force_nearest(items, query)
    assert brute is not None and np.isclose(brute[1], direct, atol=1e-6)
