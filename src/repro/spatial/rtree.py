"""Static STR-packed R-tree.

The Sort-Tile-Recursive (STR) packing algorithm builds a balanced R-tree in
one pass over the item bounding boxes.  The road map is static for the whole
simulation, so a bulk-loaded tree is a natural fit; it also serves as an
independent implementation against which the grid index is cross-checked in
the test-suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generic, Hashable, Iterable, List, Optional, Sequence, TypeVar, Union

from repro.geo.bbox import BoundingBox
from repro.spatial.index import IndexedItem, SpatialIndex

T = TypeVar("T", bound=Hashable)


@dataclass
class _Node(Generic[T]):
    """Internal node: bounding box over children (nodes or leaf items)."""

    bounds: BoundingBox
    children: List[Union["_Node[T]", IndexedItem[T]]] = field(default_factory=list)
    is_leaf: bool = True


class STRtree(SpatialIndex[T]):
    """Bulk-loaded R-tree using Sort-Tile-Recursive packing.

    Parameters
    ----------
    items:
        The items to index.  The tree is static: :meth:`insert` after
        construction falls back to a small overflow list that is scanned
        linearly, which keeps the interface compatible with
        :class:`~repro.spatial.grid.GridIndex` for the rare dynamic use.
    node_capacity:
        Maximum number of children per node.
    """

    def __init__(
        self, items: Optional[Iterable[IndexedItem[T]]] = None, node_capacity: int = 16
    ):
        if node_capacity < 2:
            raise ValueError("node_capacity must be at least 2")
        self.node_capacity = int(node_capacity)
        self._items: List[IndexedItem[T]] = list(items) if items is not None else []
        self._overflow: List[IndexedItem[T]] = []
        self._root: Optional[_Node[T]] = self._build(self._items) if self._items else None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, items: Sequence[IndexedItem[T]]) -> _Node[T]:
        leaves = self._pack_level(list(items), leaf=True)
        level: List[_Node[T]] = leaves
        while len(level) > 1:
            level = self._pack_level(level, leaf=False)
        return level[0]

    def _pack_level(self, entries: list, leaf: bool) -> List[_Node[T]]:
        """Group *entries* (items or nodes) into parent nodes via STR tiling."""

        def bounds_of(entry) -> BoundingBox:
            return entry.bounds

        def center_x(entry) -> float:
            b = bounds_of(entry)
            return (b.min_x + b.max_x) * 0.5

        def center_y(entry) -> float:
            b = bounds_of(entry)
            return (b.min_y + b.max_y) * 0.5

        n = len(entries)
        cap = self.node_capacity
        n_nodes = max(1, math.ceil(n / cap))
        n_slices = max(1, math.ceil(math.sqrt(n_nodes)))
        per_slice = math.ceil(n / n_slices)

        entries_sorted = sorted(entries, key=center_x)
        nodes: List[_Node[T]] = []
        for s in range(n_slices):
            chunk = entries_sorted[s * per_slice : (s + 1) * per_slice]
            if not chunk:
                continue
            chunk.sort(key=center_y)
            for i in range(0, len(chunk), cap):
                group = chunk[i : i + cap]
                box = group[0].bounds
                for entry in group[1:]:
                    box = box.union(entry.bounds)
                nodes.append(_Node(bounds=box, children=list(group), is_leaf=leaf))
        return nodes

    # ------------------------------------------------------------------ #
    # SpatialIndex interface
    # ------------------------------------------------------------------ #
    def insert(self, item: IndexedItem[T]) -> None:
        """Add an item after construction (stored in a linear overflow list)."""
        self._items.append(item)
        self._overflow.append(item)

    def query_bbox(self, box: BoundingBox) -> list[IndexedItem[T]]:
        """All items whose bounding boxes intersect *box*."""
        out: List[IndexedItem[T]] = []
        if self._root is not None:
            stack: List[_Node[T]] = [self._root]
            while stack:
                node = stack.pop()
                if not node.bounds.intersects(box):
                    continue
                if node.is_leaf:
                    for item in node.children:  # type: ignore[assignment]
                        if item.bounds.intersects(box):
                            out.append(item)  # type: ignore[arg-type]
                else:
                    for child in node.children:
                        stack.append(child)  # type: ignore[arg-type]
        for item in self._overflow:
            if item.bounds.intersects(box):
                out.append(item)
        return out

    def items(self) -> List[IndexedItem[T]]:
        """Every stored item (tree-packed plus overflow), in insertion order."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def height(self) -> int:
        """Height of the packed tree (0 for an empty tree)."""
        if self._root is None:
            return 0
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[assignment]
            h += 1
        return h
