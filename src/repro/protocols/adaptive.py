"""Wolfson-style adaptive dead-reckoning strategies (sdr, adr, dtdr).

The related-work section of the paper summarises the dead-reckoning policies
of Wolfson et al. [12] for moving-objects databases, which differ from the
accuracy-bounded protocols of the rest of this package: they minimise a
*cost* that combines the price of an update message with the price of
position uncertainty and deviation, rather than guaranteeing a fixed
accuracy.

* :class:`SpeedDeadReckoning` (sdr) — a constant deviation threshold.
* :class:`AdaptiveDeadReckoning` (adr) — the threshold is recomputed at
  every update from the recently observed deviation growth so that the total
  cost (update cost amortised over the update interval plus the expected
  deviation cost) is minimised.
* :class:`DisconnectionDetectionDeadReckoning` (dtdr) — the threshold decays
  over time since the last update, so that a long silence can only mean a
  disconnection, not a large deviation.

These protocols use the same linear prediction as
:class:`~repro.protocols.linear.LinearPredictionProtocol`; only the
threshold policy differs.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.protocols.base import UpdateProtocol, UpdateReason
from repro.protocols.prediction import LinearPrediction, PredictionFunction


class _LinearPredictionThresholdProtocol(UpdateProtocol):
    """Shared machinery: linear prediction with a protocol-defined threshold."""

    def __init__(
        self,
        accuracy: float,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
    ):
        super().__init__(accuracy, sensor_uncertainty, estimation_window)
        self._prediction = LinearPrediction()

    def prediction_function(self) -> PredictionFunction:
        return self._prediction

    def current_threshold(self, time: float) -> float:
        """The deviation threshold in force at *time* (overridden by dtdr/adr)."""
        return self.accuracy

    def _should_update(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> Optional[UpdateReason]:
        deviation = self.deviation(time, position)
        if deviation + self.sensor_uncertainty > self.current_threshold(time):
            return UpdateReason.THRESHOLD
        return None


class SpeedDeadReckoning(_LinearPredictionThresholdProtocol):
    """Wolfson's *speed dead reckoning* (sdr): a fixed deviation threshold.

    Functionally equivalent to linear-prediction dead reckoning with
    ``us = threshold``; provided under its own name so the adaptive variants
    have their natural baseline in the benchmarks.
    """

    name = "speed dead reckoning (sdr)"

    def __init__(
        self,
        threshold: float,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
    ):
        super().__init__(threshold, sensor_uncertainty, estimation_window)


class AdaptiveDeadReckoning(_LinearPredictionThresholdProtocol):
    """Wolfson's *adaptive dead reckoning* (adr).

    The cost of tracking over an update interval of length ``T`` with
    threshold ``th`` is modelled as ``update_cost / T + deviation_cost *
    E[deviation]`` with ``E[deviation] ~ th / 2`` for a deviation that grows
    roughly linearly at rate ``r`` (so ``T = th / r``).  Minimising
    ``update_cost * r / th + deviation_cost * th / 2`` over ``th`` gives

    ``th* = sqrt(2 * update_cost * r / deviation_cost)``.

    The deviation growth rate ``r`` is re-estimated at every update from the
    time it took the deviation to reach the previous threshold, which is the
    essence of adr: straight, steady movement grows the threshold (fewer
    updates), erratic movement shrinks it (smaller uncertainty).

    Parameters
    ----------
    initial_threshold:
        Threshold used until the first adaptation.
    update_cost:
        Cost of transmitting one update message (arbitrary units).
    deviation_cost:
        Cost per metre of average deviation per second (same units).
    min_threshold, max_threshold:
        Clamp on the adapted threshold.
    """

    name = "adaptive dead reckoning (adr)"

    def __init__(
        self,
        initial_threshold: float,
        update_cost: float = 1.0,
        deviation_cost: float = 0.001,
        min_threshold: float = 5.0,
        max_threshold: float = 2000.0,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
    ):
        super().__init__(initial_threshold, sensor_uncertainty, estimation_window)
        if update_cost <= 0 or deviation_cost <= 0:
            raise ValueError("update_cost and deviation_cost must be positive")
        if min_threshold <= 0 or max_threshold < min_threshold:
            raise ValueError("invalid threshold bounds")
        self.update_cost = float(update_cost)
        self.deviation_cost = float(deviation_cost)
        self.min_threshold = float(min_threshold)
        self.max_threshold = float(max_threshold)
        self._threshold = float(initial_threshold)

    def current_threshold(self, time: float) -> float:
        return self._threshold

    def _post_update_hook(self, message) -> None:
        # Estimate the deviation growth rate from the interval that just
        # ended, then pick the cost-minimising threshold for the next one.
        previous_time = getattr(self, "_previous_update_time", None)
        now = message.state.time
        if previous_time is not None and now > previous_time:
            interval = now - previous_time
            rate = self._threshold / interval  # metres of deviation per second
            optimal = math.sqrt(2.0 * self.update_cost * rate / self.deviation_cost)
            self._threshold = min(self.max_threshold, max(self.min_threshold, optimal))
        self._previous_update_time = now

    def reset(self) -> None:
        super().reset()
        self._threshold = self.accuracy
        self._previous_update_time = None


class DisconnectionDetectionDeadReckoning(_LinearPredictionThresholdProtocol):
    """Wolfson's *disconnection detection dead reckoning* (dtdr).

    The threshold continuously decreases while no update is sent, so a
    prolonged silence implies the connection is lost rather than that the
    object happens to move exactly as predicted.

    Parameters
    ----------
    initial_threshold:
        Threshold immediately after an update.
    decay_time:
        Time (seconds) after which the threshold has decayed to
        ``floor_fraction`` of its initial value (linear decay).
    floor_fraction:
        Lower bound on the threshold, as a fraction of the initial value.
    disconnect_timeout:
        Silence (seconds since the last update) after which the tracker
        declares a probable disconnection — the point of the decaying
        threshold: a *connected* source moving as predicted would still be
        under the decayed threshold, so a silence this long means the link
        is gone.  Declarations are recorded on
        :attr:`disconnection_times`.  Under the event kernel the timer
        fires at exactly ``last_update + disconnect_timeout``; under the
        tick loop the condition is polled and detected at the first
        sighting past the timeout.  ``None`` disables detection.
    """

    name = "disconnection-detection dead reckoning (dtdr)"

    def __init__(
        self,
        initial_threshold: float,
        decay_time: float = 300.0,
        floor_fraction: float = 0.2,
        disconnect_timeout: Optional[float] = None,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
    ):
        super().__init__(initial_threshold, sensor_uncertainty, estimation_window)
        if decay_time <= 0:
            raise ValueError("decay_time must be positive")
        if not (0.0 < floor_fraction <= 1.0):
            raise ValueError("floor_fraction must be in (0, 1]")
        if disconnect_timeout is not None and disconnect_timeout <= 0:
            raise ValueError("disconnect_timeout must be positive")
        self.decay_time = float(decay_time)
        self.floor_fraction = float(floor_fraction)
        self.disconnect_timeout = (
            float(disconnect_timeout) if disconnect_timeout is not None else None
        )
        self._disconnected = False
        self._disconnection_times: list = []

    def current_threshold(self, time: float) -> float:
        if self.last_reported is None:
            return self.accuracy
        elapsed = max(0.0, time - self.last_reported.time)
        fraction = max(self.floor_fraction, 1.0 - elapsed / self.decay_time)
        return self.accuracy * fraction

    # ------------------------------------------------------------------ #
    # disconnection detection
    # ------------------------------------------------------------------ #
    @property
    def disconnection_times(self) -> list:
        """Instants at which a probable disconnection was declared."""
        return list(self._disconnection_times)

    @property
    def disconnected(self) -> bool:
        """Whether the tracker currently believes the link is down."""
        return self._disconnected

    def _declare_disconnection(self, time: float) -> None:
        self._disconnected = True
        self._disconnection_times.append(float(time))

    def next_deadline(self) -> Optional[float]:
        """The exact instant at which silence becomes a disconnection."""
        if (
            self.disconnect_timeout is None
            or self._disconnected
            or self.last_reported is None
        ):
            return None
        return self.last_reported.time + self.disconnect_timeout

    def on_timer(self, time: float):
        """Declare the disconnection at the exact timeout (event kernel)."""
        deadline = self.next_deadline()
        if deadline is not None and time >= deadline:
            self._declare_disconnection(time)
        return None

    def _pre_decision_hook(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> None:
        # Tick-loop (polled) detection: declared at the first sighting past
        # the timeout rather than at the exact instant.
        deadline = self.next_deadline()
        if deadline is not None and time >= deadline:
            self._declare_disconnection(time)

    def _post_update_hook(self, message) -> None:
        # Any transmitted update proves the link is up again.
        self._disconnected = False

    def reset(self) -> None:
        super().reset()
        self._disconnected = False
        # Rebinding (not clearing) also detaches a clone_for copy from the
        # prototype's list, so no _detach_clone_state override is needed.
        self._disconnection_times = []
