"""Unit tests for repro.spatial.grid."""

import pytest

from repro.geo.bbox import BoundingBox
from repro.geo.segment import Segment
from repro.spatial.grid import GridIndex
from repro.spatial.index import IndexedItem


def segment_item(key, start, end):
    seg = Segment(start, end)
    return IndexedItem(key=key, bounds=BoundingBox(*seg.bounds()), distance=seg.distance_to)


@pytest.fixture()
def populated_index():
    index = GridIndex(cell_size=100.0)
    # A grid of horizontal segments spaced 200 m apart vertically.
    for i in range(10):
        index.insert(segment_item(i, (0.0, i * 200.0), (1000.0, i * 200.0)))
    return index


class TestConstruction:
    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0.0)

    def test_len(self, populated_index):
        assert len(populated_index) == 10

    def test_constructor_accepts_items(self):
        items = [segment_item(0, (0, 0), (10, 0))]
        assert len(GridIndex(cell_size=50.0, items=items)) == 1

    def test_cell_statistics(self, populated_index):
        stats = populated_index.cell_statistics()
        assert stats["cells"] > 0
        assert stats["max_per_cell"] >= 1

    def test_empty_statistics(self):
        stats = GridIndex().cell_statistics()
        assert stats == {"cells": 0, "max_per_cell": 0, "mean_per_cell": 0.0}


class TestQueries:
    def test_query_bbox_finds_intersecting(self, populated_index):
        hits = populated_index.query_bbox(BoundingBox(400.0, -10.0, 600.0, 210.0))
        assert sorted(item.key for item in hits) == [0, 1]

    def test_query_bbox_no_hits(self, populated_index):
        assert populated_index.query_bbox(BoundingBox(0.0, 2500.0, 10.0, 2600.0)) == []

    def test_query_bbox_does_not_duplicate(self, populated_index):
        hits = populated_index.query_bbox(BoundingBox(-50.0, -50.0, 1050.0, 50.0))
        keys = [item.key for item in hits]
        assert len(keys) == len(set(keys))

    def test_query_radius_exact(self, populated_index):
        hits = populated_index.query_radius((500.0, 90.0), 95.0)
        assert [item.key for item in hits] == [0]

    def test_query_radius_multiple(self, populated_index):
        hits = populated_index.query_radius((500.0, 100.0), 150.0)
        assert sorted(item.key for item in hits) == [0, 1]

    def test_nearest(self, populated_index):
        found = populated_index.nearest((500.0, 260.0))
        assert found is not None
        item, dist = found
        assert item.key == 1
        assert dist == pytest.approx(60.0)

    def test_nearest_respects_max_distance(self, populated_index):
        assert populated_index.nearest((500.0, 260.0), max_distance=10.0) is None

    def test_nearest_on_empty_index(self):
        assert GridIndex().nearest((0.0, 0.0)) is None

    def test_nearest_zero_max_distance(self, populated_index):
        assert populated_index.nearest((500.0, 0.0), max_distance=0.0) is None

    def test_k_nearest_ordering(self, populated_index):
        results = populated_index.k_nearest((500.0, 250.0), k=3)
        keys = [item.key for item, _ in results]
        assert keys == [1, 2, 0]
        dists = [d for _, d in results]
        assert dists == sorted(dists)

    def test_k_nearest_k_zero(self, populated_index):
        assert populated_index.k_nearest((0.0, 0.0), k=0) == []

    def test_nearest_far_query_still_finds(self, populated_index):
        found = populated_index.nearest((50000.0, 50000.0))
        assert found is not None
