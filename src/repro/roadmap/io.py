"""Serialisation of road maps to and from JSON.

A portable, dependency-free JSON format keeps maps reproducible across runs
and lets users plug in their own networks (for example, one exported from
OpenStreetMap by an external tool) without touching the generators.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.roadmap.builder import RoadMapBuilder
from repro.roadmap.elements import RoadClass
from repro.roadmap.graph import RoadMap

#: Format version written into every file; bumped on incompatible changes.
FORMAT_VERSION = 1


def roadmap_to_dict(roadmap: RoadMap) -> dict:
    """Convert a :class:`RoadMap` to a JSON-serialisable dictionary."""
    return {
        "format": "repro-roadmap",
        "version": FORMAT_VERSION,
        "intersections": [
            {"id": node.id, "x": float(node.position[0]), "y": float(node.position[1])}
            for node in roadmap.intersections.values()
        ],
        "links": [
            {
                "id": link.id,
                "from": link.from_node,
                "to": link.to_node,
                "road_class": link.road_class.value,
                "speed_limit": float(link.speed_limit),
                "name": link.name,
                "shape_points": [
                    [float(x), float(y)] for x, y in link.shape_points()
                ],
            }
            for link in roadmap.links.values()
        ],
    }


def roadmap_from_dict(data: dict) -> RoadMap:
    """Rebuild a :class:`RoadMap` from :func:`roadmap_to_dict` output."""
    if data.get("format") != "repro-roadmap":
        raise ValueError("not a repro road-map document")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported road-map format version {data.get('version')!r}")
    builder = RoadMapBuilder()
    for node in data["intersections"]:
        builder.add_intersection((node["x"], node["y"]), node_id=int(node["id"]))
    for link in data["links"]:
        builder.add_link(
            from_node=int(link["from"]),
            to_node=int(link["to"]),
            shape_points=[(float(x), float(y)) for x, y in link.get("shape_points", [])],
            road_class=RoadClass(link.get("road_class", RoadClass.SECONDARY.value)),
            speed_limit=float(link["speed_limit"]) if link.get("speed_limit") else None,
            name=link.get("name", ""),
            link_id=int(link["id"]),
        )
    return builder.build()


def save_roadmap(roadmap: RoadMap, path: Union[str, Path]) -> None:
    """Write *roadmap* to *path* as JSON."""
    path = Path(path)
    path.write_text(json.dumps(roadmap_to_dict(roadmap)), encoding="utf-8")


def load_roadmap(path: Union[str, Path]) -> RoadMap:
    """Read a road map previously written by :func:`save_roadmap`."""
    path = Path(path)
    return roadmap_from_dict(json.loads(path.read_text(encoding="utf-8")))
