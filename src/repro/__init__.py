"""repro — map-based dead-reckoning protocols for updating location information.

A from-scratch reproduction of

    A. Leonhardi, C. Nicu, K. Rothermel,
    "A Map-based Dead-reckoning Protocol for Updating Location Information",
    University of Stuttgart, Technical Report 2001/09 (IPPS 2002 workshops).

The package contains the full stack the paper's evaluation needs: planar
geometry and spatial indexes, a road-map model with synthetic network
generators, GPS-trace containers and noise models, a mobility simulator,
map matching, the family of update protocols (non-dead-reckoning baselines,
linear prediction, the map-based protocol and its variants), a location
server, the simulation engine and the experiment harness that regenerates
the paper's tables and figures.

Quick start::

    from repro.mobility import freeway_scenario
    from repro.protocols import LinearPredictionProtocol, MapBasedProtocol
    from repro.sim import run_simulation

    scenario = freeway_scenario(scale=0.1)
    linear = LinearPredictionProtocol(accuracy=100.0,
                                      sensor_uncertainty=scenario.sensor_sigma,
                                      estimation_window=scenario.estimation_window)
    print(run_simulation(linear, scenario.sensor_trace, scenario.true_trace).updates_per_hour)
"""

import logging as _logging

from repro import geo
from repro import spatial
from repro import roadmap
from repro import traces
from repro import mobility
from repro import mapmatching
from repro import protocols
from repro import obs
from repro import service
from repro import sim
from repro import experiments

#: Library convention: silent unless the application configures logging
#: (the CLI's ``-v`` wires ``logging.basicConfig``).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "geo",
    "spatial",
    "roadmap",
    "traces",
    "mobility",
    "mapmatching",
    "protocols",
    "obs",
    "service",
    "sim",
    "experiments",
    "__version__",
]
