"""Unit tests for repro.mapmatching.offline."""

import numpy as np
import pytest

from repro.mapmatching.matcher import MatcherConfig
from repro.mapmatching.offline import (
    match_trace,
    matched_link_sequence,
    matching_accuracy,
)
from repro.traces.trace import Trace


class TestMatchTrace:
    def test_matches_straight_drive(self, straight_map, straight_trace):
        points = match_trace(straight_trace, straight_map, MatcherConfig(tolerance=30.0))
        assert len(points) == len(straight_trace)
        matched = [p for p in points if p.link_id is not None]
        assert len(matched) >= len(points) - 2
        for point in matched:
            assert point.distance is not None and point.distance <= 30.0
            assert point.matched_position is not None

    def test_off_map_trace(self, straight_map):
        times = np.arange(0.0, 10.0)
        positions = np.column_stack((times * 10.0, np.full_like(times, 5000.0)))
        points = match_trace(Trace(times, positions), straight_map)
        assert all(p.link_id is None for p in points)

    def test_matched_positions_lie_on_links(self, straight_map, straight_trace):
        points = match_trace(straight_trace, straight_map)
        for point in points:
            if point.matched_position is not None:
                assert abs(point.matched_position[1]) < 1e-6


class TestLinkSequence:
    def test_sequence_collapses_duplicates(self, straight_map, straight_trace):
        points = match_trace(straight_trace, straight_map)
        sequence = matched_link_sequence(points)
        assert len(sequence) < len(points)
        for a, b in zip(sequence, sequence[1:]):
            assert a != b

    def test_sequence_skips_off_map(self, straight_map):
        times = np.arange(0.0, 20.0)
        xs = times * 30.0
        ys = np.where(times < 10, 0.0, 5000.0)  # second half is off the map
        points = match_trace(Trace(times, np.column_stack((xs, ys))), straight_map)
        sequence = matched_link_sequence(points)
        assert len(sequence) >= 1


class TestMatchingAccuracy:
    def test_perfect_accuracy_on_clean_trace(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        points = match_trace(
            scenario.true_trace,
            scenario.roadmap,
            MatcherConfig(tolerance=scenario.matching_tolerance),
        )
        accuracy = matching_accuracy(points, scenario.journey.link_ids, scenario.roadmap)
        assert accuracy > 0.95

    def test_noisy_trace_still_accurate(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        points = match_trace(
            scenario.sensor_trace,
            scenario.roadmap,
            MatcherConfig(tolerance=scenario.matching_tolerance),
        )
        accuracy = matching_accuracy(points, scenario.journey.link_ids, scenario.roadmap)
        assert accuracy > 0.9

    def test_length_mismatch_raises(self, straight_map, straight_trace):
        points = match_trace(straight_trace, straight_map)
        with pytest.raises(ValueError):
            matching_accuracy(points, [1, 2, 3], straight_map)

    def test_empty_points(self, straight_map):
        assert matching_accuracy([], [], straight_map) == 0.0
