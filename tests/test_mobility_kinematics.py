"""Unit tests for repro.mobility.kinematics."""

import random

import numpy as np
import pytest

from repro.mobility.kinematics import CITY_DRIVER, DriverProfile, SpeedController
from repro.roadmap.generators import city_grid_map, straight_road_map
from repro.roadmap.routing import RoutePlanner


@pytest.fixture(scope="module")
def straight_route():
    roadmap = straight_road_map(length_m=3000.0, n_links=3, speed_limit_kmh=72.0)
    planner = RoutePlanner(roadmap)
    start, _ = roadmap.nearest_intersection((0.0, 0.0))
    end, _ = roadmap.nearest_intersection((3000.0, 0.0))
    return planner.shortest_route(start.id, end.id)


@pytest.fixture(scope="module")
def city_route():
    roadmap = city_grid_map(rows=6, cols=6, spacing_m=250.0, jitter_m=0.0, seed=0)
    planner = RoutePlanner(roadmap)
    return planner.random_route(min_length=3000.0, rng=random.Random(0), straight_bias=0.7)


class TestDriverProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriverProfile(speed_factor=0.0)
        with pytest.raises(ValueError):
            DriverProfile(max_acceleration=0.0)
        with pytest.raises(ValueError):
            DriverProfile(lateral_acceleration=0.0)
        with pytest.raises(ValueError):
            DriverProfile(stop_probability=1.5)

    def test_presets_are_valid(self):
        assert CITY_DRIVER.stop_probability > 0


class TestSpeedController:
    def test_invalid_ds(self, straight_route):
        with pytest.raises(ValueError):
            SpeedController(straight_route, DriverProfile(), ds=0.0)

    def test_speed_below_limit(self, straight_route):
        profile = DriverProfile(speed_factor=0.9, speed_noise_sigma=0.0)
        controller = SpeedController(straight_route, profile, rng=random.Random(0))
        offsets = np.linspace(0.0, straight_route.length, 100)
        for offset in offsets:
            assert controller.speed_at(offset) <= 20.0 * 0.9 * 1.001 + 1e-6

    def test_no_stops_when_probability_zero(self, straight_route):
        profile = DriverProfile(stop_probability=0.0)
        controller = SpeedController(straight_route, profile, rng=random.Random(0))
        assert controller.stops == []

    def test_stops_planned_at_intersections(self, city_route):
        profile = DriverProfile(stop_probability=1.0, stop_duration_range=(10.0, 10.0))
        controller = SpeedController(city_route, profile, rng=random.Random(1))
        assert len(controller.stops) == len(city_route.links) - 1
        for offset, duration in controller.stops:
            assert duration == 10.0
            assert 0.0 < offset < city_route.length

    def test_acceleration_limits_hold(self, city_route):
        profile = DriverProfile(
            speed_factor=0.95, max_acceleration=1.5, max_deceleration=2.0,
            stop_probability=0.0, speed_noise_sigma=0.0,
        )
        controller = SpeedController(city_route, profile, ds=5.0, rng=random.Random(2))
        offsets = np.arange(0.0, city_route.length, 5.0)
        speeds = np.array([controller.speed_at(o) for o in offsets])
        # v^2 difference over ds bounds the implied acceleration.
        dv2 = np.diff(speeds**2)
        ds = np.diff(offsets)
        accelerations = dv2 / (2.0 * ds)
        assert accelerations.max() <= profile.max_acceleration + 0.2
        assert accelerations.min() >= -profile.max_deceleration - 0.2

    def test_curves_slow_down(self, city_route):
        # At a 90-degree grid corner the curve speed must drop well below the limit.
        profile = DriverProfile(
            speed_factor=1.0, lateral_acceleration=2.0,
            stop_probability=0.0, speed_noise_sigma=0.0,
        )
        controller = SpeedController(city_route, profile, rng=random.Random(3))
        # Find a corner: consecutive links with a large direction change.
        corner_offset = None
        for i, (a, b) in enumerate(zip(city_route.links, city_route.links[1:])):
            if float(a.direction_at(a.length) @ b.direction_at(0.0)) < 0.5:
                corner_offset = city_route.link_start_offset(i + 1)
                break
        if corner_offset is None:
            pytest.skip("route has no sharp corner")
        mid_link_offset = city_route.link_start_offset(0) + city_route.links[0].length / 2.0
        assert controller.speed_at(corner_offset) < controller.target_speed_at(mid_link_offset)

    def test_estimated_travel_time_positive(self, city_route):
        controller = SpeedController(city_route, CITY_DRIVER, rng=random.Random(4))
        estimate = controller.estimated_travel_time()
        minimum = city_route.length / (60.0 / 3.6)
        assert estimate > minimum
