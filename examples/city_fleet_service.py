#!/usr/bin/env python
"""A small city taxi fleet tracked through the location service.

Demonstrates the full system of the paper's Fig. 1 with several mobile
objects at once:

* a city road network and one simulated drive per taxi,
* each taxi's *source* runs the map-based dead-reckoning protocol and sends
  updates over a message channel with latency and occasional losses,
* a single *location server* holds the last reported state per taxi and
  answers the application queries motivated in the paper's introduction —
  "find the nearest taxi cab" and "address all users inside an area".

Run with::

    python examples/city_fleet_service.py
"""

import random

import numpy as np

from repro.experiments.report import format_table
from repro.geo.bbox import BoundingBox
from repro.mobility.kinematics import CITY_DRIVER
from repro.mobility.vehicle import VehicleSimulator
from repro.protocols.mapbased import MapBasedConfig, MapBasedProtocol
from repro.roadmap.generators import city_grid_map
from repro.roadmap.routing import RoutePlanner
from repro.service.channel import MessageChannel
from repro.service.queries import nearest_object_query, range_query
from repro.service.server import LocationServer
from repro.service.source import LocationSource
from repro.traces.noise import GaussMarkovNoise

N_TAXIS = 5
ACCURACY = 75.0  # metres requested at the server
QUERY_POINT = (2000.0, 2000.0)  # a customer standing mid-town
DOWNTOWN = BoundingBox(1000.0, 1000.0, 3000.0, 3000.0)


def main() -> None:
    rng = random.Random(7)
    roadmap = city_grid_map(rows=16, cols=16, spacing_m=250.0, seed=7)
    planner = RoutePlanner(roadmap)
    server = LocationServer()

    # --- set up one journey + source per taxi -------------------------------
    fleet = []
    for i in range(N_TAXIS):
        route = planner.random_route(min_length=6_000.0, rng=rng, straight_bias=0.7)
        journey = VehicleSimulator(route, CITY_DRIVER, rng=rng).run(name=f"taxi-{i}")
        noise = GaussMarkovNoise(sigma=2.5, correlation_time=60.0, seed=100 + i)
        sensor_trace = noise.apply(journey.trace)

        protocol = MapBasedProtocol(
            accuracy=ACCURACY,
            roadmap=roadmap,
            sensor_uncertainty=noise.typical_error,
            estimation_window=4,
            config=MapBasedConfig(matching_tolerance=30.0),
        )
        channel = MessageChannel(latency=1.5, loss_probability=0.01, seed=200 + i)
        source = LocationSource(f"taxi-{i}", protocol, channel)
        server.register_object(
            f"taxi-{i}", prediction=protocol.prediction_function(), accuracy=ACCURACY
        )
        fleet.append(
            {
                "id": f"taxi-{i}",
                "journey": journey,
                "sensor": sensor_trace,
                "source": source,
                "channel": channel,
            }
        )

    # --- run the fleet for the duration of the shortest journey -------------
    horizon = int(min(len(taxi["sensor"]) for taxi in fleet))
    for step in range(horizon):
        now = float(step)
        for taxi in fleet:
            sample = taxi["sensor"][step]
            taxi["source"].process_sighting(sample.time, sample.position)
            for object_id, message in taxi["channel"].deliver_due(now):
                server.receive_update(object_id, message, now)

    # --- report tracking cost and accuracy -----------------------------------
    now = float(horizon - 1)
    rows = []
    for taxi in fleet:
        truth = taxi["journey"].trace[horizon - 1].position
        predicted = server.predict_position(taxi["id"], now)
        error = float(np.hypot(*(predicted - truth))) if predicted is not None else float("nan")
        rows.append(
            {
                "taxi": taxi["id"],
                "updates sent": taxi["source"].updates_sent,
                "bytes sent": taxi["channel"].stats.bytes_sent,
                "msgs lost": taxi["channel"].stats.messages_lost,
                "error now [m]": round(error, 1),
            }
        )
    print(format_table(rows, title=f"Fleet after {horizon} s (us = {ACCURACY:.0f} m)"))

    # --- application queries --------------------------------------------------
    print()
    nearest = nearest_object_query(server, QUERY_POINT, time=now, k=3)
    print(f"Nearest taxis to {QUERY_POINT}:")
    for object_id, distance in nearest:
        print(f"  {object_id}: {distance:.0f} m away")

    inside = range_query(server, DOWNTOWN, time=now, margin=1.0)
    print(f"Taxis currently downtown ({DOWNTOWN.as_tuple()}): {inside or 'none'}")


if __name__ == "__main__":
    main()
