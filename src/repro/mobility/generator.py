"""Composable scenario generation.

The paper evaluates its protocols on four canned movement patterns.  This
module opens that up: a scenario is *composed* from four orthogonal axes —

* **topology** — the road network the object moves on (Manhattan grid,
  ring-and-spoke radial city, motorway corridor, inter-urban town chain,
  motorway-feeding-a-grid commuter network, footpath mesh);
* **traffic regime** — how traffic conditions shape the longitudinal
  behaviour (free flow, rush-hour stop-and-go, signalised progression,
  sparse night traffic);
* **agent** — what kind of object moves and how it picks its route (car on
  a wandering trip, through-commuter, multi-stop delivery round with dwell
  times, pedestrian);
* **degradation** — what happens to the sensor data (GPS dropout windows
  such as tunnels, correlated noise bursts such as urban canyons).

A :class:`GeneratorSpec` freezes one combination plus a default seed, and
:func:`generate_scenario` materialises it into the same
:class:`~repro.mobility.scenarios.Scenario` dataclass the canonical
scenarios use, so everything downstream — sweeps, fleets, figures, golden
tests — runs unchanged on generated scenarios.  Generation is fully
deterministic for a given ``(spec, seed, scale)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.mobility.kinematics import DriverProfile
from repro.mobility.pedestrian import PedestrianProfile, PedestrianSimulator
from repro.mobility.scenarios import (
    CAR_US_SWEEP,
    Scenario,
    corridor_route,
    _truncate_route,
)
from repro.mobility.vehicle import SimulatedJourney, VehicleSimulator
from repro.roadmap.elements import RoadClass
from repro.roadmap.generators import (
    city_grid_map,
    corridor_city_map,
    freeway_map,
    interurban_map,
    pedestrian_map,
    radial_ring_map,
)
from repro.roadmap.graph import RoadMap
from repro.roadmap.routing import Route, RoutePlanner
from repro.traces.noise import GaussMarkovNoise
from repro.traces.trace import Trace


# --------------------------------------------------------------------------- #
# topology
# --------------------------------------------------------------------------- #
TOPOLOGY_KINDS = ("grid", "radial", "corridor", "interurban", "mixed", "footpath")


@dataclass(frozen=True)
class Topology:
    """Road-network axis of a generated scenario.

    Only the fields relevant to ``kind`` are used:

    ``grid`` / ``footpath``
        ``rows``, ``cols``, ``spacing_m``.
    ``radial``
        ``n_arms``, ``n_rings``, ``ring_spacing_m``.
    ``corridor``
        ``length_km`` (motorway corridor with exit ramps).
    ``interurban``
        ``n_towns``, ``town_spacing_km``.
    ``mixed``
        ``length_km`` (corridor part) plus ``rows``/``cols``/``spacing_m``
        (grid part).
    """

    kind: str
    rows: int = 12
    cols: int = 12
    spacing_m: float = 250.0
    n_arms: int = 8
    n_rings: int = 5
    ring_spacing_m: float = 450.0
    length_km: float = 40.0
    n_towns: int = 5
    town_spacing_km: float = 14.0

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; expected one of {TOPOLOGY_KINDS}"
            )

    def build(self, seed: int) -> RoadMap:
        """Materialise the road network for *seed*."""
        if self.kind == "grid":
            return city_grid_map(
                rows=self.rows, cols=self.cols, spacing_m=self.spacing_m, seed=seed
            )
        if self.kind == "radial":
            return radial_ring_map(
                n_arms=self.n_arms,
                n_rings=self.n_rings,
                ring_spacing_m=self.ring_spacing_m,
                seed=seed,
            )
        if self.kind == "corridor":
            return freeway_map(length_km=self.length_km, seed=seed)
        if self.kind == "interurban":
            return interurban_map(
                n_towns=self.n_towns, town_spacing_km=self.town_spacing_km, seed=seed
            )
        if self.kind == "mixed":
            return corridor_city_map(
                corridor_km=self.length_km,
                rows=self.rows,
                cols=self.cols,
                spacing_m=self.spacing_m,
                seed=seed,
            )
        return pedestrian_map(
            rows=self.rows, cols=self.cols, spacing_m=self.spacing_m, seed=seed
        )

    @property
    def knobs(self) -> Dict[str, object]:
        """The parameters that matter for this kind (docs / README table)."""
        if self.kind in ("grid", "footpath"):
            return {"rows": self.rows, "cols": self.cols, "spacing_m": self.spacing_m}
        if self.kind == "radial":
            return {
                "n_arms": self.n_arms,
                "n_rings": self.n_rings,
                "ring_spacing_m": self.ring_spacing_m,
            }
        if self.kind == "corridor":
            return {"length_km": self.length_km}
        if self.kind == "interurban":
            return {"n_towns": self.n_towns, "town_spacing_km": self.town_spacing_km}
        return {
            "corridor_km": self.length_km,
            "rows": self.rows,
            "cols": self.cols,
            "spacing_m": self.spacing_m,
        }


@dataclass(frozen=True)
class RealMapTopology:
    """Topology axis backed by an imported (OpenStreetMap) road network.

    Drop-in alternative to :class:`Topology` for :class:`GeneratorSpec`:
    it exposes the same ``kind`` / ``build(seed)`` / ``knobs`` surface, but
    the road network comes out of the :mod:`repro.ingest` pipeline instead
    of a synthetic generator.

    Exactly one of the two sources is used:

    ``map_file``
        Path to an OSM extract (XML or Overpass JSON).  Imported through
        the compiled-map disk cache, so repeated sweeps skip re-parsing.
        The network is *invariant under the scenario seed* — a real city
        does not change shape per run; the seed still drives route choice,
        traffic and sensor noise.
    ``fixture``
        Name of a deterministic synthetic extract from
        :data:`repro.ingest.fixtures.FIXTURES` (used by the library's
        ``osm_*`` scenarios and CI, where no real extract is available).
        The seed *is* forwarded, so different seeds get different towns.

    ``bbox`` (``(min_lat, min_lon, max_lat, max_lon)``) clips the import,
    ``contract=False`` skips degree-2 contraction (benchmarks only).
    """

    map_file: Optional[str] = None
    fixture: Optional[str] = None
    bbox: Optional[Tuple[float, float, float, float]] = None
    contract: bool = True
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.map_file is None) == (self.fixture is None):
            raise ValueError("exactly one of map_file / fixture must be given")

    @property
    def kind(self) -> str:
        return "osm"

    def build(self, seed: int) -> RoadMap:
        """Materialise the imported road network."""
        # Runtime import: keeps the ingest machinery out of scenario-library
        # import time and avoids any package-cycle risk.
        from repro.ingest import build_fixture_xml, compile_osm, import_map

        if self.map_file is not None:
            return import_map(
                self.map_file,
                bbox=self.bbox,
                contract=self.contract,
                cache_dir=self.cache_dir,
            ).roadmap
        xml = build_fixture_xml(self.fixture, seed)
        return compile_osm(
            xml,
            bbox=self.bbox,
            contract=self.contract,
            source_name=f"fixture:{self.fixture}/seed={seed}",
        ).roadmap

    @property
    def knobs(self) -> Dict[str, object]:
        source = self.map_file if self.map_file is not None else f"fixture:{self.fixture}"
        out: Dict[str, object] = {"source": source}
        if self.bbox is not None:
            out["bbox"] = self.bbox
        if not self.contract:
            out["contract"] = False
        return out


# --------------------------------------------------------------------------- #
# traffic regime
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TrafficRegime:
    """Traffic-condition axis: how the longitudinal behaviour is shaped."""

    name: str
    speed_factor: float = 0.9
    stop_probability: float = 0.1
    stop_duration_range: Tuple[float, float] = (5.0, 30.0)
    speed_noise_sigma: float = 0.06
    max_acceleration: float = 1.8
    max_deceleration: float = 2.5
    lateral_acceleration: float = 2.2

    def driver_profile(self) -> DriverProfile:
        """Translate the regime into the longitudinal controller's profile."""
        return DriverProfile(
            speed_factor=self.speed_factor,
            max_acceleration=self.max_acceleration,
            max_deceleration=self.max_deceleration,
            lateral_acceleration=self.lateral_acceleration,
            stop_probability=self.stop_probability,
            stop_duration_range=self.stop_duration_range,
            speed_noise_sigma=self.speed_noise_sigma,
        )

    def pedestrian_profile(self) -> PedestrianProfile:
        """Translate the regime into a pedestrian profile."""
        return PedestrianProfile(
            walking_speed_factor=self.speed_factor,
            pause_probability=self.stop_probability,
            pause_duration_range=self.stop_duration_range,
            speed_noise_sigma=self.speed_noise_sigma,
        )


#: Steady traffic at close to the speed limit, no forced stops.
FREE_FLOW = TrafficRegime(
    name="free_flow",
    speed_factor=0.92,
    stop_probability=0.0,
    speed_noise_sigma=0.05,
    lateral_acceleration=3.0,
)
#: Congested stop-and-go: slow cruise, frequent long halts, jittery speeds.
RUSH_HOUR = TrafficRegime(
    name="rush_hour",
    speed_factor=0.55,
    stop_probability=0.55,
    stop_duration_range=(10.0, 90.0),
    speed_noise_sigma=0.14,
    max_acceleration=1.2,
    lateral_acceleration=1.8,
)
#: Signalised progression: normal cruise speed, regular medium stops.
SIGNALIZED = TrafficRegime(
    name="signalized",
    speed_factor=0.88,
    stop_probability=0.4,
    stop_duration_range=(15.0, 45.0),
    speed_noise_sigma=0.07,
)
#: Sparse night traffic: fast, smooth, essentially no stops.
NIGHT = TrafficRegime(
    name="night",
    speed_factor=1.0,
    stop_probability=0.05,
    stop_duration_range=(5.0, 15.0),
    speed_noise_sigma=0.03,
    lateral_acceleration=3.2,
)
#: Relaxed walking regime (pauses at shop windows and crossings).
STROLL = TrafficRegime(
    name="stroll",
    speed_factor=0.85,
    stop_probability=0.1,
    stop_duration_range=(5.0, 45.0),
    speed_noise_sigma=0.1,
)

#: Registry of the built-in regimes by name.
REGIMES: Dict[str, TrafficRegime] = {
    r.name: r for r in (FREE_FLOW, RUSH_HOUR, SIGNALIZED, NIGHT, STROLL)
}


# --------------------------------------------------------------------------- #
# agent
# --------------------------------------------------------------------------- #
AGENT_KINDS = ("car", "pedestrian", "delivery")
ROUTE_STYLES = ("wander", "corridor", "through", "multi_stop")


@dataclass(frozen=True)
class AgentSpec:
    """Moving-object axis: what moves and how it chooses its route.

    Parameters
    ----------
    kind:
        ``car``, ``pedestrian`` or ``delivery`` (car with scheduled
        drop-off dwell times).
    route_style:
        ``wander`` (biased random walk), ``corridor`` (follow the highest
        road class end to end), ``through`` (shortest path between the
        network extremes, the commuter pattern) or ``multi_stop`` (chained
        shortest paths through random waypoints; implied by ``delivery``).
    straight_bias:
        For ``wander`` routes: probability of going straight at a crossing.
    n_stops:
        For ``multi_stop`` routes: number of waypoints.
    dwell_range:
        For ``delivery``: ``(min, max)`` dwell at each drop-off in seconds.
    estimation_window:
        Speed/heading estimation window handed to the protocols.
    sample_interval:
        Seconds between sensor sightings — the positioning receiver's duty
        cycle, e.g. ``20.0`` for a battery-saving 0.05 Hz tracker.  The
        object's movement is always simulated at the native 1 s step; the
        sighting stream (sensor *and* paired ground truth) is decimated to
        this interval afterwards, so a sparse tracker moves exactly like a
        densely sampled one and merely reports less often.  Must be a
        positive multiple of the 1 s mobility step; the default ``1.0``
        keeps every sample.
    """

    kind: str = "car"
    route_style: str = "wander"
    straight_bias: float = 0.72
    n_stops: int = 8
    dwell_range: Tuple[float, float] = (60.0, 240.0)
    estimation_window: int = 4
    sample_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in AGENT_KINDS:
            raise ValueError(f"unknown agent kind {self.kind!r}; expected one of {AGENT_KINDS}")
        if self.route_style not in ROUTE_STYLES:
            raise ValueError(
                f"unknown route style {self.route_style!r}; expected one of {ROUTE_STYLES}"
            )
        if not (0.0 <= self.straight_bias <= 1.0):
            raise ValueError("straight_bias must be in [0, 1]")
        if self.n_stops < 1:
            raise ValueError("n_stops must be at least 1")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")


# --------------------------------------------------------------------------- #
# degradation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Degradation:
    """Sensor-degradation axis: what happens to the GPS data.

    Attributes
    ----------
    dropout_windows:
        Number of contiguous windows in which the sensor reports nothing
        (tunnels, parking garages).  The affected samples are removed from
        the trace entirely — sensor *and* ground truth, since an
        unobserved instant contributes neither an update opportunity nor
        an error sample.
    dropout_fraction:
        Total fraction of samples removed, spread over the windows.
    burst_windows:
        Number of windows with extra position noise (urban canyons,
        multipath).
    burst_sigma:
        Extra white noise sigma (metres, per axis) inside burst windows.
    burst_fraction:
        Total fraction of samples affected by bursts.
    """

    dropout_windows: int = 0
    dropout_fraction: float = 0.0
    burst_windows: int = 0
    burst_sigma: float = 0.0
    burst_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.dropout_windows < 0 or self.burst_windows < 0:
            raise ValueError("window counts must be non-negative")
        if not (0.0 <= self.dropout_fraction < 0.9):
            raise ValueError("dropout_fraction must be in [0, 0.9)")
        if not (0.0 <= self.burst_fraction <= 1.0):
            raise ValueError("burst_fraction must be in [0, 1]")
        if self.burst_sigma < 0:
            raise ValueError("burst_sigma must be non-negative")

    @property
    def is_null(self) -> bool:
        """Whether this degradation changes nothing."""
        return (self.dropout_windows == 0 or self.dropout_fraction == 0.0) and (
            self.burst_windows == 0 or self.burst_sigma == 0.0 or self.burst_fraction == 0.0
        )

    def _windows(
        self, n: int, n_windows: int, fraction: float, rng: random.Random
    ) -> List[Tuple[int, int]]:
        """Disjoint half-open index windows covering ~``fraction`` of ``n``."""
        total = int(round(n * fraction))
        if n_windows <= 0 or total <= 0:
            return []
        per_window = max(1, total // n_windows)
        windows: List[Tuple[int, int]] = []
        # Sample 0 is never degraded: it bootstraps protocol and server.
        candidates = list(range(1, max(2, n - per_window)))
        rng.shuffle(candidates)
        for start in candidates:
            if len(windows) == n_windows:
                break
            end = min(n, start + per_window)
            if all(end <= s or start >= e for s, e in windows):
                windows.append((start, end))
        return sorted(windows)

    def apply(
        self,
        sensor: Trace,
        journey: SimulatedJourney,
        seed: int,
    ) -> Tuple[Trace, SimulatedJourney]:
        """Degrade *sensor* (and, for dropouts, the paired ground truth)."""
        if self.is_null:
            return sensor, journey
        n = len(sensor)
        positions = sensor.positions.copy()
        rng = random.Random(seed)
        if self.burst_windows and self.burst_sigma > 0 and self.burst_fraction > 0:
            noise_rng = np.random.default_rng(seed + 1)
            for start, end in self._windows(n, self.burst_windows, self.burst_fraction, rng):
                positions[start:end] += noise_rng.normal(
                    0.0, self.burst_sigma, size=(end - start, 2)
                )
        keep = np.ones(n, dtype=bool)
        if self.dropout_windows and self.dropout_fraction > 0:
            for start, end in self._windows(n, self.dropout_windows, self.dropout_fraction, rng):
                keep[start:end] = False
            keep[0] = True
        times = sensor.times[keep]
        degraded_sensor = Trace(times, positions[keep], name=sensor.name)
        if keep.all():
            return degraded_sensor, journey
        truth = journey.trace
        degraded_truth = Trace(times, truth.positions[keep], name=truth.name)
        link_ids = [lid for lid, k in zip(journey.link_ids, keep) if k]
        degraded_journey = SimulatedJourney(
            trace=degraded_truth,
            link_ids=link_ids,
            route=journey.route,
            stop_count=journey.stop_count,
        )
        return degraded_sensor, degraded_journey


# --------------------------------------------------------------------------- #
# sighting-rate decimation
# --------------------------------------------------------------------------- #
def _sighting_stride(times: np.ndarray, interval: float) -> int:
    """The index stride realising *interval* on the trace's sighting grid.

    The interval must be a (near-exact) positive multiple of the trace's
    base step — decimation keeps every k-th sighting, it does not
    interpolate new instants.
    """
    if interval <= 0:
        raise ValueError("sample_interval must be positive")
    if len(times) < 2:
        return 1
    diffs = np.diff(times)
    base = float(np.median(diffs))
    stride = interval / base
    k = int(round(stride))
    if k < 1 or abs(stride - k) > 1e-9:
        raise ValueError(
            f"sample_interval {interval:g} s is not a multiple of the trace's "
            f"{base:g} s sighting step"
        )
    return k


def decimate_sightings(
    sensor: Trace, journey: SimulatedJourney, interval: float
) -> Tuple[Trace, SimulatedJourney]:
    """Thin the sighting stream to one fix every *interval* seconds.

    Keeps every k-th sighting (via :func:`repro.traces.resample.decimate`)
    of the sensor trace and the paired ground truth — positions *and* link
    ids, always including the first sample, exactly the bookkeeping
    :class:`Degradation` uses for dropout windows.  A stride of 1 returns
    the inputs unchanged (bit-identical scenarios for the default
    interval).
    """
    from repro.traces.resample import decimate

    k = _sighting_stride(sensor.times, interval)
    if k == 1:
        return sensor, journey
    thin_sensor = decimate(sensor, k)
    thin_truth = decimate(journey.trace, k)
    link_ids = journey.link_ids[::k]
    thin_journey = SimulatedJourney(
        trace=thin_truth,
        link_ids=link_ids,
        route=journey.route,
        stop_count=journey.stop_count,
    )
    return thin_sensor, thin_journey


def resample_scenario(scenario: Scenario, sample_interval: float) -> Scenario:
    """A copy of *scenario* with its sighting stream decimated.

    The post-build counterpart of :attr:`AgentSpec.sample_interval`, used
    by :class:`~repro.sim.runner.ScenarioSpec` to derive a low-rate variant
    of *any* library scenario (canonical ones included) without touching
    its recipe.  Roadmap, route and metadata are shared by reference; only
    the traces are replaced.
    """
    from dataclasses import replace

    sensor, journey = decimate_sightings(
        scenario.sensor_trace, scenario.journey, sample_interval
    )
    if sensor is scenario.sensor_trace:
        return scenario
    return replace(scenario, sensor_trace=sensor, journey=journey)


# --------------------------------------------------------------------------- #
# the composed spec
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GeneratorSpec:
    """A frozen combination of the four axes plus trip-level parameters."""

    name: str
    description: str
    topology: Topology
    regime: TrafficRegime
    agent: AgentSpec = AgentSpec()
    degradation: Degradation = Degradation()
    route_length_m: float = 30_000.0
    default_seed: int = 100
    us_values: Tuple[float, ...] = tuple(CAR_US_SWEEP)
    matching_tolerance: float = 30.0
    sensor_sigma: float = 2.5
    noise_correlation_s: float = 60.0
    route_algo: str = "dijkstra"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a generated scenario needs a name")
        if self.route_length_m <= 0:
            raise ValueError("route_length_m must be positive")
        if self.route_algo not in ("dijkstra", "ch"):
            raise ValueError(f"unknown route_algo {self.route_algo!r}")

    @property
    def knobs(self) -> Dict[str, object]:
        """Flat summary of the composition (README table / ``repro scenarios``)."""
        out: Dict[str, object] = {
            "topology": self.topology.kind,
            **self.topology.knobs,
            "regime": self.regime.name,
            "agent": self.agent.kind,
            "route_style": (
                "multi_stop" if self.agent.kind == "delivery" else self.agent.route_style
            ),
            "route_km": self.route_length_m / 1000.0,
        }
        if self.agent.kind == "delivery":
            out["delivery_stops"] = self.agent.n_stops
        if self.agent.sample_interval != 1.0:
            out["sample_interval_s"] = self.agent.sample_interval
        if self.route_algo != "dijkstra":
            out["route_algo"] = self.route_algo
        if self.degradation.dropout_windows:
            out["dropout"] = (
                f"{self.degradation.dropout_windows}x windows, "
                f"{self.degradation.dropout_fraction:.0%}"
            )
        if self.degradation.burst_windows and self.degradation.burst_sigma > 0:
            out["noise_bursts"] = (
                f"{self.degradation.burst_windows}x +{self.degradation.burst_sigma:g} m"
            )
        return out


# --------------------------------------------------------------------------- #
# route construction per agent style
# --------------------------------------------------------------------------- #
def _corridor_class(roadmap: RoadMap) -> RoadClass:
    """The highest road class present (the corridor to follow)."""
    classes = {link.road_class for link in roadmap.links.values()}
    for road_class in (RoadClass.MOTORWAY, RoadClass.PRIMARY, RoadClass.SECONDARY):
        if road_class in classes:
            return road_class
    return RoadClass.RESIDENTIAL


def _through_route(roadmap: RoadMap, planner: RoutePlanner) -> Route:
    """Shortest (fastest) route between the network's west and east extremes."""
    nodes = list(roadmap.intersections)
    west = min(nodes, key=lambda nid: float(roadmap.intersection(nid).position[0]))
    east = max(nodes, key=lambda nid: float(roadmap.intersection(nid).position[0]))
    return planner.shortest_route(west, east)


def _multi_stop_route(
    roadmap: RoadMap,
    planner: RoutePlanner,
    rng: random.Random,
    target_length: float,
    n_stops: int,
    max_attempts: int = 400,
) -> Tuple[Route, List[float]]:
    """A route chaining shortest paths through random waypoints.

    Returns the route plus the route offsets of the waypoint arrivals
    (where the agent dwells).  Waypoints are drawn at roughly
    ``target_length / n_stops`` spacing — so a scaled-down round still
    visits ``n_stops`` drop-offs, just closer together — until either all
    legs are assembled or the target length is reached.
    """
    nodes = sorted(roadmap.intersections)
    positions = {nid: roadmap.intersection(nid).position for nid in nodes}
    leg_target = max(200.0, target_length / max(1, n_stops))
    current = rng.choice(nodes)
    links: List = []
    dwell_offsets: List[float] = []
    total = 0.0
    attempts = 0
    while len(dwell_offsets) < n_stops and total < target_length and attempts < max_attempts:
        attempts += 1
        here = positions[current]
        candidates = [
            nid
            for nid in nodes
            if nid != current
            and 0.4 * leg_target
            <= float(np.hypot(*(positions[nid] - here)))
            <= 1.6 * leg_target
        ]
        target = rng.choice(candidates if candidates else [n for n in nodes if n != current])
        try:
            leg = planner.shortest_route(current, target)
        except nx.NetworkXNoPath:
            continue
        links.extend(leg.links)
        total += leg.length
        dwell_offsets.append(total)
        current = target
    if not links:
        raise RuntimeError("could not assemble a multi-stop route on this map")
    # The final arrival is the end of the trip, not a dwell.
    dwell_offsets = dwell_offsets[:-1]
    return Route(roadmap, links), dwell_offsets


@lru_cache(maxsize=8)
def _shared_planner(roadmap: RoadMap, weight: str, algo: str) -> RoutePlanner:
    """One planner per (map, weight, algo) across a whole fleet build.

    Every agent of a fleet plans on the same road map; sharing the planner
    means the routing graph — and, with ``algo="ch"``, the contraction
    hierarchy — is built once per map instead of once per agent.  Keyed by
    map identity (road maps are immutable), bounded so sweeps over many
    generated towns do not pin every map in memory.
    """
    return RoutePlanner(roadmap, weight=weight, algo=algo)


def _build_route(
    spec: GeneratorSpec,
    roadmap: RoadMap,
    rng: random.Random,
    target_length: float,
) -> Tuple[Route, List[Tuple[float, float]]]:
    """The route (and any scheduled dwell stops) for *spec*'s agent."""
    agent = spec.agent
    style = agent.route_style
    if agent.kind == "delivery":
        style = "multi_stop"
    if style == "corridor":
        route = corridor_route(roadmap, _corridor_class(roadmap))
        return _truncate_route(route, target_length), []
    planner = _shared_planner(
        roadmap, "travel_time" if style == "through" else "length", spec.route_algo
    )
    if style == "through":
        route = _through_route(roadmap, planner)
        return _truncate_route(route, target_length), []
    if style == "multi_stop":
        route, dwell_offsets = _multi_stop_route(
            roadmap, planner, rng, target_length, agent.n_stops
        )
        route = _truncate_route(route, target_length)
        stops = [
            (offset, rng.uniform(*agent.dwell_range))
            for offset in dwell_offsets
            if offset < route.length
        ]
        return route, stops
    route = planner.random_route(
        min_length=target_length, rng=rng, straight_bias=agent.straight_bias
    )
    return _truncate_route(route, target_length), []


# --------------------------------------------------------------------------- #
# scenario materialisation
# --------------------------------------------------------------------------- #
def generate_scenario(
    spec: GeneratorSpec, seed: Optional[int] = None, scale: float = 1.0
) -> Scenario:
    """Materialise *spec* into a :class:`Scenario`.

    Parameters
    ----------
    spec:
        The composed scenario recipe.
    seed:
        Master seed; ``None`` uses ``spec.default_seed``.  Derived streams
        (map geometry, route choice, journey, sensor noise, degradation)
        use fixed offsets of it, so different seeds decorrelate everything
        while equal seeds reproduce the scenario bit-identically.
    scale:
        Route-length scale factor in ``(0, 1]``, like the canonical
        scenarios.
    """
    if not (0.0 < scale <= 1.0):
        raise ValueError("scale must be in (0, 1]")
    seed = spec.default_seed if seed is None else int(seed)
    target_length = spec.route_length_m * scale

    roadmap = spec.topology.build(seed)
    rng = random.Random(seed + 17)
    route, dwell_stops = _build_route(spec, roadmap, rng, target_length)

    if spec.agent.kind == "pedestrian":
        journey = PedestrianSimulator(
            route, spec.regime.pedestrian_profile(), rng=rng, extra_stops=dwell_stops
        ).run(name=spec.name)
    else:
        journey = VehicleSimulator(
            route, spec.regime.driver_profile(), rng=rng, extra_stops=dwell_stops
        ).run(name=spec.name)

    noise = GaussMarkovNoise(
        sigma=spec.sensor_sigma,
        correlation_time=spec.noise_correlation_s,
        seed=seed + 1000,
    )
    sensor = noise.apply(journey.trace)
    # Sensor duty cycle: movement and noise stay at the native 1 s step,
    # the sighting stream is thinned afterwards (no-op at the default).
    sensor, journey = decimate_sightings(sensor, journey, spec.agent.sample_interval)
    sensor, journey = spec.degradation.apply(sensor, journey, seed=seed + 2000)

    return Scenario(
        name=spec.name,
        description=spec.description,
        roadmap=roadmap,
        route=route,
        journey=journey,
        sensor_trace=sensor,
        sensor_sigma=noise.typical_error,
        estimation_window=spec.agent.estimation_window,
        us_values=list(spec.us_values),
        matching_tolerance=spec.matching_tolerance,
    )
