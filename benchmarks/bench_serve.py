"""Live serving tier: request latency and saturation throughput.

The live tier (:mod:`repro.service.live`) serves one
:class:`~repro.service.facade.LocationService` over TCP with single-writer
ingestion behind a bounded queue.  This benchmark replays a library
scenario's update stream plus a seeded Poisson query stream against an
in-process server at **two client concurrencies** (one ingest connection
vs several racing ones, each alongside a query connection), closed-loop,
and records per-request wall-clock latency (avg/p50/p95/p99) and the
saturation throughput into ``BENCH_serve.json`` at the repository root.

Correctness rides along: every run's answers are re-derived on a plain
in-process facade from the recorded schedule and must be bit-identical
(``answers_identical``); the committed artifact also records the
throughput floor each concurrency must meet
(:data:`_REQUIRED_THROUGHPUT_RPS`, guarded by
``benchmarks/check_bench_floors.py`` in CI).

Env knobs for quick local runs: ``REPRO_BENCH_SERVE_BATCHES`` /
``REPRO_BENCH_SERVE_QUERIES`` cap the replayed traffic,
``REPRO_BENCH_SERVE_MIN_RPS`` lowers the *asserted* throughput floor on
noisy shared runners (the recorded floor stays at the target).
"""

from __future__ import annotations

import asyncio
import json
import os
import platform

from repro.experiments.library import FleetMix, fleet_lanes
from repro.service.live.server import LiveLocationServer
from repro.service.loadgen import (
    build_replay_plan,
    mismatched_answers,
    run_load_test,
    service_for_plan,
)
from repro.sim.workload import QueryWorkload

from conftest import run_once

_RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_serve.json")

#: Saturation throughput every measured concurrency must sustain
#: (requests per second, ingest + query combined).  Conservative: an
#: unloaded local socket does an order of magnitude more; the floor
#: catches a serialization or event-loop regression, not machine noise.
#: Raised from 300 with the columnar query engine + coalesced query
#: batching (measured ~3800+ rps on a single shared core).
_REQUIRED_THROUGHPUT_RPS = 600.0

#: Ingest connections per measured run (each runs alongside one query
#: connection); the artifact records one entry per concurrency.
_CONCURRENCIES = (1, 4)

_MIX = "city:linear:100:6"
_SCALE = 0.25
_QUERY_RATE_PER_S = 4.0


def _env_int(name, default):
    return int(os.environ.get(name, default))


def _build_plan():
    lanes = fleet_lanes([FleetMix.parse(_MIX)], scale=_SCALE, seed=7)
    workload = QueryWorkload(arrival_rate_per_s=_QUERY_RATE_PER_S, seed=11)
    return build_replay_plan(
        lanes,
        workload,
        max_batches=_env_int("REPRO_BENCH_SERVE_BATCHES", 400),
        max_queries=_env_int("REPRO_BENCH_SERVE_QUERIES", 200),
    )


async def _measure(plan, clients: int, n_shards: int = 2):
    server = LiveLocationServer(
        service_for_plan(plan, n_shards=n_shards), ingest_queue_size=64
    )
    host, port = await server.start()
    try:
        report = await run_load_test(
            plan, host, port, clients=clients, mode="concurrent"
        )
    finally:
        await server.stop()
    identical = mismatched_answers(plan, report, n_shards=n_shards) == []
    summary = report.as_dict()
    summary["answers_identical"] = identical
    return summary


def serve_benchmark():
    """Measure every concurrency; return the artifact record."""
    plan = _build_plan()
    runs = {}
    for clients in _CONCURRENCIES:
        runs[f"clients_{clients}"] = asyncio.run(_measure(plan, clients))
    return {
        "benchmark": "live_serving_tier",
        "mix": _MIX,
        "scale": _SCALE,
        "query_rate_per_s": _QUERY_RATE_PER_S,
        "batches": len(plan.batches),
        "updates": plan.total_updates,
        "queries": len(plan.calls),
        "required_throughput_rps": _REQUIRED_THROUGHPUT_RPS,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "runs": runs,
        "answers_identical": all(r["answers_identical"] for r in runs.values()),
        "p99_nonzero": all(
            r["query"]["p99_ms"] > 0.0 and r["ingest"]["p99_ms"] > 0.0
            for r in runs.values()
        ),
    }


def _print_record(record):
    print(json.dumps({k: v for k, v in record.items() if k != "machine"}, indent=2))


def _write_record(record):
    with open(_RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.normpath(_RESULT_PATH)}")


def _min_rps() -> float:
    """The asserted throughput floor (default: the recorded target)."""
    return float(os.environ.get("REPRO_BENCH_SERVE_MIN_RPS", _REQUIRED_THROUGHPUT_RPS))


def test_live_serving_latency_and_throughput(benchmark):
    record = run_once(benchmark, serve_benchmark)
    print()
    _print_record(record)
    _write_record(record)
    assert record["answers_identical"], "live answers diverge from the facade replay"
    assert record["p99_nonzero"], "latency histograms are empty"
    floor = _min_rps()
    for name, run in record["runs"].items():
        assert run["throughput_rps"] >= floor, (
            f"{name}: {run['throughput_rps']} rps is below the {floor} rps floor"
        )
