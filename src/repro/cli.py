"""Command-line interface.

``repro`` exposes the experiment harness and the data generators without
writing any Python::

    repro table1 --scale 0.25
    repro figure 7 --scale 0.25 --jobs 4
    repro headline --scale 0.25 --jobs 4
    repro scenarios
    repro sweep --scenario rush_hour_city --protocol map --scale 0.25 --out-dir artifacts
    repro simulate --scenario city --protocol map --accuracy 100 --scale 0.2
    repro simulate --scenario low_power_tracker --protocol linear --accuracy 100 --kernel event
    repro fleet --mix rush_hour_city:map:100:25 --mix walking:linear:50:10 --scale 0.1
    repro fleet --mix rush_hour_city:linear:100:20 --mix mixed_rate_city:linear:100:80 --kernel event --scale 0.1
    repro fleet --mix city:linear:100:50 --shards 4 --scale 0.1
    repro fleet --mix city:linear:100:50 --scale 0.1 --obs --obs-dir artifacts/obs
    repro obs-report artifacts/obs
    repro query-bench --scenario rush_hour_city --count 50 --shards 4 --scale 0.1
    repro query-bench --scenario poisson_queries_freeway --kernel event --scale 0.1
    repro serve --mix city:linear:100:10 --scale 0.1 --port 7450
    repro load-test --mix city:linear:100:10 --scale 0.1 --rate 5 --clients 4 --verify
    repro load-test --mix city:linear:100:10 --scale 0.1 --connect 127.0.0.1:7450
    repro generate-map city --out city.json
    repro generate-trace --scenario walking --out walk.csv --noisy
    repro visualize --scenario freeway --accuracy 200 --scale 0.1
    repro import-map extract.osm --cache-dir .mapcache
    repro sweep --map-file extract.osm --protocol map --scale 0.2
    repro fleet --map-file extract.osm --mix osm_extract:map:100:20 --scale 0.1

``--scenario`` accepts every name in the scenario library — the paper's
four canonical patterns plus the generated compositions (see ``repro
scenarios`` for the full table).  ``import-map`` runs an OpenStreetMap
extract through the ingest pipeline (parse, project, condition, compile)
into the compiled-map cache; ``sweep``/``fleet`` accept ``--map-file`` to
run protocols directly on such an imported network (the scenario is
registered as ``osm_<filename>``).

Every command prints plain-text tables (or JSON with ``--json``) so the
output can be diffed against the paper's numbers or piped into other tools.
Sweep-shaped commands execute on the shared
:class:`~repro.sim.runner.SweepRunner`; ``--jobs N`` fans their points out
over N worker processes, with results guaranteed identical to a serial run.
``simulate``/``fleet``/``sweep``/``query-bench`` accept ``--kernel
{tick,event}`` to pick the simulation kernel (see the README's "Simulation
kernel" section); the default tick loop and the event kernel are
bit-identical for uniform sampling, tick-aligned latency and on-grid (or
absent) protocol timer deadlines — off-grid timers (the ``time``
protocol's usual case) fire at exact instants under the event kernel
instead of being polled.

``fleet``, ``serve`` and ``load-test`` accept ``--obs`` (and ``--obs-dir
DIR``) to record metrics, spans and run provenance without changing any
result bit — ``repro obs-report DIR`` pretty-prints what was written.  A
global ``-v/--verbose`` (repeatable) turns on INFO/DEBUG logging.
"""

from __future__ import annotations

import argparse
import logging
import math
import sys
from typing import List, Optional, Sequence

from repro.experiments import ablations
from repro.experiments.figures import (
    figure7,
    figure8,
    figure9,
    figure10,
    headline_reductions,
)
from repro.experiments.library import (
    FleetMix,
    describe_scenarios,
    fleet_lanes,
    scenario_names,
)
from repro.experiments.report import format_series_chart, format_table, to_json
from repro.experiments.scenarios import get_scenario
from repro.experiments.tables import table1
from repro.experiments.visualize import render_route_updates, render_update_summary
from repro.mobility.scenarios import ScenarioName
from repro.roadmap import io as roadmap_io
from repro.roadmap.generators import (
    city_grid_map,
    freeway_map,
    interurban_map,
    pedestrian_map,
)
from repro.sim.config import PROTOCOL_IDS, SimulationConfig
from repro.sim.runner import QueryBenchSpec, ScenarioSpec, SweepRunner
from repro.sim.workload import QueryWorkload
from repro.traces import io as trace_io

_FIGURES = {"7": figure7, "8": figure8, "9": figure9, "10": figure10}
_MAP_GENERATORS = {
    "freeway": freeway_map,
    "interurban": interurban_map,
    "city": city_grid_map,
    "pedestrian": pedestrian_map,
}


def _positive_int(value: str) -> int:
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if n < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return n


def _bbox(value: str) -> List[float]:
    parts = [p for p in value.split(",") if p.strip()]
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            f"expected min_lat,min_lon,max_lat,max_lon, got {value!r}"
        )
    try:
        return [float(p) for p in parts]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bbox values must be numbers, got {value!r}")


def _accuracy_list(value: str) -> List[float]:
    try:
        out = [float(v) for v in value.split(",") if v.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers (e.g. 20,50,100), got {value!r}"
        )
    if not out:
        raise argparse.ArgumentTypeError("expected at least one accuracy value")
    if not all(math.isfinite(us) and us > 0 for us in out):
        raise argparse.ArgumentTypeError("accuracy values must be positive and finite")
    return out


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Map-based dead-reckoning reproduction: experiments and data generators.",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of ASCII tables"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log INFO to stderr; repeat (-vv) for DEBUG",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_scale(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--scale", type=float, default=1.0,
            help="fraction of the paper's trace length to simulate (default 1.0)",
        )

    def add_jobs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=_positive_int, default=1,
            help="parallel worker processes for the sweep points (default 1)",
        )

    def add_obs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--obs", action="store_true",
            help="record metrics, wall-time spans and a kernel flight "
                 "recorder for this run (results stay bit-identical; the "
                 "metrics report prints to stderr unless --obs-dir is given)",
        )
        p.add_argument(
            "--obs-dir", type=str, default=None, metavar="DIR",
            help="write metrics.json / trace.json / manifest.json to DIR "
                 "(implies --obs; trace.json opens in Perfetto)",
        )

    def add_kernel(p: argparse.ArgumentParser) -> None:
        from repro.sim.kernel import KERNELS

        p.add_argument(
            "--kernel", choices=list(KERNELS), default="tick",
            help="simulation kernel: the classic time-stepped loop (tick) or "
                 "the discrete-event scheduler (event); bit-identical for "
                 "uniform sampling, tick-aligned latency and on-grid timer "
                 "deadlines, the event kernel adds exact channel delivery and "
                 "timer instants (the 'time' protocol's off-grid deadlines "
                 "fire exactly instead of being polled), Poisson query "
                 "arrivals and fast sparse mixed-rate fleets (default tick)",
        )

    p_table = subparsers.add_parser("table1", help="reproduce Table 1")
    add_scale(p_table)

    p_figure = subparsers.add_parser("figure", help="reproduce Figure 7, 8, 9 or 10")
    p_figure.add_argument("number", choices=sorted(_FIGURES), help="figure number")
    add_scale(p_figure)
    add_jobs(p_figure)

    p_headline = subparsers.add_parser(
        "headline", help="maximum update-rate reductions (abstract / Sec. 4)"
    )
    add_scale(p_headline)
    add_jobs(p_headline)

    def add_map_file(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--map-file", type=str, default=None, metavar="EXTRACT",
            help="run on an imported OSM extract instead of a library scenario "
                 "(registered as scenario osm_<filename>; registration is "
                 "per-process, so combine with --jobs only where worker "
                 "processes fork — see repro.experiments.library)",
        )
        p.add_argument(
            "--map-cache-dir", type=str, default=None,
            help="compiled-map cache directory for --map-file "
                 "(default: $REPRO_MAP_CACHE or ~/.cache/repro/maps)",
        )

    p_sweep = subparsers.add_parser(
        "sweep", help="run one protocol's accuracy sweep and write JSON/CSV artifacts"
    )
    p_sweep.add_argument("--scenario", choices=scenario_names(), default=None)
    add_map_file(p_sweep)
    p_sweep.add_argument("--protocol", choices=list(PROTOCOL_IDS), required=True)
    p_sweep.add_argument("--seed", type=int, default=None, help="scenario seed override")
    p_sweep.add_argument(
        "--accuracies", type=_accuracy_list, default=None,
        help="comma-separated us values in metres (default: the scenario's sweep)",
    )
    p_sweep.add_argument(
        "--out-dir", type=str, default=None,
        help="directory for the JSON/CSV artifacts (default: print only)",
    )
    add_scale(p_sweep)
    add_jobs(p_sweep)
    add_kernel(p_sweep)

    p_ablation = subparsers.add_parser("ablation", help="run one of the ablation studies")
    p_ablation.add_argument(
        "study", choices=["um", "window", "turnpolicy", "adaptive", "speedlimit"]
    )
    p_ablation.add_argument(
        "--scenario", choices=[s.value for s in ScenarioName], default="freeway"
    )
    add_scale(p_ablation)

    p_sim = subparsers.add_parser("simulate", help="run one protocol over one scenario")
    p_sim.add_argument("--scenario", choices=scenario_names(), required=True)
    p_sim.add_argument("--protocol", choices=list(PROTOCOL_IDS), required=True)
    p_sim.add_argument("--accuracy", type=float, required=True, help="requested accuracy us [m]")
    add_scale(p_sim)
    add_kernel(p_sim)

    subparsers.add_parser(
        "scenarios", help="list every scenario in the library (canonical + generated)"
    )

    p_fleet = subparsers.add_parser(
        "fleet", help="run a heterogeneous fleet through the merged simulation loop"
    )
    p_fleet.add_argument(
        "--mix",
        action="append",
        required=True,
        metavar="SCENARIO:PROTOCOL:US[:COUNT]",
        help="one fleet slice, e.g. rush_hour_city:map:100:25 (repeatable)",
    )
    p_fleet.add_argument(
        "--per-object", action="store_true", help="emit one row per object instead of a summary"
    )
    p_fleet.add_argument("--seed", type=int, default=None, help="scenario seed override")
    p_fleet.add_argument(
        "--processes", type=_positive_int, default=1,
        help="partition the fleet into spatial shards and run one event "
             "kernel per worker process (bit-identical to --processes 1)",
    )
    p_fleet.add_argument(
        "--columnar", action="store_true",
        help="run an eligible homogeneous fleet through the columnar "
             "(struct-of-arrays) engine — bit-identical and much faster at "
             "mega-fleet sizes",
    )
    p_fleet.add_argument(
        "--shards", type=_positive_int, default=1,
        help="serve the fleet from a spatially sharded LocationService (default 1)",
    )
    add_map_file(p_fleet)
    add_scale(p_fleet)
    add_kernel(p_fleet)
    add_obs(p_fleet)

    p_qbench = subparsers.add_parser(
        "query-bench",
        help="replay a query workload against a sharded fleet mid-simulation",
    )
    p_qbench.add_argument("--scenario", choices=scenario_names(), default="rush_hour_city")
    p_qbench.add_argument("--protocol", choices=list(PROTOCOL_IDS), default="linear")
    p_qbench.add_argument("--accuracy", type=float, default=100.0, help="requested accuracy us [m]")
    p_qbench.add_argument("--count", type=_positive_int, default=25, help="fleet size")
    p_qbench.add_argument("--shards", type=_positive_int, default=4)
    p_qbench.add_argument(
        "--queries-per-tick", type=float, default=2.0,
        help="application queries issued per simulation tick (may be fractional)",
    )
    p_qbench.add_argument(
        "--query-mix", type=str, default=None, metavar="KIND=W,...",
        help='e.g. "range=2,nearest=1,geofence=0.5" (default: the scenario\'s mix)',
    )
    p_qbench.add_argument("--k", type=_positive_int, default=3, help="k for k-nearest queries")
    p_qbench.add_argument("--seed", type=int, default=None, help="scenario seed override")
    p_qbench.add_argument(
        "--arrival-rate", type=float, default=None, metavar="PER_S",
        help="Poisson query-arrival rate in queries per simulated second "
             "(event kernel only; default: the scenario's query_rate_per_s, "
             "falling back to per-tick arrivals)",
    )
    p_qbench.add_argument(
        "--out-dir", type=str, default=None,
        help="directory for the JSON artifact (default: print only)",
    )
    add_scale(p_qbench)
    add_kernel(p_qbench)

    def add_mix(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--mix",
            action="append",
            required=True,
            metavar="SCENARIO:PROTOCOL:US[:COUNT]",
            help="one fleet slice, e.g. rush_hour_city:map:100:25 (repeatable)",
        )

    p_serve = subparsers.add_parser(
        "serve",
        help="serve a scenario fleet's LocationService over TCP (length-prefixed JSON)",
    )
    add_mix(p_serve)
    p_serve.add_argument("--host", type=str, default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7450, help="listen port, 0 picks a free one (default 7450)"
    )
    p_serve.add_argument("--shards", type=_positive_int, default=1)
    p_serve.add_argument(
        "--queue-size", type=_positive_int, default=64,
        help="bound of the ingest queue in batches — the backpressure knob (default 64)",
    )
    p_serve.add_argument("--seed", type=int, default=None, help="scenario seed override")
    p_serve.add_argument(
        "--rebalance-skew", type=float, default=None, metavar="RATIO",
        help="re-home hot routing cells when the per-shard object-count skew "
             "(max/mean) exceeds RATIO (> 1.0; needs --shards > 1; off by default)",
    )
    p_serve.add_argument(
        "--rebalance-cells", type=_positive_int, default=4, metavar="N",
        help="max routing cells re-homed per rebalance pass (default 4)",
    )
    add_scale(p_serve)
    add_obs(p_serve)

    p_load = subparsers.add_parser(
        "load-test",
        help="replay a fleet's update stream plus Poisson queries against a live server",
    )
    add_mix(p_load)
    p_load.add_argument(
        "--rate", type=float, default=2.0, metavar="PER_S",
        help="Poisson query-arrival rate in queries per simulated second (default 2)",
    )
    p_load.add_argument(
        "--clients", type=_positive_int, default=2,
        help="concurrent ingest connections (default 2)",
    )
    p_load.add_argument(
        "--mode", choices=["concurrent", "lockstep"], default="concurrent",
        help="concurrent = saturation measurement; lockstep = one connection, "
             "deterministic plan order (default concurrent)",
    )
    p_load.add_argument(
        "--connect", type=str, default=None, metavar="HOST:PORT",
        help="drive an already running `repro serve` instead of an in-process server",
    )
    p_load.add_argument("--shards", type=_positive_int, default=1)
    p_load.add_argument(
        "--queue-size", type=_positive_int, default=64,
        help="ingest-queue bound of the in-process server (default 64)",
    )
    p_load.add_argument(
        "--no-wait", action="store_true",
        help="shed load on a full ingest queue instead of waiting for a slot",
    )
    p_load.add_argument(
        "--max-batches", type=_positive_int, default=None,
        help="cap the replayed update batches (default: the whole stream)",
    )
    p_load.add_argument(
        "--max-queries", type=_positive_int, default=None,
        help="cap the replayed queries (default: the whole Poisson stream)",
    )
    p_load.add_argument(
        "--verify", action="store_true",
        help="recompute every answer on an in-process facade and assert the "
             "live answers bit-identical (in-process server only)",
    )
    p_load.add_argument("--seed", type=int, default=None, help="scenario seed override")
    p_load.add_argument(
        "--query-seed", type=int, default=0, help="seed of the query stream (default 0)"
    )
    add_scale(p_load)
    add_obs(p_load)

    p_obs_report = subparsers.add_parser(
        "obs-report",
        help="pretty-print an observability directory written with --obs-dir",
    )
    p_obs_report.add_argument(
        "directory",
        help="directory holding metrics.json / trace.json / manifest.json "
             "(a path to one of those files also works)",
    )

    p_import = subparsers.add_parser(
        "import-map",
        help="import an OSM extract (XML / Overpass JSON) into the compiled-map cache",
    )
    p_import.add_argument("extract", help="path to the OSM extract")
    p_import.add_argument(
        "--bbox", type=_bbox, default=None, metavar="MINLAT,MINLON,MAXLAT,MAXLON",
        help="clip the import to a geodesic bounding box",
    )
    p_import.add_argument(
        "--no-compact", action="store_true",
        help="skip degree-2 chain contraction (debugging/benchmarks only)",
    )
    p_import.add_argument(
        "--min-stub-m", type=float, default=40.0,
        help="prune dead-end chains shorter than this many metres (default 40)",
    )
    p_import.add_argument(
        "--refresh", action="store_true", help="re-import even when the cache has the map"
    )
    p_import.add_argument(
        "--cache-dir", type=str, default=None,
        help="compiled-map cache directory (default: $REPRO_MAP_CACHE or ~/.cache/repro/maps)",
    )
    p_import.add_argument(
        "--out", type=str, default=None,
        help="additionally save the compiled road map JSON to this path",
    )

    p_route = subparsers.add_parser(
        "route",
        help="plan a shortest route on an imported map (Dijkstra or contraction hierarchy)",
    )
    p_route.add_argument("extract", help="path to the OSM extract (imported through the cache)")
    p_route.add_argument(
        "--from", dest="from_node", type=int, default=None, metavar="NODE",
        help="start intersection id (default: the westernmost intersection)",
    )
    p_route.add_argument(
        "--to", dest="to_node", type=int, default=None, metavar="NODE",
        help="destination intersection id (default: the easternmost intersection)",
    )
    p_route.add_argument(
        "--algo", choices=("dijkstra", "ch"), default="dijkstra",
        help="query engine: one tie-broken Dijkstra per query, or the "
        "contraction hierarchy (preprocessed once, cached next to the map)",
    )
    p_route.add_argument(
        "--weight", choices=("length", "travel_time"), default="length",
        help="edge weight: shortest distance or fastest travel time",
    )
    p_route.add_argument(
        "--repeat", type=_positive_int, default=5,
        help="plan the route this many times and report the best timing (default 5)",
    )
    p_route.add_argument(
        "--cache-dir", type=str, default=None,
        help="compiled-map cache directory (default: $REPRO_MAP_CACHE or ~/.cache/repro/maps)",
    )

    p_map = subparsers.add_parser("generate-map", help="generate a synthetic road map (JSON)")
    p_map.add_argument("kind", choices=sorted(_MAP_GENERATORS))
    p_map.add_argument("--out", required=True, help="output JSON path")
    p_map.add_argument("--seed", type=int, default=0)

    p_trace = subparsers.add_parser(
        "generate-trace", help="generate a movement trace for a scenario (CSV)"
    )
    p_trace.add_argument("--scenario", choices=scenario_names(), required=True)
    p_trace.add_argument("--out", required=True, help="output CSV path")
    p_trace.add_argument(
        "--noisy", action="store_true", help="write the noisy sensor trace instead of the truth"
    )
    add_scale(p_trace)

    p_vis = subparsers.add_parser(
        "visualize", help="ASCII rendering of a route and its update positions (cf. Fig. 3/6)"
    )
    p_vis.add_argument("--scenario", choices=scenario_names(), default="freeway")
    p_vis.add_argument("--protocol", choices=list(PROTOCOL_IDS), default="map")
    p_vis.add_argument("--accuracy", type=float, default=200.0)
    p_vis.add_argument("--width", type=int, default=100)
    p_vis.add_argument("--height", type=int, default=30)
    add_scale(p_vis)

    return parser


# --------------------------------------------------------------------------- #
# command implementations
# --------------------------------------------------------------------------- #
def _emit(args, rows, title: str) -> None:
    if args.json:
        print(to_json(rows))
    else:
        print(format_table(rows, title=title))


def _build_obs(args):
    """The run's :class:`~repro.obs.Observability` bundle, or ``None``."""
    if not (getattr(args, "obs", False) or getattr(args, "obs_dir", None)):
        return None
    from repro.obs import Observability

    return Observability()


def _finish_obs(args, obs, config, seed=None, timings=None) -> None:
    """Write (or print) what the bundle recorded; stderr keeps --json clean."""
    if obs is None:
        return
    if args.obs_dir:
        paths = obs.write(args.obs_dir, seed=seed, config=config, timings=timings)
        for kind in sorted(paths):
            print(f"wrote {kind}: {paths[kind]}", file=sys.stderr)
    else:
        print(obs.registry.render(), file=sys.stderr)


def _cmd_table1(args) -> int:
    rows = [row.as_dict() for row in table1(scale=args.scale)]
    _emit(args, rows, "Table 1 (measured vs paper)")
    return 0


def _cmd_figure(args) -> int:
    figure = _FIGURES[args.number](scale=args.scale, jobs=args.jobs)
    if args.json:
        print(to_json(figure.as_rows()))
        return 0
    print(format_table(figure.as_rows(), title=f"Figure {args.number} — {figure.description}"))
    print()
    print(
        format_series_chart(
            figure.baseline.accuracies,
            {s.label: s.updates_per_hour for s in figure.series.values()},
            y_label="updates/h",
        )
    )
    return 0


def _cmd_headline(args) -> int:
    reductions = headline_reductions(scale=args.scale, jobs=args.jobs)
    rows = [{"scenario": name, **values} for name, values in reductions.items()]
    _emit(args, rows, "Maximum update-rate reductions [%]")
    return 0


def _resolve_map_scenario(args) -> Optional[str]:
    """The scenario name to run: ``--scenario``, or a registered ``--map-file``.

    Returns ``None`` (after printing the error) when the combination is
    invalid; the registered name is written back to ``args.scenario`` so the
    downstream command code is oblivious to where the scenario came from.
    """
    if args.map_file and args.scenario:
        print("error: pass either --scenario or --map-file, not both", file=sys.stderr)
        return None
    if args.map_file:
        from repro.experiments.library import register_map_file_scenario

        try:
            name = register_map_file_scenario(
                args.map_file, cache_dir=args.map_cache_dir
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None
        print(f"registered imported map as scenario {name!r}", file=sys.stderr)
        args.scenario = name
        return name
    if not args.scenario:
        print("error: one of --scenario or --map-file is required", file=sys.stderr)
        return None
    return args.scenario


def _cmd_sweep(args) -> int:
    if _resolve_map_scenario(args) is None:
        return 2
    spec = ScenarioSpec(name=args.scenario, scale=args.scale, seed=args.seed)
    with SweepRunner(jobs=args.jobs) as runner:
        return _run_sweep_command(args, runner, spec)


def _run_sweep_command(args, runner: SweepRunner, spec: ScenarioSpec) -> int:
    points = runner.run_config_sweep(
        spec, args.protocol, args.accuracies, kernel=args.kernel
    )
    rows = [point.result.as_dict() for point in points]
    _emit(args, rows, f"{args.protocol} sweep on {args.scenario} (scale {args.scale:g})")
    if args.out_dir:
        name = f"sweep_{args.scenario}_{args.protocol}"
        written = runner.write_artifacts(
            points,
            name,
            out_dir=args.out_dir,
            metadata={
                "scenario": args.scenario,
                "protocol": args.protocol,
                "scale": args.scale,
                "seed": spec.seed,
                "jobs": args.jobs,
                "kernel": args.kernel,
            },
        )
        for fmt, path in written.items():
            # stderr, so `--json` stdout stays machine-parseable.
            print(f"wrote {fmt}: {path}", file=sys.stderr)
    return 0


def _cmd_ablation(args) -> int:
    scenario = ScenarioName(args.scenario)
    if args.study == "um":
        rows = ablations.matching_tolerance_ablation(scenario, scale=args.scale)
    elif args.study == "window":
        rows = ablations.estimation_window_ablation(scenario, scale=args.scale)
    elif args.study == "turnpolicy":
        rows = ablations.turn_policy_ablation(scenario, scale=args.scale)
    elif args.study == "adaptive":
        rows = ablations.adaptive_strategy_comparison(scenario, scale=args.scale)
    else:
        rows = ablations.speed_limit_prediction_ablation(scenario, scale=args.scale)
    _emit(args, rows, f"Ablation {args.study} ({args.scenario})")
    return 0


def _cmd_simulate(args) -> int:
    scenario = get_scenario(args.scenario, scale=args.scale)
    protocol = SimulationConfig(
        protocol_id=args.protocol, accuracy=args.accuracy
    ).build_protocol(scenario)
    result = SweepRunner().run_single(scenario, protocol, kernel=args.kernel)
    _emit(args, [result.as_dict()], f"{args.protocol} on {args.scenario} (us={args.accuracy:g} m)")
    return 0


def _cmd_scenarios(args) -> int:
    _emit(args, describe_scenarios(), "Scenario library")
    return 0


def _cmd_fleet(args) -> int:
    if args.map_file:
        # Register the imported map before the mixes are validated, so a
        # mix entry can reference it (scenario name osm_<filename>).
        from repro.experiments.library import register_map_file_scenario

        try:
            name = register_map_file_scenario(args.map_file, cache_dir=args.map_cache_dir)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"registered imported map as scenario {name!r}", file=sys.stderr)
    try:
        mix = [FleetMix.parse(text) for text in args.mix]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.service.facade import LocationService
    from repro.sim.fleet import FleetSimulation
    from repro.sim.runner import auto_region_size

    lanes = fleet_lanes(mix, scale=args.scale, seed=args.seed)
    server = None
    if args.shards > 1:
        # Size the routing cells from the fleet's actual extent: a fixed
        # metre value degenerates to a single cell on small-scale runs.
        server = LocationService(
            n_shards=args.shards,
            region_size=auto_region_size(lanes, args.shards),
        )
    obs = _build_obs(args)
    if args.columnar:
        from repro.sim.columnar import ColumnarFleetEngine

        if args.processes > 1 or server is not None:
            print(
                "error: --columnar runs the whole fleet in-process against "
                "the plain server (drop --processes/--shards)",
                file=sys.stderr,
            )
            return 2
        reason = ColumnarFleetEngine.ineligibility(lanes)
        if reason is not None:
            print(f"error: fleet is not columnar-eligible: {reason}", file=sys.stderr)
            return 2
        fleet = ColumnarFleetEngine.from_lanes(lanes, obs=obs).run()
    else:
        fleet = FleetSimulation(
            lanes, server=server, kernel=args.kernel, processes=args.processes, obs=obs
        ).run()
    _finish_obs(
        args,
        obs,
        config={
            "command": "fleet",
            "mix": list(args.mix),
            "scale": args.scale,
            "kernel": args.kernel,
            "shards": args.shards,
            "processes": args.processes,
            "columnar": bool(args.columnar),
        },
        seed=args.seed,
    )
    title = f"Fleet of {len(lanes)} objects (scale {args.scale:g})"
    if args.kernel != "tick":
        title += f", {args.kernel} kernel"
    if args.shards > 1:
        title += f", {args.shards} shards"
    if args.processes > 1:
        title += f", {args.processes} processes"
    if args.columnar:
        title += ", columnar engine"
    if args.per_object:
        _emit(args, fleet.as_rows(), title)
        return 0
    pooled = fleet.aggregate_metrics()
    summary = {
        "objects": len(lanes),
        "object_hours": round(fleet.object_hours, 3),
        "total_updates": fleet.total_updates,
        "updates_per_object_hour": round(fleet.updates_per_object_hour, 2),
        "total_bytes_sent": fleet.total_bytes_sent,
        "mean_error_m": round(pooled.mean_error, 2),
        "p95_error_m": round(pooled.percentile(95.0), 2),
        "max_error_m": round(pooled.max_error, 2),
    }
    if fleet.service_stats:
        summary["handoffs"] = fleet.service_stats["handoffs"]
        if args.json:
            # Machine consumers get the shard rows inline; text mode prints
            # them as a second table below.
            summary["per_shard"] = fleet.service_stats["per_shard"]
    _emit(args, [summary], title)
    if fleet.service_stats and not args.json:
        print()
        print(format_table(fleet.service_stats["per_shard"], title="Per-shard load"))
    return 0


def _cmd_query_bench(args) -> int:
    try:
        mix = QueryWorkload.parse_mix(args.query_mix) if args.query_mix else None
        spec = QueryBenchSpec(
            scenario=args.scenario,
            protocol_id=args.protocol,
            accuracy=args.accuracy,
            count=args.count,
            shards=args.shards,
            scale=args.scale,
            seed=args.seed,
            queries_per_tick=args.queries_per_tick,
            mix=mix,
            k=args.k,
            kernel=args.kernel,
            arrival_rate_per_s=args.arrival_rate,
        )
        # Surface workload validation (unknown kinds, negative rates) as a
        # clean CLI error instead of a traceback mid-run.
        spec.build_workload()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    runner = SweepRunner()
    record = runner.run_query_bench(spec)
    if args.json:
        print(to_json(record))
    else:
        workload = dict(record["workload"])
        summary = {
            "scenario": record["scenario"],
            "objects": record["objects"],
            "shards": record["shards"],
            "queries": workload.get("queries", 0),
            "hits": workload.get("hits", 0),
            "mean_query_us": workload.get("mean_query_us", 0.0),
            "queries_per_second": workload.get("queries_per_second", 0.0),
            "handoffs": record["service"].get("handoffs", 0),
        }
        print(format_table(
            [summary],
            title=f"Query bench on {args.scenario} (scale {args.scale:g})",
        ))
        print()
        print(format_table(record["per_shard"], title="Per-shard load"))
    if args.out_dir:
        path = runner.write_query_bench_artifact(
            record, f"query_bench_{args.scenario}_{args.protocol}", out_dir=args.out_dir
        )
        print(f"wrote json: {path}", file=sys.stderr)
    return 0


def _parse_fleet_mix(texts: Sequence[str]) -> Optional[List[FleetMix]]:
    try:
        return [FleetMix.parse(text) for text in texts]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.live.server import (
        LiveLocationServer,
        registrations_for_lanes,
        service_for_registrations,
    )
    from repro.sim.runner import auto_region_size

    mix = _parse_fleet_mix(args.mix)
    if mix is None:
        return 2
    lanes = fleet_lanes(mix, scale=args.scale, seed=args.seed)
    service = service_for_registrations(
        registrations_for_lanes(lanes),
        n_shards=args.shards,
        region_size=auto_region_size(lanes, args.shards),
    )

    obs = _build_obs(args)

    rebalance = None
    if args.rebalance_skew is not None:
        from repro.service.sharding import RebalancePolicy

        if args.shards < 2:
            print("--rebalance-skew needs --shards > 1", file=sys.stderr)
            return 2
        rebalance = RebalancePolicy(
            skew_threshold=args.rebalance_skew,
            max_cells_per_pass=args.rebalance_cells,
        )

    async def _serve() -> None:
        server = LiveLocationServer(
            service,
            host=args.host,
            port=args.port,
            ingest_queue_size=args.queue_size,
            obs=obs,
            rebalance=rebalance,
        )
        host, port = await server.start()
        rebalance_note = (
            f", rebalance skew > {args.rebalance_skew:g}" if rebalance else ""
        )
        print(
            f"serving {len(lanes)} objects on {host}:{port} "
            f"({args.shards} shard{'s' if args.shards != 1 else ''}, "
            f"ingest queue {args.queue_size}{rebalance_note}); "
            "send the shutdown op to stop",
            file=sys.stderr,
        )
        await server.run_until_shutdown()
        if rebalance is not None and rebalance.passes:
            report = rebalance.last_report
            print(
                f"rebalanced {rebalance.passes} time(s): {rebalance.cells_moved} "
                f"cells, {rebalance.objects_moved} objects re-homed "
                f"(last pass skew {report.skew_before:.3f} -> {report.skew_after:.3f})",
                file=sys.stderr,
            )

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
    _finish_obs(
        args,
        obs,
        config={
            "command": "serve",
            "mix": list(args.mix),
            "scale": args.scale,
            "shards": args.shards,
            "queue_size": args.queue_size,
            "rebalance_skew": args.rebalance_skew,
        },
        seed=args.seed,
    )
    return 0


def _cmd_load_test(args) -> int:
    import asyncio

    from repro.service.live.server import LiveLocationServer
    from repro.service.loadgen import (
        build_replay_plan,
        mismatched_answers,
        run_load_test,
        service_for_plan,
    )

    mix = _parse_fleet_mix(args.mix)
    if mix is None:
        return 2
    if args.connect and args.verify:
        print(
            "error: --verify needs the in-process server (the reference replay "
            "must share the registrations); drop --connect",
            file=sys.stderr,
        )
        return 2
    lanes = fleet_lanes(mix, scale=args.scale, seed=args.seed)
    workload = QueryWorkload(arrival_rate_per_s=args.rate, seed=args.query_seed)
    plan = build_replay_plan(
        lanes, workload, max_batches=args.max_batches, max_queries=args.max_queries
    )
    print(
        f"replaying {len(plan.batches)} batches ({plan.total_updates} updates) "
        f"and {len(plan.calls)} Poisson queries",
        file=sys.stderr,
    )

    obs = _build_obs(args)

    async def _drive() -> "object":
        if args.connect:
            host, _, port_text = args.connect.rpartition(":")
            return await run_load_test(
                plan, host, int(port_text),
                clients=args.clients, mode=args.mode, wait=not args.no_wait,
                obs=obs,
            )
        server = LiveLocationServer(
            service_for_plan(plan, n_shards=args.shards),
            ingest_queue_size=args.queue_size,
            obs=obs,
        )
        host, port = await server.start()
        try:
            return await run_load_test(
                plan, host, port,
                clients=args.clients, mode=args.mode, wait=not args.no_wait,
                obs=obs,
            )
        finally:
            await server.stop()

    report = asyncio.run(_drive())
    _finish_obs(
        args,
        obs,
        config={
            "command": "load-test",
            "mix": list(args.mix),
            "scale": args.scale,
            "mode": args.mode,
            "clients": args.clients,
            "rate": args.rate,
            "shards": args.shards,
            "queue_size": args.queue_size,
            "wait": not args.no_wait,
            "query_seed": args.query_seed,
        },
        seed=args.seed,
        timings={"wall_seconds": report.wall_seconds},
    )
    summary = report.as_dict()
    if args.json:
        print(to_json(summary))
    else:
        flat = {
            key: value
            for key, value in summary.items()
            if key not in ("ingest", "query")
        }
        print(format_table([flat], title=f"Load test ({args.mode}, {args.clients} clients)"))
        print()
        print(format_table(
            [
                {"requests": "ingest", **summary["ingest"]},
                {"requests": "query", **summary["query"]},
            ],
            title="Wall-clock latency",
        ))
    if args.verify:
        mismatches = mismatched_answers(plan, report, n_shards=args.shards)
        if mismatches:
            print(
                f"error: {len(mismatches)} answers differ from the facade replay",
                file=sys.stderr,
            )
            return 1
        print(
            f"verified: all {len(report.query_records)} live answers "
            "bit-identical to the facade replay",
            file=sys.stderr,
        )
    return 0


def _cmd_obs_report(args) -> int:
    import json as _json
    import os

    from repro.obs.trace import validate_chrome_trace

    directory = args.directory
    if directory.endswith(".json"):
        directory = os.path.dirname(directory) or "."

    def _load(name: str):
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as fh:
            return _json.load(fh)

    metrics = _load("metrics.json")
    manifest = _load("manifest.json")
    trace = _load("trace.json")
    if metrics is None and manifest is None and trace is None:
        print(
            f"error: no metrics.json / trace.json / manifest.json under {directory!r}",
            file=sys.stderr,
        )
        return 2
    problems = validate_chrome_trace(trace) if trace is not None else []
    if args.json:
        print(to_json({
            "directory": directory,
            "manifest": manifest,
            "metrics": (metrics or {}).get("metrics"),
            "trace_events": len(trace.get("traceEvents", [])) if trace else 0,
            "trace_problems": problems,
        }))
        return 1 if problems else 0
    if manifest is not None:
        git = manifest.get("git", {})
        sha = git.get("sha") or "unknown"
        dirty = "+dirty" if git.get("dirty") else ""
        rows = [{
            "git": f"{str(sha)[:12]}{dirty}",
            "seed": manifest.get("seed"),
            "config_hash": str(manifest.get("config_hash", ""))[:12],
            "python": manifest.get("python", ""),
            "numpy": manifest.get("numpy"),
        }]
        print(format_table(rows, title=f"Provenance ({directory})"))
        print()
    if metrics is not None:
        # Re-render the stored snapshot through a fresh registry-style table.
        snapshot = metrics.get("metrics", {})
        rows = []
        for name in sorted(snapshot):
            entry = snapshot[name]
            rows.append({
                "metric": name,
                "kind": entry.get("kind", ""),
                "deterministic": entry.get("deterministic", False),
                "value": entry.get("value", entry.get("count", "")),
            })
        print(format_table(rows, title="Metrics"))
        print()
    if trace is not None:
        verdict = "valid" if not problems else f"INVALID: {'; '.join(problems)}"
        print(
            f"trace.json: {len(trace.get('traceEvents', []))} events, {verdict} "
            "(open in Perfetto / chrome://tracing)"
        )
    return 1 if problems else 0


def _cmd_import_map(args) -> int:
    from repro.ingest import import_map

    try:
        compiled = import_map(
            args.extract,
            bbox=tuple(args.bbox) if args.bbox else None,
            contract=not args.no_compact,
            min_stub_m=args.min_stub_m,
            cache_dir=args.cache_dir,
            refresh=args.refresh,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = compiled.report
    row = {
        "source": compiled.roadmap.metadata.get("source", args.extract),
        "cached": compiled.cached,
        "intersections": report.output_intersections,
        "links": report.output_links,
        "total_length_km": round(report.total_length_km, 2),
        "nodes_contracted": report.nodes_contracted,
        "stub_segments_pruned": report.stub_segments_pruned,
        "components_dropped": report.components_dropped,
        **{k: round(v, 4) for k, v in compiled.timings.items()},
    }
    _emit(args, [row], f"Imported map {args.extract}")
    if compiled.cache_path:
        print(f"compiled map cache: {compiled.cache_path}", file=sys.stderr)
    if args.out:
        roadmap_io.save_roadmap(compiled.roadmap, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _cmd_route(args) -> int:
    import time as _time

    import networkx as nx

    from repro.ingest import import_map
    from repro.roadmap.routing import RoutePlanner

    try:
        compiled = import_map(args.extract, cache_dir=args.cache_dir)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    roadmap = compiled.roadmap
    from_node, to_node = args.from_node, args.to_node
    if from_node is None or to_node is None:
        # A friendly default probe: the longest west-east crossing.
        nodes = sorted(
            roadmap.intersections.values(), key=lambda n: (n.position[0], n.id)
        )
        from_node = from_node if from_node is not None else nodes[0].id
        to_node = to_node if to_node is not None else nodes[-1].id
    planner = RoutePlanner(
        roadmap, weight=args.weight, algo=args.algo, cache_entry=compiled.cache_path
    )
    prep_seconds = 0.0
    if args.algo == "ch":
        t0 = _time.perf_counter()
        planner.build_hierarchy()
        prep_seconds = _time.perf_counter() - t0
    try:
        t0 = _time.perf_counter()
        path = planner.plan(from_node, to_node)
        first_ms = (_time.perf_counter() - t0) * 1000.0
        best_ms = first_ms
        for _ in range(args.repeat - 1):
            t0 = _time.perf_counter()
            planner.plan(from_node, to_node)
            best_ms = min(best_ms, (_time.perf_counter() - t0) * 1000.0)
    except nx.NodeNotFound as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except nx.NetworkXNoPath:
        print(f"error: no route from {from_node} to {to_node}", file=sys.stderr)
        return 3
    unit = "m" if args.weight == "length" else "s"
    row = {
        "algo": args.algo,
        "weight": args.weight,
        "from": from_node,
        "to": to_node,
        "cost": round(path.cost, 3),
        "unit": unit,
        "links": len(path.links),
        "plan_ms": round(first_ms, 3),
        "best_plan_ms": round(best_ms, 3),
    }
    if args.algo == "ch":
        hierarchy = planner.hierarchy
        row["ch_prep_seconds"] = round(prep_seconds, 3)
        row["ch_shortcuts"] = hierarchy.num_shortcuts
    _emit(args, [row], f"Route {from_node} -> {to_node} on {args.extract}")
    return 0


def _cmd_generate_map(args) -> int:
    roadmap = _MAP_GENERATORS[args.kind](seed=args.seed)
    roadmap_io.save_roadmap(roadmap, args.out)
    stats = roadmap.statistics()
    print(
        f"wrote {args.out}: {stats['intersections']} intersections, "
        f"{stats['links']} links, {stats['total_length_km']:.1f} km"
    )
    return 0


def _cmd_generate_trace(args) -> int:
    scenario = get_scenario(args.scenario, scale=args.scale)
    trace = scenario.sensor_trace if args.noisy else scenario.true_trace
    trace_io.save_trace_csv(trace, args.out)
    print(
        f"wrote {args.out}: {len(trace)} samples, {trace.path_length() / 1000.0:.1f} km, "
        f"{trace.duration / 3600.0:.2f} h"
    )
    return 0


def _cmd_visualize(args) -> int:
    scenario = get_scenario(args.scenario, scale=args.scale)
    protocol = SimulationConfig(
        protocol_id=args.protocol, accuracy=args.accuracy
    ).build_protocol(scenario)
    updates = []
    for sample in scenario.sensor_trace:
        message = protocol.observe(sample.time, sample.position)
        if message is not None:
            updates.append(message.state.position)
    print(render_update_summary(scenario.true_trace, updates, protocol.name))
    print(
        render_route_updates(
            scenario.roadmap,
            scenario.true_trace,
            updates,
            width=args.width,
            height=args.height,
        )
    )
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "figure": _cmd_figure,
    "headline": _cmd_headline,
    "sweep": _cmd_sweep,
    "ablation": _cmd_ablation,
    "simulate": _cmd_simulate,
    "scenarios": _cmd_scenarios,
    "fleet": _cmd_fleet,
    "query-bench": _cmd_query_bench,
    "serve": _cmd_serve,
    "load-test": _cmd_load_test,
    "obs-report": _cmd_obs_report,
    "import-map": _cmd_import_map,
    "route": _cmd_route,
    "generate-map": _cmd_generate_map,
    "generate-trace": _cmd_generate_trace,
    "visualize": _cmd_visualize,
}


def _configure_logging(verbosity: int) -> None:
    """Wire ``-v`` to the root logger; WARNING stays the silent default."""
    level = logging.WARNING
    if verbosity == 1:
        level = logging.INFO
    elif verbosity >= 2:
        level = logging.DEBUG
    logging.basicConfig(
        level=level,
        format="%(levelname)s %(name)s: %(message)s",
        stream=sys.stderr,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised through the console script
    sys.exit(main())
