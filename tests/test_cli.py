"""Unit tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro import cli
from repro.experiments.scenarios import clear_scenario_cache
from repro.roadmap.io import load_roadmap
from repro.traces.io import load_trace_csv


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_scenario_cache()
    yield
    clear_scenario_cache()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["explode"])

    def test_figure_requires_valid_number(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["figure", "11"])

    def test_simulate_requires_protocol(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["simulate", "--scenario", "city"])


class TestCommands:
    def test_table1(self, capsys):
        assert cli.main(["table1", "--scale", "0.04"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "walking person" in out

    def test_table1_json(self, capsys):
        assert cli.main(["--json", "table1", "--scale", "0.04"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 4

    def test_simulate(self, capsys):
        assert cli.main(
            [
                "simulate", "--scenario", "walking", "--protocol", "linear",
                "--accuracy", "100", "--scale", "0.1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "updates_per_hour" in out or "updates" in out

    def test_simulate_json(self, capsys):
        assert cli.main(
            [
                "--json", "simulate", "--scenario", "walking", "--protocol", "map",
                "--accuracy", "150", "--scale", "0.1",
            ]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["us_m"] == 150.0

    def test_figure(self, capsys):
        assert cli.main(["figure", "10", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "updates/h" in out

    def test_sweep_writes_artifacts(self, tmp_path, capsys):
        assert cli.main(
            [
                "sweep", "--scenario", "walking", "--protocol", "linear",
                "--scale", "0.1", "--accuracies", "100,200",
                "--out-dir", str(tmp_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "linear sweep on walking" in out
        payload = json.loads((tmp_path / "sweep_walking_linear.json").read_text())
        assert [row["us_m"] for row in payload["points"]] == [100.0, 200.0]
        assert (tmp_path / "sweep_walking_linear.csv").exists()

    def test_sweep_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["sweep", "--scenario", "city", "--protocol", "xyz"])

    @pytest.mark.parametrize("bad", ["abc", "", "0,-50", "100,"])
    def test_sweep_rejects_bad_accuracies(self, bad):
        args = ["sweep", "--scenario", "city", "--protocol", "linear", "--accuracies", bad]
        if bad == "100,":  # trailing comma is tolerated, not an error
            parsed = cli.build_parser().parse_args(args)
            assert parsed.accuracies == [100.0]
        else:
            with pytest.raises(SystemExit):
                cli.build_parser().parse_args(args)

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(
                ["figure", "7", "--jobs", "0"]
            )

    def test_ablation_speedlimit(self, capsys):
        assert cli.main(
            ["ablation", "speedlimit", "--scenario", "walking", "--scale", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "speed_limit_factor" in out

    def test_generate_map(self, tmp_path, capsys):
        out_path = tmp_path / "map.json"
        assert cli.main(["generate-map", "city", "--out", str(out_path)]) == 0
        roadmap = load_roadmap(out_path)
        assert roadmap.num_links() > 0
        assert "wrote" in capsys.readouterr().out

    def test_generate_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.csv"
        assert cli.main(
            ["generate-trace", "--scenario", "walking", "--out", str(out_path), "--scale", "0.1"]
        ) == 0
        trace = load_trace_csv(out_path)
        assert len(trace) > 100

    def test_visualize(self, capsys):
        assert cli.main(
            [
                "visualize", "--scenario", "walking", "--protocol", "linear",
                "--accuracy", "100", "--scale", "0.1", "--width", "60", "--height", "15",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "updates over" in out
        assert "S" in out and "E" in out


class TestLibraryCommands:
    def test_scenarios_lists_canonical_and_generated(self, capsys):
        assert cli.main(["--json", "scenarios"]) == 0
        rows = json.loads(capsys.readouterr().out)
        names = {row["scenario"] for row in rows}
        assert {"freeway", "walking", "rush_hour_city", "tunnel_freeway"} <= names
        assert {row["category"] for row in rows} == {"canonical", "generated"}

    def test_sweep_accepts_generated_scenario(self, tmp_path, capsys):
        assert cli.main(
            [
                "sweep", "--scenario", "radial_commute", "--protocol", "linear",
                "--scale", "0.15", "--accuracies", "100,200",
                "--out-dir", str(tmp_path),
            ]
        ) == 0
        payload = json.loads((tmp_path / "sweep_radial_commute_linear.json").read_text())
        assert [row["us_m"] for row in payload["points"]] == [100.0, 200.0]

    def test_sweep_seed_override_changes_results(self, capsys):
        base = ["--json", "sweep", "--scenario", "radial_commute", "--protocol",
                "linear", "--scale", "0.15", "--accuracies", "100"]
        assert cli.main(base + ["--seed", "1"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert cli.main(base + ["--seed", "2"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first != second

    def test_simulate_accepts_generated_scenario(self, capsys):
        assert cli.main(
            [
                "--json", "simulate", "--scenario", "tunnel_freeway",
                "--protocol", "map", "--accuracy", "150", "--scale", "0.15",
            ]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["us_m"] == 150.0

    def test_fleet_summary(self, capsys):
        assert cli.main(
            [
                "--json", "fleet",
                "--mix", "rush_hour_city:map:100:3",
                "--mix", "walking:linear:50:2",
                "--scale", "0.1",
            ]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["objects"] == 5
        assert rows[0]["total_updates"] > 0

    def test_fleet_per_object(self, capsys):
        assert cli.main(
            [
                "--json", "fleet", "--mix", "radial_commute:linear:100:4",
                "--scale", "0.15", "--per-object",
            ]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 4
        assert {row["object"] for row in rows} == {
            f"radial_commute/linear/100/{n}" for n in range(4)
        }

    def test_fleet_rejects_malformed_mix(self, capsys):
        assert cli.main(["fleet", "--mix", "nonsense"]) == 2
        assert "error" in capsys.readouterr().err


class TestImportMap:
    @pytest.fixture
    def extract(self, tmp_path):
        from repro.ingest import write_fixture_xml

        path = tmp_path / "smalltown.osm"
        write_fixture_xml(path, seed=11, rows=4, cols=4)
        return path

    def test_import_map_miss_then_hit(self, extract, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert cli.main(
            ["--json", "import-map", str(extract), "--cache-dir", cache_dir]
        ) == 0
        first = json.loads(capsys.readouterr().out)[0]
        assert first["cached"] is False
        assert first["links"] > 0
        assert first["nodes_contracted"] > 0

        assert cli.main(
            ["--json", "import-map", str(extract), "--cache-dir", cache_dir]
        ) == 0
        second = json.loads(capsys.readouterr().out)[0]
        assert second["cached"] is True
        assert second["links"] == first["links"]

    def test_import_map_out_is_loadable(self, extract, tmp_path, capsys):
        out = tmp_path / "compiled.json"
        assert cli.main(
            [
                "import-map", str(extract),
                "--cache-dir", str(tmp_path / "cache"),
                "--out", str(out),
            ]
        ) == 0
        roadmap = load_roadmap(out)
        assert roadmap.num_links() > 0
        assert roadmap.metadata["source"] == "smalltown.osm"

    def test_import_map_no_compact(self, extract, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert cli.main(
            ["--json", "import-map", str(extract), "--cache-dir", cache_dir]
        ) == 0
        compact = json.loads(capsys.readouterr().out)[0]
        assert cli.main(
            [
                "--json", "import-map", str(extract),
                "--cache-dir", cache_dir, "--no-compact",
            ]
        ) == 0
        raw = json.loads(capsys.readouterr().out)[0]
        assert raw["links"] > compact["links"]
        assert raw["nodes_contracted"] == 0

    def test_import_map_missing_file(self, tmp_path, capsys):
        assert cli.main(
            ["import-map", str(tmp_path / "nope.osm")]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_import_map_bad_bbox(self, extract, capsys):
        with pytest.raises(SystemExit):
            cli.main(["import-map", str(extract), "--bbox", "1,2,3"])


class TestMapFileScenarios:
    @pytest.fixture
    def extract(self, tmp_path):
        from repro.ingest import write_fixture_xml

        path = tmp_path / "cliville.osm"
        write_fixture_xml(path, seed=13, rows=4, cols=4)
        return path

    @pytest.fixture(autouse=True)
    def _unregister(self):
        # Map-file registration is process-global; tests must not leak the
        # tmp-path-backed scenario into the rest of the suite (or into each
        # other: the same stem under a different tmp_path is a collision).
        yield
        from repro.experiments.library import unregister_scenario

        try:
            unregister_scenario("osm_cliville")
        except KeyError:
            pass

    def test_sweep_map_file(self, extract, tmp_path, capsys):
        assert cli.main(
            [
                "--json", "sweep", "--map-file", str(extract),
                "--map-cache-dir", str(tmp_path / "cache"),
                "--protocol", "map", "--scale", "0.05", "--accuracies", "100",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "registered imported map as scenario 'osm_cliville'" in captured.err
        rows = json.loads(captured.out)
        assert rows[0]["updates"] >= 1
        assert rows[0]["mean_error_m"] >= 0

    def test_sweep_rejects_scenario_and_map_file(self, extract, capsys):
        assert cli.main(
            [
                "sweep", "--scenario", "city", "--map-file", str(extract),
                "--protocol", "map",
            ]
        ) == 2
        assert "not both" in capsys.readouterr().err

    def test_sweep_requires_scenario_or_map_file(self, capsys):
        assert cli.main(["sweep", "--protocol", "map"]) == 2
        assert "required" in capsys.readouterr().err

    def test_fleet_map_file(self, extract, tmp_path, capsys):
        assert cli.main(
            [
                "--json", "fleet",
                "--map-file", str(extract),
                "--map-cache-dir", str(tmp_path / "cache"),
                "--mix", "osm_cliville:map:100:3",
                "--mix", "osm_cliville:linear:100:2",
                "--scale", "0.05",
            ]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["objects"] == 5
        assert rows[0]["total_updates"] > 0


class TestFleetEngines:
    """--columnar and --processes produce the same rows as the default path."""

    _ARGS = ["--json", "fleet", "--mix", "radial_commute:linear:100:3",
             "--scale", "0.15", "--per-object"]

    def _rows(self, extra, capsys):
        assert cli.main(self._ARGS + extra) == 0
        return json.loads(capsys.readouterr().out)

    def test_columnar_matches_default(self, capsys):
        baseline = self._rows([], capsys)
        columnar = self._rows(["--columnar"], capsys)
        assert columnar == baseline

    def test_processes_matches_default(self, capsys):
        baseline = self._rows([], capsys)
        sharded = self._rows(["--processes", "2"], capsys)
        assert sharded == baseline

    def test_columnar_with_processes_rejected(self, capsys):
        assert cli.main(self._ARGS + ["--columnar", "--processes", "2"]) == 2
        assert "columnar" in capsys.readouterr().err

    def test_columnar_ineligible_fleet_rejected(self, capsys):
        # Map-based protocols have no columnar decision rule.
        assert cli.main(
            ["fleet", "--mix", "rush_hour_city:map:100:2", "--scale", "0.1",
             "--columnar"]
        ) == 2
        assert "not columnar-eligible" in capsys.readouterr().err

    def test_processes_must_be_positive(self):
        with pytest.raises(SystemExit):
            cli.main(["fleet", "--mix", "walking:linear:50:2", "--processes", "0"])
