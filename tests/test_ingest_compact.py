"""Unit tests for repro.ingest.compact: conditioning passes and assembly."""

import numpy as np
import pytest

from repro.ingest.compact import (
    Segment,
    clip_segments,
    compile_roadmap,
    contract_chains,
    largest_component,
    network_segments,
    prune_stubs,
    segments_to_roadmap,
)
from repro.ingest.osm import parse_osm_xml, project_network
from repro.roadmap.elements import RoadClass


def seg(a, b, pa, pb, *, oneway=False, road_class=RoadClass.RESIDENTIAL,
        speed_limit=None, name=""):
    return Segment(
        a=a, b=b, points=np.array([pa, pb], dtype=float),
        road_class=road_class, speed_limit=speed_limit, oneway=oneway, name=name,
    )


# --------------------------------------------------------------------------- #
# segment extraction and clipping
# --------------------------------------------------------------------------- #
GRID_XML = """<?xml version="1.0"?>
<osm version="0.6">
  <node id="1" lat="48.700" lon="9.100"/>
  <node id="2" lat="48.700" lon="9.104"/>
  <node id="3" lat="48.700" lon="9.108"/>
  <node id="4" lat="48.704" lon="9.104"/>
  <way id="1">
    <nd ref="1"/><nd ref="2"/><nd ref="3"/>
    <tag k="highway" v="residential"/>
  </way>
  <way id="2">
    <nd ref="2"/><nd ref="4"/>
    <tag k="highway" v="residential"/>
  </way>
</osm>
"""


class TestSegmentsAndClip:
    def test_one_segment_per_node_pair(self):
        projected = project_network(parse_osm_xml(GRID_XML))
        segments = network_segments(projected)
        assert len(segments) == 3
        assert {(s.a, s.b) for s in segments} == {(1, 2), (2, 3), (2, 4)}
        assert all(s.length > 0 for s in segments)

    def test_clip_drops_segments_with_outside_endpoints(self):
        projected = project_network(parse_osm_xml(GRID_XML))
        segments = network_segments(projected)
        kept, dropped = clip_segments(
            segments, projected, (48.699, 9.099, 48.701, 9.105)
        )
        # Node 3 (lon 9.108) and node 4 (lat 48.704) fall outside.
        assert {(s.a, s.b) for s in kept} == {(1, 2)}
        assert dropped == 2

    def test_invalid_bbox_raises(self):
        projected = project_network(parse_osm_xml(GRID_XML))
        with pytest.raises(ValueError, match="min_lat, min_lon"):
            clip_segments(network_segments(projected), projected, (49, 9, 48, 10))


# --------------------------------------------------------------------------- #
# connected components
# --------------------------------------------------------------------------- #
class TestLargestComponent:
    def test_keeps_longest_component(self):
        main = [
            seg(1, 2, (0, 0), (100, 0)),
            seg(2, 3, (100, 0), (200, 0)),
        ]
        island = [seg(10, 11, (1000, 0), (1050, 0))]
        kept, dropped_components, dropped_segments = largest_component(main + island)
        assert {(s.a, s.b) for s in kept} == {(1, 2), (2, 3)}
        assert dropped_components == 1
        assert dropped_segments == 1

    def test_length_beats_segment_count(self):
        # Three short segments vs one very long one: length wins.
        short = [
            seg(1, 2, (0, 0), (10, 0)),
            seg(2, 3, (10, 0), (20, 0)),
            seg(3, 4, (20, 0), (30, 0)),
        ]
        long = [seg(10, 11, (0, 500), (5000, 500))]
        kept, _, _ = largest_component(short + long)
        assert {(s.a, s.b) for s in kept} == {(10, 11)}

    def test_empty_input(self):
        assert largest_component([]) == ([], 0, 0)


# --------------------------------------------------------------------------- #
# stub pruning
# --------------------------------------------------------------------------- #
class TestPruneStubs:
    def _network_with_stub(self, stub_segments):
        ring = [
            seg(1, 2, (0, 0), (100, 0)),
            seg(2, 3, (100, 0), (100, 100)),
            seg(3, 1, (100, 100), (0, 0)),
        ]
        return ring + stub_segments

    def test_short_stub_removed(self):
        segments = self._network_with_stub([seg(2, 10, (100, 0), (115, 0))])
        kept, pruned = prune_stubs(segments, min_length_m=40.0)
        assert pruned == 1
        assert all(s.b != 10 for s in kept)

    def test_multi_segment_stub_removed_to_fixpoint(self):
        stub = [
            seg(2, 10, (100, 0), (110, 0)),
            seg(10, 11, (110, 0), (120, 0)),
        ]
        kept, pruned = prune_stubs(self._network_with_stub(stub), min_length_m=40.0)
        assert pruned == 2
        assert len(kept) == 3

    def test_long_culdesac_survives(self):
        segments = self._network_with_stub([seg(2, 10, (100, 0), (300, 0))])
        kept, pruned = prune_stubs(segments, min_length_m=40.0)
        assert pruned == 0
        assert len(kept) == 4

    def test_disabled_with_zero_threshold(self):
        segments = self._network_with_stub([seg(2, 10, (100, 0), (101, 0))])
        kept, pruned = prune_stubs(segments, min_length_m=0.0)
        assert pruned == 0
        assert len(kept) == 4


# --------------------------------------------------------------------------- #
# degree-2 contraction
# --------------------------------------------------------------------------- #
class TestContractChains:
    def test_simple_chain_merges_with_shape_points(self):
        segments = [
            seg(1, 2, (0, 0), (50, 5)),
            seg(2, 3, (50, 5), (100, 0)),
            seg(3, 4, (100, 0), (150, -5)),
        ]
        merged, contracted = contract_chains(segments)
        assert contracted == 2
        assert len(merged) == 1
        (chain,) = merged
        assert (chain.a, chain.b) == (1, 4)
        assert chain.points.shape == (4, 2)
        assert chain.length == pytest.approx(sum(s.length for s in segments))

    def test_attribute_change_blocks_contraction(self):
        segments = [
            seg(1, 2, (0, 0), (50, 0), road_class=RoadClass.PRIMARY),
            seg(2, 3, (50, 0), (100, 0), road_class=RoadClass.RESIDENTIAL),
        ]
        merged, contracted = contract_chains(segments)
        assert contracted == 0
        assert len(merged) == 2

    def test_speed_limit_change_blocks_contraction(self):
        segments = [
            seg(1, 2, (0, 0), (50, 0), speed_limit=13.9),
            seg(2, 3, (50, 0), (100, 0), speed_limit=8.3),
        ]
        merged, contracted = contract_chains(segments)
        assert contracted == 0

    def test_junction_blocks_contraction(self):
        segments = [
            seg(1, 2, (0, 0), (50, 0)),
            seg(2, 3, (50, 0), (100, 0)),
            seg(2, 4, (50, 0), (50, 80)),  # third leg makes node 2 a junction
        ]
        merged, contracted = contract_chains(segments)
        assert contracted == 0
        assert len(merged) == 3

    def test_oneway_flow_through_contracts(self):
        segments = [
            seg(1, 2, (0, 0), (50, 0), oneway=True),
            seg(2, 3, (50, 0), (100, 0), oneway=True),
        ]
        merged, contracted = contract_chains(segments)
        assert contracted == 1
        (chain,) = merged
        assert (chain.a, chain.b) == (1, 3)
        assert chain.oneway

    def test_converging_oneways_block_contraction(self):
        segments = [
            seg(1, 2, (0, 0), (50, 0), oneway=True),
            seg(3, 2, (100, 0), (50, 0), oneway=True),  # both flow into node 2
        ]
        merged, contracted = contract_chains(segments)
        assert contracted == 0
        assert len(merged) == 2

    def test_oneway_vs_twoway_blocks_contraction(self):
        segments = [
            seg(1, 2, (0, 0), (50, 0), oneway=True),
            seg(2, 3, (50, 0), (100, 0), oneway=False),
        ]
        merged, contracted = contract_chains(segments)
        assert contracted == 0

    def test_oneway_chain_against_walk_direction(self):
        # The walk starts at junction 9 (the smallest non-pass-through
        # node), i.e. against the flow 1 -> 2 -> 9; geometry must still
        # come out oriented along the flow.
        segments = [
            seg(1, 2, (0, 0), (50, 0), oneway=True),
            seg(2, 9, (50, 0), (100, 0), oneway=True),
            seg(9, 20, (100, 0), (100, 90)),  # junction leg at node 9
            seg(9, 21, (100, 0), (100, -90)),
        ]
        merged, contracted = contract_chains(segments)
        assert contracted == 1
        chain = next(s for s in merged if s.oneway)
        assert (chain.a, chain.b) == (1, 9)
        assert np.allclose(chain.points[0], (0, 0))
        assert np.allclose(chain.points[-1], (100, 0))

    def test_parallel_pair_does_not_become_self_loop(self):
        segments = [
            seg(1, 2, (0, 0), (50, 40)),
            seg(2, 1, (50, 40), (0, 0)),
        ]
        merged, contracted = contract_chains(segments)
        assert contracted == 0
        assert all(s.a != s.b for s in merged)

    def test_pure_cycle_breaks_at_smallest_node(self):
        segments = [
            seg(5, 6, (0, 0), (100, 0)),
            seg(6, 7, (100, 0), (100, 100)),
            seg(7, 5, (100, 100), (0, 0)),
        ]
        merged, contracted = contract_chains(segments)
        assert len(merged) == 1
        (loop,) = merged
        assert loop.a == loop.b == 5
        assert contracted == 2

    def test_junction_degrees_preserved(self):
        # A cross with bead chains on every arm: the centre keeps degree 4.
        segments = []
        nid = 100
        for arm, (dx, dy) in enumerate([(1, 0), (-1, 0), (0, 1), (0, -1)]):
            prev, px, py = 0, 0.0, 0.0
            for step in range(1, 4):
                node = nid + arm * 10 + step
                x, y = dx * step * 40.0, dy * step * 40.0
                segments.append(seg(prev, node, (px, py), (x, y)))
                prev, px, py = node, x, y
        merged, contracted = contract_chains(segments)
        assert contracted == 8  # two beads per arm
        assert sum(1 for s in merged if 0 in (s.a, s.b)) == 4


# --------------------------------------------------------------------------- #
# assembly
# --------------------------------------------------------------------------- #
class TestAssembly:
    def test_two_way_segments_emit_both_directions(self):
        segments = [
            seg(1, 2, (0, 0), (100, 0)),
            seg(2, 3, (100, 0), (200, 0), oneway=True),
        ]
        roadmap = segments_to_roadmap(segments, metadata={"source": "test"})
        assert roadmap.num_intersections() == 3
        assert roadmap.num_links() == 3  # 1<->2 both ways, 2->3 one way
        assert roadmap.metadata["source"] == "test"

    def test_shape_points_survive(self):
        chain = Segment(
            a=1, b=2,
            points=np.array([(0, 0), (50, 10), (100, 0)], dtype=float),
            road_class=RoadClass.SECONDARY, speed_limit=None, oneway=False,
        )
        roadmap = segments_to_roadmap([chain])
        forward = next(
            l for l in roadmap.links.values() if l.from_node == 1 and l.to_node == 2
        )
        backward = next(
            l for l in roadmap.links.values() if l.from_node == 2 and l.to_node == 1
        )
        assert forward.shape_points().tolist() == [[50.0, 10.0]]
        assert backward.shape_points().tolist() == [[50.0, 10.0]]
        assert forward.length == pytest.approx(backward.length)

    def test_compile_roadmap_full_pipeline(self):
        projected = project_network(parse_osm_xml(GRID_XML))
        compiled = compile_roadmap(projected, min_stub_m=0.0, source="grid.osm")
        assert compiled.roadmap.num_intersections() >= 3
        assert compiled.roadmap.metadata["source"] == "grid.osm"
        assert compiled.roadmap.metadata["origin"]["lat"] == pytest.approx(
            compiled.origin[0]
        )
        assert compiled.report.output_links == compiled.roadmap.num_links()

    def test_compile_roadmap_empty_result_raises(self):
        projected = project_network(parse_osm_xml(GRID_XML))
        with pytest.raises(ValueError, match="removed the entire network"):
            compile_roadmap(projected, bbox=(0.0, 0.0, 1.0, 1.0))
