"""Message channel between source and location server.

The paper motivates dead reckoning with the scarcity and cost of wireless
WAN bandwidth; the channel model here accounts for every transmitted message
and byte so the evaluation can report bandwidth alongside update counts, and
it can add latency and losses for robustness experiments (losses model the
disconnections Wolfson's dtdr strategy addresses).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.protocols.base import UpdateMessage


@dataclass
class ChannelStats:
    """Counters describing the traffic that went through a channel."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_lost: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0

    @property
    def loss_rate(self) -> float:
        """Fraction of sent messages that were lost."""
        if self.messages_sent == 0:
            return 0.0
        return self.messages_lost / self.messages_sent


class MessageChannel:
    """Unidirectional source-to-server channel with latency and loss.

    Parameters
    ----------
    latency:
        Constant one-way delay in seconds added to every delivered message.
    loss_probability:
        Probability that a message is silently dropped.
    seed:
        Seed for the loss process.
    """

    def __init__(
        self, latency: float = 0.0, loss_probability: float = 0.0, seed: Optional[int] = None
    ):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if not (0.0 <= loss_probability < 1.0):
            raise ValueError("loss_probability must be in [0, 1)")
        self.latency = float(latency)
        self.loss_probability = float(loss_probability)
        self._rng = random.Random(seed)
        self.stats = ChannelStats()
        self._in_flight: List[Tuple[float, str, UpdateMessage]] = []

    # ------------------------------------------------------------------ #
    # sending and delivering
    # ------------------------------------------------------------------ #
    def send(self, object_id: str, message: UpdateMessage, time: float) -> None:
        """Submit a message for delivery at ``time + latency`` (unless lost)."""
        self.stats.messages_sent += 1
        self.stats.bytes_sent += message.size_bytes
        if self.loss_probability > 0.0 and self._rng.random() < self.loss_probability:
            self.stats.messages_lost += 1
            return
        self._in_flight.append((time + self.latency, object_id, message))

    def deliver_due(self, time: float) -> List[Tuple[str, UpdateMessage]]:
        """Pop every message whose delivery time has been reached."""
        if not self._in_flight:
            return []
        due = [entry for entry in self._in_flight if entry[0] <= time]
        if due:
            self._in_flight = [entry for entry in self._in_flight if entry[0] > time]
            self.stats.messages_delivered += len(due)
            self.stats.bytes_delivered += sum(m.size_bytes for _, _, m in due)
        return [(object_id, message) for _, object_id, message in sorted(due)]

    def reset(self) -> None:
        """Drop all in-flight messages and zero the statistics.

        Simulations call this at run start so that a caller-supplied channel
        cannot leak undelivered messages (or counters) from a previous run
        into the next one.  The loss process RNG is deliberately left alone:
        resetting it would make repeated runs over the same channel replay
        the identical loss pattern instead of independent ones.
        """
        self._in_flight.clear()
        self.stats = ChannelStats()

    @property
    def in_flight(self) -> int:
        """Number of messages currently in transit."""
        return len(self._in_flight)
