"""Per-request latency accounting for the live tier.

One :class:`LatencyRecorder` per request class (ingest, query) collects
wall-clock durations and reduces them to the metrics the benchmark and the
``load-test`` CLI report.  Definitions (also documented in the README):

* **avg** — arithmetic mean over all recorded requests.
* **p50 / p95 / p99** — nearest-rank percentiles over the sorted samples:
  ``pq = sorted[ceil(q/100 * n) - 1]``.  Nearest-rank is exact, monotone
  and needs no interpolation policy, so two runs over the same samples
  always report the same number.
* **saturation throughput** — completed requests divided by the wall-clock
  span of the run that issued them (reported by the load generator, not
  here).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


class LatencyRecorder:
    """Collects wall-clock request latencies (seconds) and summarises them."""

    __slots__ = ("_samples",)

    def __init__(self, samples: Sequence[float] = ()):
        self._samples: List[float] = [float(s) for s in samples]

    def record(self, seconds: float) -> None:
        """Add one request's wall-clock duration."""
        self._samples.append(float(seconds))

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        self._samples.extend(other._samples)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded durations."""
        return sum(self._samples)

    def mean(self) -> float:
        """Arithmetic mean latency in seconds (``0.0`` when empty)."""
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile in seconds (``0.0`` when empty)."""
        if not self._samples:
            return 0.0
        if not 0.0 < q <= 100.0:
            raise ValueError("q must be in (0, 100]")
        ordered = sorted(self._samples)
        rank = math.ceil(q / 100.0 * len(ordered))
        return ordered[rank - 1]

    def summary(self) -> Dict[str, float]:
        """The reported metrics, in milliseconds (rounded to 0.1 us)."""

        def ms(seconds: float) -> float:
            return round(seconds * 1e3, 4)

        return {
            "count": len(self._samples),
            "avg_ms": ms(self.mean()),
            "p50_ms": ms(self.percentile(50.0)),
            "p95_ms": ms(self.percentile(95.0)),
            "p99_ms": ms(self.percentile(99.0)),
            "max_ms": ms(max(self._samples)) if self._samples else 0.0,
        }
