"""A1 — ablation of the map-matching tolerance ``um`` (paper Sec. 3).

The paper introduces ``um`` as the parameter that "determines how exact the
position must be matched to a link and reflects the accuracy of the sensor
system" but does not evaluate it.  This ablation sweeps ``um`` on the
freeway scenario and reports update rate, matching accuracy and off-map
events.
"""

from repro.experiments.ablations import matching_tolerance_ablation
from repro.experiments.report import format_table
from repro.mobility.scenarios import ScenarioName

from conftest import run_once


def test_matching_tolerance_ablation(benchmark, scale):
    rows = run_once(
        benchmark,
        matching_tolerance_ablation,
        scenario_name=ScenarioName.FREEWAY,
        tolerances=(5.0, 10.0, 20.0, 30.0, 50.0),
        accuracy=100.0,
        scale=min(scale, 0.5),
    )
    print()
    print(format_table(rows, title="A1 — matching tolerance um (freeway, us=100 m)"))
    by_um = {row["um [m]"]: row for row in rows}
    # A tolerance well below the sensor noise loses the map (more off-map
    # events) than a tolerance comfortably above it.
    assert by_um[5.0]["off_map_events"] >= by_um[30.0]["off_map_events"]
    # With a sane tolerance the matcher identifies the correct link almost always.
    assert by_um[30.0]["match_accuracy"] > 0.9
