"""Observability overhead guard: obs-on vs obs-off on the megafleet point.

The obs package's contract is "no-op when absent, cheap when present":
every hook sits behind an ``obs is None`` check and the columnar engine
records only aggregate counters and a handful of spans.  This benchmark
pins the "cheap when present" half on the 10k-object columnar megafleet
point (the shape from :mod:`bench_megafleet`):

* runs the same fleet with ``obs=None`` and with a live
  :class:`~repro.obs.Observability` bundle, best-of-N each,
* records the relative overhead and asserts it stays at or below a
  ceiling (default **5%** — generous; the aggregate-only instrumentation
  measures as noise),
* asserts the obs-on results are **bitwise identical** to obs-off (the
  instruments only watch), and
* cross-checks the recorded metrics against the run's own result
  (``sim.updates_sent`` must equal the summed per-object updates).

The committed ``BENCH_obs.json`` carries the achieved overhead next to
the recorded ceiling plus both flags, and
``benchmarks/check_bench_floors.py`` guards it — the one artifact checked
against a *ceiling* rather than a floor.

Tunables for quick local runs / CI smoke: ``REPRO_BENCH_OBS_OBJECTS``
(fleet size, default 10000), ``REPRO_BENCH_OBS_SAMPLES`` (sighting
instants per lane, default 240), ``REPRO_BENCH_OBS_REPEATS`` (best-of-N,
default 3) and ``REPRO_BENCH_OBS_MAX_OVERHEAD`` (asserted ceiling in
percent, default 5.0).
"""

from __future__ import annotations

import json
import os
import platform
import time

from bench_megafleet import _ACCURACY_M, _SEED, _build_arrays, _identical
from repro.obs import Observability, build_manifest
from repro.sim.columnar import LINEAR, ColumnarFleetEngine

_RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")

#: Relative slowdown the obs-on run may cost, in percent.
_MAX_OVERHEAD_PCT = 5.0


def _run_point(times, positions, obs):
    """One timed columnar run of the shared fleet; returns (seconds, result)."""
    engine = ColumnarFleetEngine(
        times, positions, mode=LINEAR, accuracy=_ACCURACY_M, obs=obs
    )
    started = time.perf_counter()
    result = engine.run()
    return time.perf_counter() - started, result


def _metrics_consistent(obs, result) -> bool:
    """The registry's aggregate counters must agree with the run's result."""
    snapshot = obs.registry.snapshot()
    updates = sum(r.updates for r in result.results.values())
    return (
        snapshot.get("sim.updates_sent", {}).get("value") == updates
        and snapshot.get("sim.lanes", {}).get("value") == len(result.results)
    )


def run_obs_overhead(n_objects: int, n_samples: int, repeats: int) -> dict:
    """Best-of-N obs-off vs obs-on timings plus the identity checks."""
    times, positions = _build_arrays(n_objects, n_samples)
    off_best = float("inf")
    on_best = float("inf")
    off_result = None
    on_result = None
    on_obs = None
    for _ in range(repeats):
        seconds, result = _run_point(times, positions, obs=None)
        if seconds < off_best:
            off_best, off_result = seconds, result
        obs = Observability()
        seconds, result = _run_point(times, positions, obs=obs)
        if seconds < on_best:
            on_best, on_result, on_obs = seconds, result, obs
    overhead_pct = (on_best - off_best) / off_best * 100.0
    return {
        "benchmark": "obs_overhead",
        "engine": "columnar",
        "objects": n_objects,
        "n_samples": n_samples,
        "repeats": repeats,
        "accuracy_m": _ACCURACY_M,
        "seed": _SEED,
        "off_seconds_best": round(off_best, 4),
        "on_seconds_best": round(on_best, 4),
        "overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": _max_overhead_pct(),
        "results_identical": _identical(off_result, on_result),
        "metrics_consistent": _metrics_consistent(on_obs, on_result),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "provenance": build_manifest(
            seed=_SEED,
            config={
                "benchmark": "obs_overhead",
                "objects": n_objects,
                "n_samples": n_samples,
                "repeats": repeats,
            },
        ),
    }


def _print_record(record):
    skip = ("machine", "provenance")
    print(json.dumps({k: v for k, v in record.items() if k not in skip}, indent=2))


def _write_record(record):
    with open(_RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.normpath(_RESULT_PATH)}")


def _assert_record(record):
    assert record["results_identical"], (
        "obs-on columnar results diverged from obs-off — instruments must only watch"
    )
    assert record["metrics_consistent"], (
        "recorded metrics disagree with the run's own result"
    )
    ceiling = record["max_overhead_pct"]
    assert record["overhead_pct"] <= ceiling, (
        f"observability overhead {record['overhead_pct']}% exceeds the "
        f"{ceiling}% ceiling"
    )


def _env_int(name, default):
    return int(os.environ.get(name, default))


def _max_overhead_pct() -> float:
    return float(os.environ.get("REPRO_BENCH_OBS_MAX_OVERHEAD", _MAX_OVERHEAD_PCT))


def _params():
    return dict(
        n_objects=_env_int("REPRO_BENCH_OBS_OBJECTS", 10_000),
        n_samples=_env_int("REPRO_BENCH_OBS_SAMPLES", 240),
        repeats=_env_int("REPRO_BENCH_OBS_REPEATS", 3),
    )


def test_obs_overhead(benchmark):
    from conftest import run_once

    record = run_once(benchmark, run_obs_overhead, **_params())
    print()
    _print_record(record)
    _write_record(record)
    _assert_record(record)


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke entry point
    record = run_obs_overhead(**_params())
    _print_record(record)
    _write_record(record)
    _assert_record(record)
