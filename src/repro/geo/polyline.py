"""Polyline with arc-length parameterisation.

A road link in the paper's map model is an intersection-to-intersection
connection whose exact geometry is refined by *shape points* (Fig. 4).  The
natural representation is a polyline; the map-based prediction function then
simply advances an arc-length offset along the polyline at the reported
speed, and the map matcher projects sensed positions onto it.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.geo.segment import Segment
from repro.geo.vec import Vec2, as_vec, distance
from repro.geo.angles import bearing


class Polyline:
    """An ordered sequence of planar points interpreted as a connected path.

    The class pre-computes cumulative arc lengths so that the frequently used
    operations (``point_at``, ``project``) run in O(number of vertices) with
    small constants, which keeps the 1 Hz simulation loops cheap even for
    long traces.
    """

    __slots__ = ("_points", "_cumulative", "_length", "_proj")

    def __init__(self, points: Iterable[Vec2]):
        pts = [as_vec(p) for p in points]
        if len(pts) < 2:
            raise ValueError("a polyline needs at least two points")
        self._points = np.array(pts, dtype=float)
        deltas = np.diff(self._points, axis=0)
        seg_lengths = np.hypot(deltas[:, 0], deltas[:, 1])
        self._cumulative = np.concatenate(([0.0], np.cumsum(seg_lengths)))
        self._length = float(self._cumulative[-1])
        self._proj: tuple | None = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_array(cls, points: np.ndarray) -> "Polyline":
        """Trusted constructor from an ``(n, 2)`` float array.

        Skips the per-point coercion and finiteness checks of ``__init__``
        — for callers whose geometry is already validated, such as the
        compiled-map cache loading a document this process wrote.  The
        resulting polyline is bit-identical to one built the slow way from
        the same coordinates.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] < 2:
            raise ValueError("a polyline needs an (n >= 2, 2) point array")
        self = cls.__new__(cls)
        self._points = pts
        deltas = np.diff(pts, axis=0)
        seg_lengths = np.hypot(deltas[:, 0], deltas[:, 1])
        self._cumulative = np.concatenate(([0.0], np.cumsum(seg_lengths)))
        self._length = float(self._cumulative[-1])
        self._proj = None
        return self

    @classmethod
    def from_segments(cls, segments: Sequence[Segment]) -> "Polyline":
        """Build a polyline from consecutive segments (must share endpoints)."""
        if not segments:
            raise ValueError("need at least one segment")
        points = [segments[0].start]
        for seg in segments:
            points.append(seg.end)
        return cls(points)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def points(self) -> np.ndarray:
        """The vertices as an ``(n, 2)`` array (read-only view)."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    @property
    def length(self) -> float:
        """Total arc length in metres."""
        return self._length

    @property
    def start(self) -> np.ndarray:
        """First vertex."""
        return self._points[0].copy()

    @property
    def end(self) -> np.ndarray:
        """Last vertex."""
        return self._points[-1].copy()

    def __len__(self) -> int:
        return len(self._points)

    def segments(self) -> list[Segment]:
        """The polyline decomposed into its directed segments."""
        return [
            Segment(self._points[i], self._points[i + 1])
            for i in range(len(self._points) - 1)
        ]

    def reversed(self) -> "Polyline":
        """The same geometry traversed in the opposite direction."""
        return Polyline(self._points[::-1].copy())

    def bounds(self) -> tuple[float, float, float, float]:
        """Axis-aligned bounds ``(min_x, min_y, max_x, max_y)``."""
        mins = self._points.min(axis=0)
        maxs = self._points.max(axis=0)
        return (float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    # ------------------------------------------------------------------ #
    # arc-length parameterisation
    # ------------------------------------------------------------------ #
    def _locate(self, offset: float) -> tuple[int, float]:
        """Return ``(segment_index, local_offset)`` for an arc-length offset."""
        if offset <= 0.0:
            return 0, 0.0
        if offset >= self._length:
            last = len(self._points) - 2
            return last, self._cumulative[last + 1] - self._cumulative[last]
        idx = int(np.searchsorted(self._cumulative, offset, side="right") - 1)
        idx = min(idx, len(self._points) - 2)
        return idx, offset - float(self._cumulative[idx])

    def point_at(self, offset: float) -> np.ndarray:
        """Point at arc-length *offset* metres from the start (clamped)."""
        idx, local = self._locate(offset)
        a = self._points[idx]
        b = self._points[idx + 1]
        seg_len = float(self._cumulative[idx + 1] - self._cumulative[idx])
        if seg_len == 0.0:
            return a.copy()
        t = local / seg_len
        return a + (b - a) * t

    def direction_at(self, offset: float) -> np.ndarray:
        """Unit tangent direction at arc-length *offset* (direction of travel)."""
        idx, _ = self._locate(offset)
        a = self._points[idx]
        b = self._points[idx + 1]
        d = b - a
        n = math.hypot(d[0], d[1])
        if n == 0.0:
            return np.zeros(2)
        return d / n

    def bearing_at(self, offset: float) -> float:
        """Compass bearing of travel at arc-length *offset*."""
        idx, _ = self._locate(offset)
        return bearing(self._points[idx], self._points[idx + 1])

    # ------------------------------------------------------------------ #
    # projection
    # ------------------------------------------------------------------ #
    def project(self, point: Vec2) -> tuple[np.ndarray, float, float]:
        """Project *point* onto the polyline.

        Returns
        -------
        (projected_point, offset, dist):
            The closest point on the polyline, its arc-length offset from the
            start and the distance from *point* to that closest point.
        """
        p = as_vec(point)
        if self._proj is None:
            # Per-segment arrays are invariants of the geometry; computing
            # them once matters because the map matcher projects every
            # sensor sighting of a simulation run.
            a = self._points[:-1]
            d = self._points[1:] - a
            denom = (d * d).sum(axis=1)
            degenerate = denom == 0.0
            denom_safe = np.where(degenerate, 1.0, denom)
            self._proj = (a, d, denom, denom_safe, degenerate)
        a, d, denom, denom_safe, degenerate = self._proj
        t = ((p - a) * d).sum(axis=1) / denom_safe
        t = np.minimum(np.maximum(np.where(degenerate, 0.0, t), 0.0), 1.0)
        proj = a + d * t[:, None]
        delta = proj - p
        dist = np.hypot(delta[:, 0], delta[:, 1])
        i = int(np.argmin(dist))
        offset = float(self._cumulative[i]) + float(t[i]) * math.sqrt(float(denom[i]))
        return proj[i].copy(), offset, float(dist[i])

    def distance_to(self, point: Vec2) -> float:
        """Shortest distance from *point* to the polyline."""
        return self.project(point)[2]

    # ------------------------------------------------------------------ #
    # geometry editing helpers
    # ------------------------------------------------------------------ #
    def resample(self, spacing: float) -> "Polyline":
        """Return a polyline with vertices spaced roughly *spacing* metres apart.

        The first and last vertices are always preserved.  Useful for turning
        coarse link geometry into a denser set of shape points and for
        history-based map learning.
        """
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        n = max(2, int(math.ceil(self._length / spacing)) + 1)
        offsets = np.linspace(0.0, self._length, n)
        return Polyline([self.point_at(o) for o in offsets])

    def subpolyline(self, start_offset: float, end_offset: float) -> "Polyline":
        """Extract the portion between two arc-length offsets (start < end)."""
        if end_offset <= start_offset:
            raise ValueError("end_offset must be greater than start_offset")
        start_offset = max(0.0, start_offset)
        end_offset = min(self._length, end_offset)
        points = [self.point_at(start_offset)]
        mask = (self._cumulative > start_offset) & (self._cumulative < end_offset)
        for idx in np.nonzero(mask)[0]:
            points.append(self._points[idx])
        points.append(self.point_at(end_offset))
        # Remove consecutive duplicates that can appear when offsets coincide
        # with existing vertices.
        unique = [points[0]]
        for pt in points[1:]:
            if distance(pt, unique[-1]) > 1e-9:
                unique.append(pt)
        if len(unique) < 2:
            unique.append(points[-1] + np.array([1e-9, 0.0]))
        return Polyline(unique)

    def concat(self, other: "Polyline") -> "Polyline":
        """Concatenate two polylines (the junction point is de-duplicated)."""
        pts = list(self._points)
        other_pts = list(other._points)
        if distance(pts[-1], other_pts[0]) < 1e-9:
            other_pts = other_pts[1:]
        return Polyline(pts + other_pts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Polyline({len(self._points)} points, length={self._length:.1f} m)"
