"""Road-map model, generators, routing and learning.

The paper's map model (Sec. 3, Fig. 4) consists of *intersections* (nodes
with a unique identifier and an exact geographical location), *links*
(directed connections between two intersections with a unique identifier)
and *shape points* that refine the geometry of a link into sub-links.  The
model here adds two attributes the paper mentions as useful refinements:
a road class (motorway / primary / residential / footpath) and a speed limit.

Because the original commercial navigation map is not available, the
:mod:`repro.roadmap.generators` module synthesises networks with the same
structural characteristics (curved freeway corridors, inter-urban networks,
dense city grids, pedestrian streets), and :mod:`repro.roadmap.history`
implements the paper's *history-based* variant that learns a map from
observed traces.
"""

from repro.roadmap.elements import Intersection, Link, RoadClass
from repro.roadmap.graph import RoadMap
from repro.roadmap.builder import RoadMapBuilder
from repro.roadmap.routing import Route, RoutePlanner
from repro.roadmap.probability import TurnProbabilityTable
from repro.roadmap import generators
from repro.roadmap import io

__all__ = [
    "Intersection",
    "Link",
    "RoadClass",
    "RoadMap",
    "RoadMapBuilder",
    "Route",
    "RoutePlanner",
    "TurnProbabilityTable",
    "generators",
    "io",
]
