"""Prediction functions and turn policies.

A prediction function maps the last reported object state and the current
time to an assumed position; the same instance (same parameters) is used by
the source and by the location server, which is what makes the deviation
guarantee possible (paper Sec. 2).

Turn policies encapsulate how the map-based prediction chooses an outgoing
link at an intersection:

* :class:`SmallestAngleTurnPolicy` — the paper's implementation ("the link
  with the smallest angle to the previous link is selected");
* :class:`MainRoadTurnPolicy` — the alternative the paper calls ideal
  ("ideally, the function would select the main road") using the road class;
* :class:`ProbabilisticTurnPolicy` — the *map-based with probability
  information* variant, selecting the most probable successor.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

import numpy as np

from repro.geo.angles import angle_between
from repro.geo.vec import as_vec
from repro.roadmap.elements import Link
from repro.roadmap.graph import RoadMap
from repro.roadmap.probability import TurnProbabilityTable
from repro.roadmap.routing import Route


class PredictionFunction(abc.ABC):
    """Maps ``(last reported state, current time)`` to an assumed position."""

    @abc.abstractmethod
    def predict(self, state, time: float) -> np.ndarray:
        """Predicted position of the object at *time*, in metres."""

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return type(self).__name__


class StaticPrediction(PredictionFunction):
    """The object is assumed to stay at its last reported position.

    This is the prediction implicit in the non-dead-reckoning reporting
    protocols of the paper's earlier work [6].
    """

    def predict(self, state, time: float) -> np.ndarray:
        return state.position.copy()


class LinearPrediction(PredictionFunction):
    """Constant-velocity extrapolation (the paper's linear prediction).

    ``pred(o, t) = o.pos + o.dir * o.v * (t - o.t)``
    """

    def predict(self, state, time: float) -> np.ndarray:
        dt = time - state.time
        return state.position + state.velocity * dt


class QuadraticPrediction(PredictionFunction):
    """Constant-acceleration extrapolation (a higher-order prediction function).

    The paper mentions higher-order prediction functions as a variant
    (Sec. 2) but does not evaluate them; they are provided here for the
    ablation benchmarks.  States without an acceleration estimate degrade to
    linear prediction.
    """

    def __init__(self, max_horizon: float = 60.0):
        #: Beyond this many seconds the acceleration term is frozen, because
        #: extrapolating a quadratic far into the future diverges quickly.
        self.max_horizon = float(max_horizon)

    def predict(self, state, time: float) -> np.ndarray:
        dt = min(time - state.time, self.max_horizon)
        position = state.position + state.velocity * dt
        acceleration = getattr(state, "acceleration", None)
        if acceleration is not None:
            position = position + 0.5 * as_vec(acceleration) * dt * dt
        return position


# --------------------------------------------------------------------------- #
# turn policies
# --------------------------------------------------------------------------- #
class TurnPolicy(abc.ABC):
    """Chooses the outgoing link the object is assumed to follow at an intersection."""

    #: Whether the choice depends only on the immutable map geometry.  When
    #: ``True``, :class:`MapPrediction` memoises the chosen successor per
    #: link, which turns the repeated link-walks of a simulation run into
    #: dictionary lookups.  Policies whose choice can change between queries
    #: (e.g. a turn-probability table that keeps learning) must leave this
    #: ``False``.
    stateless: bool = False

    @abc.abstractmethod
    def choose(self, roadmap: RoadMap, current: Link) -> Optional[Link]:
        """The successor of *current* the prediction should follow (or ``None``)."""


class SmallestAngleTurnPolicy(TurnPolicy):
    """Select the outgoing link with the smallest angle to the previous link.

    Ties are broken by link id so that source and server always make the
    same, deterministic choice.
    """

    stateless = True

    def choose(self, roadmap: RoadMap, current: Link) -> Optional[Link]:
        successors = roadmap.successors(current)
        if not successors:
            return None
        exit_direction = current.direction_at(current.length)
        return min(
            successors,
            key=lambda link: (angle_between(exit_direction, link.direction_at(0.0)), link.id),
        )


class MainRoadTurnPolicy(TurnPolicy):
    """Prefer the most important road class; break ties by smallest angle.

    The paper notes that ideally the prediction "would select the main
    road"; this policy implements that using the road-class priority stored
    in the map.
    """

    stateless = True

    def choose(self, roadmap: RoadMap, current: Link) -> Optional[Link]:
        successors = roadmap.successors(current)
        if not successors:
            return None
        exit_direction = current.direction_at(current.length)
        return min(
            successors,
            key=lambda link: (
                -link.road_class.priority,
                angle_between(exit_direction, link.direction_at(0.0)),
                link.id,
            ),
        )


class ProbabilisticTurnPolicy(TurnPolicy):
    """Select the most probable successor according to a turn-probability table.

    Falls back to the smallest-angle policy when the table has no
    observations for an intersection (uniform probabilities), because in
    that situation geometry is the better prior.
    """

    def __init__(self, table: TurnProbabilityTable):
        self.table = table
        self._fallback = SmallestAngleTurnPolicy()

    def choose(self, roadmap: RoadMap, current: Link) -> Optional[Link]:
        probabilities = self.table.transition_probabilities(current)
        if not probabilities:
            return None
        values = sorted(probabilities.values())
        if len(values) > 1 and abs(values[-1] - values[0]) < 1e-12:
            # No information recorded (uniform); use geometry instead.
            return self._fallback.choose(roadmap, current)
        return self.table.most_probable_successor(current)


# --------------------------------------------------------------------------- #
# map-based prediction
# --------------------------------------------------------------------------- #
class MapPrediction(PredictionFunction):
    """Advance the object along the road network at its reported speed.

    From the reported (corrected) position on the reported link, the object
    is assumed to keep following the link geometry; when it reaches the end
    of a link the turn policy selects the next link, "which it assumes the
    object to keep on following in the same manner" (paper Sec. 3).  States
    without link information (off-map fallback) degrade to linear prediction.

    Parameters
    ----------
    roadmap:
        The shared map (the ``param`` of ``pred(o, param, t)``).
    turn_policy:
        Intersection choice policy; the paper's default is smallest angle.
    max_links_ahead:
        Safety bound on how many links a single prediction may walk past,
        protecting against degenerate maps with very short links.
    speed_limit_factor:
        When set, the assumed speed on every link is capped at
        ``speed_limit_factor * link.speed_limit``.  This implements the
        paper's future-work idea of using "knowledge about the speed limits
        for the roads to appropriately change the mobile object's assumed
        speed" — e.g. a car predicted to leave the motorway onto an exit ramp
        is no longer assumed to keep doing 120 km/h on it.  ``None`` (the
        paper's evaluated protocol) always uses the reported speed.
    """

    def __init__(
        self,
        roadmap: RoadMap,
        turn_policy: Optional[TurnPolicy] = None,
        max_links_ahead: int = 64,
        speed_limit_factor: Optional[float] = None,
    ):
        if speed_limit_factor is not None and speed_limit_factor <= 0:
            raise ValueError("speed_limit_factor must be positive (or None)")
        self.roadmap = roadmap
        self.turn_policy = turn_policy or SmallestAngleTurnPolicy()
        self.max_links_ahead = int(max_links_ahead)
        self.speed_limit_factor = speed_limit_factor
        self._linear = LinearPrediction()
        self._turn_cache: Dict[int, Optional[Link]] = {}
        # One-slot memo for repeated (state, time) queries: within one
        # simulation step the source (deviation check) and the server
        # (error measurement) ask for exactly the same prediction.
        self._memo_state = None
        self._memo_time: Optional[float] = None
        self._memo_position: Optional[np.ndarray] = None

    def _next_link(self, link: Link) -> Optional[Link]:
        """The successor chosen by the turn policy, memoised when safe.

        Stateless policies depend only on the (immutable) map, so the answer
        per link never changes within a prediction function's lifetime.
        """
        if not self.turn_policy.stateless:
            return self.turn_policy.choose(self.roadmap, link)
        try:
            return self._turn_cache[link.id]
        except KeyError:
            nxt = self.turn_policy.choose(self.roadmap, link)
            self._turn_cache[link.id] = nxt
            return nxt

    def clear_turn_cache(self) -> None:
        """Forget memoised turn choices and positions.

        Only needed if the underlying road map or turn policy is ever
        mutated in place; also drops the one-slot query memo so no stale
        position can survive the invalidation.
        """
        self._turn_cache.clear()
        self._memo_state = None
        self._memo_time = None
        self._memo_position = None

    def _assumed_speed(self, state, link: Link) -> float:
        """Speed the object is assumed to travel at on *link*."""
        if self.speed_limit_factor is None:
            return state.speed
        return min(state.speed, self.speed_limit_factor * link.speed_limit)

    def predict(self, state, time: float) -> np.ndarray:
        if state is self._memo_state and time == self._memo_time:
            return self._memo_position
        position = self._predict_uncached(state, time)
        self._memo_state = state
        self._memo_time = time
        self._memo_position = position
        return position

    def _predict_uncached(self, state, time: float) -> np.ndarray:
        if state.link_id is None or not self.roadmap.has_link(state.link_id):
            return self._linear.predict(state, time)
        link = self.roadmap.link(state.link_id)
        offset = float(state.link_offset if state.link_offset is not None else 0.0)
        if self.speed_limit_factor is None:
            # Constant assumed speed: walk a distance budget along the links.
            remaining = state.speed * max(0.0, time - state.time)
            for _ in range(self.max_links_ahead):
                available = link.length - offset
                if remaining <= available:
                    return link.point_at(offset + remaining)
                remaining -= available
                nxt = self._next_link(link)
                if nxt is None:
                    # Dead end: the object is assumed to stop at the end of the link.
                    return link.point_at(link.length)
                link = nxt
                offset = 0.0
            return link.point_at(link.length)

        # Speed-limit-aware variant: the assumed speed changes per link, so a
        # time budget is walked instead of a distance budget.
        remaining_time = max(0.0, time - state.time)
        for _ in range(self.max_links_ahead):
            speed = self._assumed_speed(state, link)
            if speed <= 0.0:
                return link.point_at(offset)
            time_to_end = (link.length - offset) / speed
            if remaining_time <= time_to_end:
                return link.point_at(offset + speed * remaining_time)
            remaining_time -= time_to_end
            nxt = self._next_link(link)
            if nxt is None:
                return link.point_at(link.length)
            link = nxt
            offset = 0.0
        return link.point_at(link.length)

    def predict_link(self, state, time: float) -> Tuple[Optional[int], float]:
        """The link and offset the object is predicted to occupy at *time*.

        Exposed for diagnostics and tests; mirrors :meth:`predict`.
        """
        if state.link_id is None or not self.roadmap.has_link(state.link_id):
            return None, 0.0
        link = self.roadmap.link(state.link_id)
        offset = float(state.link_offset or 0.0)
        remaining = state.speed * max(0.0, time - state.time)
        for _ in range(self.max_links_ahead):
            available = link.length - offset
            if remaining <= available:
                return link.id, offset + remaining
            remaining -= available
            nxt = self._next_link(link)
            if nxt is None:
                return link.id, link.length
            link = nxt
            offset = 0.0
        return link.id, link.length

    def describe(self) -> str:
        return f"MapPrediction({type(self.turn_policy).__name__})"


class RoutePrediction(PredictionFunction):
    """Advance the object along a pre-known route at its reported speed.

    Implements the *dead-reckoning with known route* variant (paper Sec. 2,
    following Wolfson et al. [12]): only the speed matters because the
    geometry is fixed.  The starting offset along the route is taken from the
    reported state's ``link_offset`` field when present (the known-route
    source tracks its route offset monotonically and transmits it); states
    without it fall back to a global projection of the reported position,
    which is only safe for routes that do not self-intersect.
    """

    def __init__(self, route: Route):
        self.route = route
        self._offset_cache: Dict[int, float] = {}

    def _start_offset(self, state) -> float:
        if state.link_offset is not None:
            return float(state.link_offset)
        key = id(state)
        cached = self._offset_cache.get(key)
        if cached is None:
            cached = self.route.project(state.position)[1]
            if len(self._offset_cache) > 256:
                self._offset_cache.clear()
            self._offset_cache[key] = cached
        return cached

    def predict(self, state, time: float) -> np.ndarray:
        offset = self._start_offset(state) + state.speed * max(0.0, time - state.time)
        return self.route.point_at(min(offset, self.route.length))
