"""The source side of the location service.

A :class:`LocationSource` couples one mobile object's sensor stream with an
update protocol and a message channel: every sensor sighting is handed to
the protocol, and any update the protocol emits is transmitted over the
channel towards the server.
"""

from __future__ import annotations

from typing import List, Optional

from repro.geo.vec import Vec2
from repro.protocols.base import UpdateMessage, UpdateProtocol
from repro.service.channel import MessageChannel


class LocationSource:
    """Sensor-side driver of an update protocol.

    Parameters
    ----------
    object_id:
        Identifier of the mobile object at the server.
    protocol:
        The update protocol instance making the send decisions.
    channel:
        The channel used to transmit updates; when omitted a loss-free,
        zero-latency channel is created.
    """

    def __init__(
        self,
        object_id: str,
        protocol: UpdateProtocol,
        channel: Optional[MessageChannel] = None,
    ):
        self.object_id = object_id
        self.protocol = protocol
        self.channel = channel or MessageChannel()
        self._sent_messages: List[UpdateMessage] = []

    def process_sighting(self, time: float, position: Vec2) -> Optional[UpdateMessage]:
        """Feed one sensor sighting; transmit and return the update, if any."""
        message = self.protocol.observe(time, position)
        if message is not None:
            self.channel.send(self.object_id, message, time)
            self._sent_messages.append(message)
        return message

    def process_estimated(
        self, time: float, position: Vec2, velocity, speed: float
    ) -> Optional[UpdateMessage]:
        """Sighting with a precomputed speed/heading estimate.

        The fleet engine's fast path: estimates for the whole trace are
        computed vectorised up front and handed to the protocol via
        :meth:`~repro.protocols.base.UpdateProtocol.observe_precomputed`.
        """
        message = self.protocol.observe_precomputed(time, position, velocity, speed)
        if message is not None:
            self.channel.send(self.object_id, message, time)
            self._sent_messages.append(message)
        return message

    def process_timer(self, time: float) -> Optional[UpdateMessage]:
        """Fire the protocol's timer at exactly *time* (event kernel).

        Any update the protocol emits (a periodic report, a keepalive) is
        transmitted like a sighting-triggered one.  Stale fires return
        ``None`` and transmit nothing.
        """
        message = self.protocol.on_timer(time)
        if message is not None:
            self.channel.send(self.object_id, message, time)
            self._sent_messages.append(message)
        return message

    @property
    def sent_messages(self) -> List[UpdateMessage]:
        """Every update transmitted so far (in order)."""
        return list(self._sent_messages)

    @property
    def updates_sent(self) -> int:
        """Number of updates transmitted so far."""
        return len(self._sent_messages)
