"""Replay scenario traffic against a live location server.

The load generator closes the loop the rest of the repository leaves open:
the simulators *measure* the protocols, this module *serves* them.  It

1. extracts the **update stream** a fleet of lanes would transmit — each
   lane's protocol processes its sensor trace through a loss-free,
   zero-latency channel, exactly like the tick kernel's degenerate
   schedule — and groups the delivered messages into time-ordered batches;
2. draws the **query stream** from the workload's seeded Poisson machinery
   (:func:`repro.sim.workload.poisson_query_stream`), so the arrival
   pattern over simulated time is the same one the event kernel would
   schedule;
3. replays both against a :class:`~repro.service.live.server.LiveLocationServer`
   as concurrent closed-loop clients, recording per-request wall-clock
   latency (:class:`~repro.service.live.stats.LatencyRecorder`) and the
   **schedule** the server actually executed: the sequence number every
   batch was accepted at and the ``at_seq`` every query was answered at.

The recorded schedule is what makes the correctness claim exact instead of
statistical: :func:`reference_answers` replays the same batches in the same
sequence order against a plain in-process facade, pausing at every query's
``at_seq``, and the live answers must be **bit-identical** to the
reference's — whatever interleaving the network produced.
"""

from __future__ import annotations

import asyncio
import math
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geo.bbox import BoundingBox
from repro.protocols.base import UpdateMessage
from repro.service.channel import MessageChannel
from repro.service.facade import LocationService
from repro.service.live.client import LiveClient
from repro.service.live.server import service_for_registrations
from repro.service.live.stats import LatencyRecorder
from repro.service.source import LocationSource
from repro.sim.fleet import FleetLane
from repro.sim.workload import (
    QueryCall,
    QueryWorkload,
    execute_call,
    poisson_query_stream,
)
from repro.traces.estimation import estimate_trace

#: One ingest batch: every update delivered at one simulated instant.
Batch = Tuple[float, List[Tuple[str, UpdateMessage]]]


@dataclass
class ReplayPlan:
    """Everything needed to drive (and verify) one load-test run.

    ``registrations`` holds ``(object_id, prediction, accuracy)`` triples
    shared verbatim between the live server's facade and the reference
    facade — prediction functions are deterministic and stateless at query
    time, so sharing the instances keeps both sides bit-identical.
    """

    registrations: List[Tuple[str, object, float]]
    batches: List[Batch]
    calls: List[QueryCall]
    area: BoundingBox
    workload: QueryWorkload
    start: float
    end: float

    @property
    def total_updates(self) -> int:
        """Update messages summed over every batch."""
        return sum(len(batch) for _, batch in self.batches)


def build_replay_plan(
    lanes: Sequence[FleetLane],
    workload: QueryWorkload,
    max_batches: Optional[int] = None,
    max_queries: Optional[int] = None,
) -> ReplayPlan:
    """Extract a fleet's update stream and draw its Poisson query stream.

    The lanes' protocols are *consumed* (they process every sighting), so
    callers must pass freshly built lanes.  Updates are transmitted over a
    loss-free zero-latency channel and grouped per simulated instant in
    lane order — the batches the tick kernel would hand to
    :meth:`~repro.service.facade.LocationService.ingest_batch`.
    """
    if not lanes:
        raise ValueError("need at least one lane")
    if workload.arrival_rate_per_s is None:
        raise ValueError(
            "live replay draws query arrivals from the Poisson machinery; "
            "set QueryWorkload.arrival_rate_per_s"
        )
    registrations = [
        (lane.object_id, lane.protocol.prediction_function(), lane.protocol.accuracy)
        for lane in lanes
    ]
    events: List[Tuple[float, int, str, UpdateMessage]] = []
    min_xy = [math.inf, math.inf]
    max_xy = [-math.inf, -math.inf]
    start = math.inf
    end = -math.inf
    for lane_index, lane in enumerate(lanes):
        truth = lane.truth_trace if lane.truth_trace is not None else lane.sensor_trace
        mins = truth.positions.min(axis=0)
        maxs = truth.positions.max(axis=0)
        min_xy = [min(min_xy[0], float(mins[0])), min(min_xy[1], float(mins[1]))]
        max_xy = [max(max_xy[0], float(maxs[0])), max(max_xy[1], float(maxs[1]))]
        times = lane.sensor_trace.times
        positions = lane.sensor_trace.positions
        start = min(start, float(times[0]))
        end = max(end, float(times[-1]))
        channel = MessageChannel()
        source = LocationSource(lane.object_id, lane.protocol, channel)
        velocities, speeds = estimate_trace(
            times, positions, lane.protocol.estimator.window
        )
        for i in range(len(times)):
            t = float(times[i])
            source.process_estimated(t, positions[i], velocities[i], float(speeds[i]))
            for object_id, message in channel.deliver_due(t):
                events.append((t, lane_index, object_id, message))
    # Group deliveries sharing an instant into one batch, lanes in lane
    # order within the instant — the tick loop's batching.
    events.sort(key=lambda e: (e[0], e[1]))
    batches: List[Batch] = []
    for t, _lane_index, object_id, message in events:
        if batches and batches[-1][0] == t:
            batches[-1][1].append((object_id, message))
        else:
            batches.append((t, [(object_id, message)]))
    if max_batches is not None:
        batches = batches[:max_batches]
        if batches:
            end = min(end, batches[-1][0])
    area = BoundingBox(min_xy[0], min_xy[1], max_xy[0], max_xy[1])
    calls = poisson_query_stream(workload, area, start, end)
    if max_queries is not None:
        calls = calls[:max_queries]
    return ReplayPlan(
        registrations=registrations,
        batches=batches,
        calls=calls,
        area=area,
        workload=workload,
        start=start,
        end=end,
    )


def plan_region_size(plan: ReplayPlan, n_shards: int) -> float:
    """Grid-policy region size for a plan's area (the runner's heuristic)."""
    width = max(plan.area.max_x - plan.area.min_x, 1.0)
    height = max(plan.area.max_y - plan.area.min_y, 1.0)
    return max(100.0, math.sqrt(width * height / (8.0 * max(1, n_shards))))


def service_for_plan(
    plan: ReplayPlan, n_shards: int = 1, engine: str = "columnar"
) -> LocationService:
    """A fresh facade with the plan's registrations applied."""
    return service_for_registrations(
        plan.registrations,
        n_shards=n_shards,
        region_size=plan_region_size(plan, n_shards),
        engine=engine,
    )


# --------------------------------------------------------------------------- #
# the load test itself
# --------------------------------------------------------------------------- #
@dataclass
class LoadTestReport:
    """Latencies, throughput and the recorded schedule of one run."""

    mode: str
    clients: int
    ingest_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    query_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    #: ``batch_seqs[i]`` is the server sequence number batch ``i`` was
    #: accepted at, or ``None`` when backpressure rejected it.
    batch_seqs: List[Optional[int]] = field(default_factory=list)
    #: One ``(call_index, at_seq, answer)`` triple per answered query.
    query_records: List[Tuple[int, int, object]] = field(default_factory=list)
    rejected_batches: int = 0
    wall_seconds: float = 0.0

    @property
    def accepted_batches(self) -> int:
        """Batches the server acknowledged with a sequence number."""
        return sum(1 for seq in self.batch_seqs if seq is not None)

    @property
    def requests(self) -> int:
        """Completed requests (accepted ingests + answered queries)."""
        return self.accepted_batches + len(self.query_records)

    @property
    def throughput_rps(self) -> float:
        """Saturation throughput: completed requests per wall-clock second."""
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flat summary for reports, the CLI and the benchmark artifact."""
        return {
            "mode": self.mode,
            "clients": self.clients,
            "batches": len(self.batch_seqs),
            "accepted_batches": self.accepted_batches,
            "rejected_batches": self.rejected_batches,
            "queries": len(self.query_records),
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 1),
            "ingest": self.ingest_latency.summary(),
            "query": self.query_latency.summary(),
        }


async def run_load_test(
    plan: ReplayPlan,
    host: str,
    port: int,
    clients: int = 2,
    mode: str = "concurrent",
    wait: bool = True,
    obs=None,
) -> LoadTestReport:
    """Drive a running server with *plan*'s traffic, closed-loop.

    ``mode="concurrent"`` deals the batches round-robin over *clients*
    ingest connections (each sends its share in plan order, as fast as the
    server acknowledges) while one query connection issues every call in
    arrival order — the saturation measurement.  ``mode="lockstep"`` runs
    one connection that alternates strictly: each query carries
    ``min_seq`` equal to the last acknowledged batch, so answers are
    deterministic in plan order (the configuration the bit-identity test
    pins end to end).

    With ``wait=False`` ingest requests are submitted in shed-load form:
    a full queue rejects the batch instead of delaying the client.

    An optional :class:`~repro.obs.Observability` bundle gets a span over
    the whole drive plus the client-side latency distributions
    (``live.load.ingest`` / ``live.load.query``) merged into its registry.
    """
    if mode not in ("concurrent", "lockstep"):
        raise ValueError(f"unknown mode {mode!r}")
    if clients < 1:
        raise ValueError("need at least one client")
    report = LoadTestReport(mode=mode, clients=clients)
    report.batch_seqs = [None] * len(plan.batches)
    span = (
        obs.span(
            f"loadgen.{mode}",
            cat="live",
            args={"clients": clients, "batches": len(plan.batches), "calls": len(plan.calls)},
        )
        if obs is not None
        else None
    )
    started = _time.perf_counter()
    try:
        if mode == "lockstep":
            await _run_lockstep(plan, host, port, report)
        else:
            await _run_concurrent(plan, host, port, clients, wait, report)
    finally:
        if span is not None:
            span.close()
    report.wall_seconds = _time.perf_counter() - started
    if obs is not None:
        obs.latency("live.load.ingest").merge(report.ingest_latency)
        obs.latency("live.load.query").merge(report.query_latency)
        if report.rejected_batches:
            obs.counter("live.load.rejected", deterministic=False).inc(
                report.rejected_batches
            )
    return report


async def _ingest_one(
    client: LiveClient,
    plan: ReplayPlan,
    index: int,
    wait: bool,
    report: LoadTestReport,
) -> Optional[int]:
    """Send batch *index*; record its latency and sequence number."""
    t, batch = plan.batches[index]
    started = _time.perf_counter()
    response = await client.ingest(t, batch, wait=wait, check=False)
    report.ingest_latency.record(_time.perf_counter() - started)
    if response.get("ok", False):
        seq = int(response["seq"])
        report.batch_seqs[index] = seq
        return seq
    if response.get("rejected", False):
        report.rejected_batches += 1
        return None
    raise RuntimeError(f"ingest failed: {response.get('error')}")


async def _query_one(
    client: LiveClient,
    plan: ReplayPlan,
    index: int,
    min_seq: int,
    report: LoadTestReport,
) -> None:
    """Issue call *index*; record its latency, ``at_seq`` and answer."""
    call = plan.calls[index]
    started = _time.perf_counter()
    answer, at_seq = await client.query_call(plan.workload, call, min_seq=min_seq)
    report.query_latency.record(_time.perf_counter() - started)
    report.query_records.append((index, at_seq, answer))


async def _run_lockstep(
    plan: ReplayPlan, host: str, port: int, report: LoadTestReport
) -> None:
    """One connection, plan order, read-your-writes watermarks."""
    merged: List[Tuple[float, int, str, int]] = []
    for i, (t, _batch) in enumerate(plan.batches):
        merged.append((t, 0, "ingest", i))
    for i, call in enumerate(plan.calls):
        merged.append((call.time, 1, "query", i))
    merged.sort(key=lambda e: (e[0], e[1]))
    async with await LiveClient.connect(host, port) as client:
        last_seq = 0
        for _t, _prio, kind, index in merged:
            if kind == "ingest":
                seq = await _ingest_one(client, plan, index, True, report)
                if seq is not None:
                    last_seq = seq
            else:
                await _query_one(client, plan, index, last_seq, report)


async def _run_concurrent(
    plan: ReplayPlan,
    host: str,
    port: int,
    clients: int,
    wait: bool,
    report: LoadTestReport,
) -> None:
    """Round-robin ingest connections racing one query connection."""

    async def ingest_worker(worker: int) -> None:
        async with await LiveClient.connect(host, port) as client:
            for index in range(worker, len(plan.batches), clients):
                await _ingest_one(client, plan, index, wait, report)

    async def query_worker() -> None:
        async with await LiveClient.connect(host, port) as client:
            for index in range(len(plan.calls)):
                await _query_one(client, plan, index, 0, report)

    await asyncio.gather(
        *(ingest_worker(w) for w in range(clients)),
        query_worker(),
    )


# --------------------------------------------------------------------------- #
# the reference side of the bit-identity assertion
# --------------------------------------------------------------------------- #
def reference_answers(
    plan: ReplayPlan, report: LoadTestReport, n_shards: int = 1
) -> List[Tuple[int, object]]:
    """Recompute every recorded query on a plain in-process facade.

    Replays the *recorded* schedule: batches are applied in the sequence
    order the live server assigned, and each query is answered once the
    facade has applied exactly the batches with ``seq <= at_seq``.  Returns
    ``(call_index, answer)`` pairs aligned with ``report.query_records`` —
    the live answers must equal these bit-for-bit.
    """
    service = service_for_plan(plan, n_shards=n_shards)
    applied = sorted(
        (seq, index)
        for index, seq in enumerate(report.batch_seqs)
        if seq is not None
    )
    queries = sorted(
        range(len(report.query_records)),
        key=lambda i: report.query_records[i][1],
    )
    answers: List[Tuple[int, object]] = [(0, None)] * len(report.query_records)
    cursor = 0
    for record_index in queries:
        call_index, at_seq, _live_answer = report.query_records[record_index]
        while cursor < len(applied) and applied[cursor][0] <= at_seq:
            _seq, batch_index = applied[cursor]
            t, batch = plan.batches[batch_index]
            service.ingest_batch(batch, t)
            cursor += 1
        answers[record_index] = (
            call_index,
            execute_call(service, plan.workload, plan.calls[call_index]),
        )
    return answers


def mismatched_answers(
    plan: ReplayPlan, report: LoadTestReport, n_shards: int = 1
) -> List[Tuple[int, object, object]]:
    """All queries whose live answer differs from the reference replay.

    Empty means the server was bit-identical to direct facade calls for
    the entire run.  Each mismatch is ``(call_index, live, reference)``.
    """
    reference = reference_answers(plan, report, n_shards=n_shards)
    mismatches: List[Tuple[int, object, object]] = []
    for (call_index, _at_seq, live), (_ci, ref) in zip(
        report.query_records, reference
    ):
        if live != ref:
            mismatches.append((call_index, live, ref))
    return mismatches
