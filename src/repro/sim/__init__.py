"""Simulation engine: coupling traces, protocols, channel and server.

This is the equivalent of the paper's simulator (Sec. 4): "we have simulated
the movements of a mobile object and in our simulator provided the
functionality for transmitting the location information between a source and
a server.  Different variants of update protocols can be plugged into the
simulator and be compared according to the number of updates transmitted and
the resulting accuracy on the server."

The package is layered so that every experiment entry point shares one
execution core:

``engine`` → ``fleet`` → ``runner``

* :mod:`repro.sim.kernel` is the deterministic discrete-event scheduler —
  a binary-heap agenda ordered by ``(time, priority, seq)`` with event
  kinds for sensor samples, protocol timers, channel deliveries, shard
  handoffs and workload query arrivals.
* :mod:`repro.sim.fleet` is the core: :class:`FleetSimulation` steps any
  number of (object, protocol, trace) lanes — on the classic tick loop or
  on the event kernel (``kernel="event"``), bit-identical in the
  degenerate case (uniform rates, tick-aligned latency, on-grid or no
  timer deadlines) — against a single
  :class:`~repro.service.server.LocationServer`, with vectorised
  speed/heading estimation and batched server queries.
* :mod:`repro.sim.engine` keeps the classic single-object API:
  :class:`ProtocolSimulation` is a one-lane façade over the fleet core, so
  single runs and fleet runs are the same machinery by construction.
* :mod:`repro.sim.runner` executes whole sweeps (scenario × protocol ×
  accuracy grids) on top of the engine: per-process scenario caching,
  pluggable serial / process-pool executors (``jobs=N``) with bit-identical
  results regardless of the job count, and JSON/CSV artifact output.
  :mod:`repro.sim.sweep` re-exports the thin historical wrappers.

:mod:`repro.sim.metrics` collects error samples as NumPy arrays
(:class:`AccuracyMetrics`), :mod:`repro.sim.config` declares runs as
serialisable :class:`SimulationConfig` values.
"""

from repro.sim.kernel import KERNELS, EventKernel, validate_kernel
from repro.sim.metrics import AccuracyMetrics, SimulationResult
from repro.sim.engine import ProtocolSimulation, run_simulation
from repro.sim.fleet import FleetLane, FleetResult, FleetSimulation, run_fleet
from repro.sim.sweep import SweepPoint, run_accuracy_sweep, run_config_sweep
from repro.sim.config import SimulationConfig
from repro.sim.runner import (
    QueryBenchSpec,
    ScenarioSpec,
    SweepRunner,
    SweepTask,
    read_artifact,
)
from repro.sim.workload import (
    QueryWorkload,
    WorkloadExecutor,
    WorkloadReport,
    default_query_mix,
)

__all__ = [
    "KERNELS",
    "EventKernel",
    "validate_kernel",
    "QueryBenchSpec",
    "QueryWorkload",
    "WorkloadExecutor",
    "WorkloadReport",
    "default_query_mix",
    "AccuracyMetrics",
    "SimulationResult",
    "ProtocolSimulation",
    "run_simulation",
    "FleetLane",
    "FleetResult",
    "FleetSimulation",
    "run_fleet",
    "SweepPoint",
    "run_accuracy_sweep",
    "run_config_sweep",
    "SimulationConfig",
    "ScenarioSpec",
    "SweepRunner",
    "SweepTask",
    "read_artifact",
]
