"""Unit tests for repro.roadmap.history (history-based map learning)."""

import numpy as np
import pytest

from repro.roadmap.history import HistoryMapLearner
from repro.traces.trace import Trace


def straight_positions(length=1000.0, step=10.0, y=0.0):
    xs = np.arange(0.0, length + step, step)
    return np.column_stack((xs, np.full_like(xs, y)))


class TestIngestion:
    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            HistoryMapLearner(cell_size=0.0)

    def test_empty_learner_cannot_build(self):
        with pytest.raises(ValueError):
            HistoryMapLearner().build_map()

    def test_coverage_statistics(self):
        learner = HistoryMapLearner(cell_size=50.0)
        positions = straight_positions()
        learner.add_positions(positions, timestamps=np.arange(len(positions), dtype=float))
        stats = learner.coverage_statistics()
        assert stats["positions"] == len(positions)
        assert stats["cells"] > 0
        assert stats["observed_max_speed"] > 0

    def test_add_trace_interface(self):
        times = np.arange(0.0, 50.0)
        positions = np.column_stack((times * 15.0, np.zeros_like(times)))
        trace = Trace(times, positions)
        learner = HistoryMapLearner(cell_size=40.0)
        learner.add_trace(trace)
        assert learner.coverage_statistics()["positions"] == 50


class TestMapExtraction:
    def test_straight_trace_produces_thin_map(self):
        learner = HistoryMapLearner(cell_size=50.0)
        learner.add_positions(straight_positions(length=2000.0))
        roadmap = learner.build_map()
        # The learned map should follow the driven line: its total (one-way)
        # length is close to the trace length.
        assert roadmap.total_length() / 2.0 == pytest.approx(2000.0, rel=0.2)
        # And every learned link lies close to the y=0 line.
        for link in roadmap.links.values():
            assert np.all(np.abs(link.geometry.points[:, 1]) < 60.0)

    def test_learned_map_matches_trace_positions(self):
        learner = HistoryMapLearner(cell_size=40.0)
        learner.add_positions(straight_positions(length=1500.0))
        roadmap = learner.build_map()
        for x in (100.0, 700.0, 1400.0):
            found = roadmap.nearest_link((x, 0.0))
            assert found is not None
            _, dist = found
            assert dist < 40.0

    def test_junction_becomes_intersection(self):
        # Two traces that share a segment and then split create a junction.
        learner = HistoryMapLearner(cell_size=50.0)
        shared = straight_positions(length=500.0)
        east = np.column_stack((np.arange(500.0, 1000.0, 10.0), np.zeros(50)))
        north = np.column_stack((np.full(50, 500.0), np.arange(0.0, 500.0, 10.0)))
        learner.add_positions(np.vstack((shared, east)))
        learner.add_positions(np.vstack((shared, north)))
        roadmap = learner.build_map()
        # A node should exist near the split point (500, 0).
        node, dist = roadmap.nearest_intersection((500.0, 0.0))
        assert dist < 80.0
        assert roadmap.degree(node.id) >= 3

    def test_min_cell_visits_filters_noise(self):
        learner = HistoryMapLearner(cell_size=50.0, min_cell_visits=2)
        # The main road is traversed twice, a noise blip only once.
        road = straight_positions(length=1000.0)
        learner.add_positions(road)
        learner.add_positions(road)
        learner.add_positions(np.array([[5000.0, 5000.0], [5050.0, 5000.0]]))
        roadmap = learner.build_map()
        found = roadmap.nearest_link((5000.0, 5000.0), max_distance=500.0)
        assert found is None

    def test_speed_limit_estimated_from_observations(self):
        learner = HistoryMapLearner(cell_size=50.0)
        positions = straight_positions(length=1000.0, step=20.0)
        times = np.arange(len(positions), dtype=float)  # 20 m/s
        learner.add_positions(positions, timestamps=times)
        roadmap = learner.build_map()
        speeds = {l.speed_limit for l in roadmap.links.values()}
        assert all(abs(s - 20.0) < 1.0 for s in speeds)

    def test_explicit_speed_limit_used(self):
        learner = HistoryMapLearner(cell_size=50.0, speed_limit=13.0)
        learner.add_positions(straight_positions())
        roadmap = learner.build_map()
        assert all(l.speed_limit == 13.0 for l in roadmap.links.values())

    def test_loop_trace_still_builds(self):
        learner = HistoryMapLearner(cell_size=60.0)
        angles = np.linspace(0.0, 2 * np.pi, 200)
        loop = np.column_stack((500.0 * np.cos(angles), 500.0 * np.sin(angles)))
        learner.add_positions(loop)
        roadmap = learner.build_map()
        assert roadmap.num_links() >= 2
        assert roadmap.num_intersections() >= 1
