"""Axis-aligned bounding boxes.

Bounding boxes are the unit of storage of the spatial indexes in
:mod:`repro.spatial` and are also used by the location server's range
queries ("address all users that are currently inside a department of a
store", paper Sec. 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.geo.vec import Vec2, as_vec


@dataclass(frozen=True)
class BoundingBox:
    """A rectangle aligned with the coordinate axes, in metres."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "invalid bounding box: "
                f"({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(cls, points: Iterable[Vec2]) -> "BoundingBox":
        """Smallest box containing all *points*."""
        pts = np.array([as_vec(p) for p in points], dtype=float)
        if len(pts) == 0:
            raise ValueError("cannot build a bounding box from zero points")
        mins = pts.min(axis=0)
        maxs = pts.max(axis=0)
        return cls(float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    @classmethod
    def around(cls, center: Vec2, radius: float) -> "BoundingBox":
        """Square box of half-width *radius* centred at *center*."""
        c = as_vec(center)
        r = abs(float(radius))
        return cls(c[0] - r, c[1] - r, c[0] + r, c[1] + r)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Area in square metres."""
        return self.width * self.height

    @property
    def center(self) -> np.ndarray:
        """Centre point of the box."""
        return np.array(
            [(self.min_x + self.max_x) * 0.5, (self.min_y + self.max_y) * 0.5]
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)``."""
        return (self.min_x, self.min_y, self.max_x, self.max_y)

    # ------------------------------------------------------------------ #
    # predicates and set operations
    # ------------------------------------------------------------------ #
    def contains_point(self, point: Vec2) -> bool:
        """Whether *point* lies inside or on the boundary of the box."""
        p = as_vec(point)
        return (
            self.min_x <= p[0] <= self.max_x and self.min_y <= p[1] <= self.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes overlap (boundaries touching counts)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """Whether *other* lies entirely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """The box grown by *margin* metres on every side."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def distance_to_point(self, point: Vec2) -> float:
        """Distance from *point* to the box (0 if the point is inside)."""
        p = as_vec(point)
        dx = max(self.min_x - p[0], 0.0, p[0] - self.max_x)
        dy = max(self.min_y - p[1], 0.0, p[1] - self.max_y)
        return float(np.hypot(dx, dy))
