"""Incremental construction of road maps.

:class:`RoadMapBuilder` provides the mutable API used by the synthetic map
generators, the JSON loader and the history-based map learner; the result is
an immutable :class:`~repro.roadmap.graph.RoadMap`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.polyline import Polyline
from repro.geo.vec import Vec2, as_vec, distance
from repro.roadmap.elements import Intersection, Link, RoadClass
from repro.roadmap.graph import RoadMap


class RoadMapBuilder:
    """Accumulates intersections and links and assembles a :class:`RoadMap`.

    The builder assigns identifiers automatically (monotonically increasing
    integers) unless explicit ids are supplied, and offers convenience
    helpers for the common "two-way road" case.
    """

    def __init__(self, index_cell_size: float = 250.0):
        self._intersections: Dict[int, Intersection] = {}
        self._links: Dict[int, Link] = {}
        self._next_node_id = 0
        self._next_link_id = 0
        self._index_cell_size = index_cell_size

    # ------------------------------------------------------------------ #
    # intersections
    # ------------------------------------------------------------------ #
    def add_intersection(
        self, position: Vec2, node_id: Optional[int] = None
    ) -> Intersection:
        """Add an intersection at *position* and return it."""
        if node_id is None:
            node_id = self._next_node_id
        if node_id in self._intersections:
            raise ValueError(f"intersection id {node_id} already used")
        node = Intersection(id=node_id, position=as_vec(position))
        self._intersections[node_id] = node
        self._next_node_id = max(self._next_node_id, node_id + 1)
        return node

    def get_or_create_intersection(
        self, position: Vec2, merge_tolerance: float = 1.0
    ) -> Intersection:
        """Return an existing intersection within *merge_tolerance* metres or create one.

        Used by the history-based map learner, where observed positions never
        repeat exactly.
        """
        p = as_vec(position)
        for node in self._intersections.values():
            if distance(node.position, p) <= merge_tolerance:
                return node
        return self.add_intersection(p)

    # ------------------------------------------------------------------ #
    # links
    # ------------------------------------------------------------------ #
    def add_link(
        self,
        from_node: int,
        to_node: int,
        shape_points: Optional[Sequence[Vec2]] = None,
        road_class: RoadClass = RoadClass.SECONDARY,
        speed_limit: Optional[float] = None,
        name: str = "",
        link_id: Optional[int] = None,
    ) -> Link:
        """Add a directed link between two existing intersections.

        *shape_points* are the intermediate geometry vertices; the start and
        end intersection positions are added automatically.
        """
        if from_node not in self._intersections:
            raise ValueError(f"unknown from_node {from_node}")
        if to_node not in self._intersections:
            raise ValueError(f"unknown to_node {to_node}")
        if link_id is None:
            link_id = self._next_link_id
        if link_id in self._links:
            raise ValueError(f"link id {link_id} already used")

        points: List[np.ndarray] = [self._intersections[from_node].position]
        if shape_points:
            points.extend(as_vec(p) for p in shape_points)
        points.append(self._intersections[to_node].position)
        # Collapse consecutive duplicates, which would create zero-length
        # sub-links and confuse arc-length parameterisation.
        cleaned: List[np.ndarray] = [points[0]]
        for p in points[1:]:
            if distance(p, cleaned[-1]) > 1e-9:
                cleaned.append(p)
        if len(cleaned) < 2:
            raise ValueError("link start and end coincide; cannot build geometry")

        link = Link(
            id=link_id,
            from_node=from_node,
            to_node=to_node,
            geometry=Polyline(cleaned),
            road_class=road_class,
            speed_limit=speed_limit,
            name=name,
        )
        self._links[link_id] = link
        self._next_link_id = max(self._next_link_id, link_id + 1)
        return link

    def add_two_way_link(
        self,
        node_a: int,
        node_b: int,
        shape_points: Optional[Sequence[Vec2]] = None,
        road_class: RoadClass = RoadClass.SECONDARY,
        speed_limit: Optional[float] = None,
        name: str = "",
    ) -> Tuple[Link, Link]:
        """Add a pair of opposite links representing a two-way road."""
        forward = self.add_link(
            node_a, node_b, shape_points, road_class, speed_limit, name
        )
        reverse_shape = list(reversed([as_vec(p) for p in shape_points])) if shape_points else None
        backward = self.add_link(
            node_b, node_a, reverse_shape, road_class, speed_limit, name
        )
        return forward, backward

    # ------------------------------------------------------------------ #
    # assembly
    # ------------------------------------------------------------------ #
    def num_intersections(self) -> int:
        """Number of intersections added so far."""
        return len(self._intersections)

    def num_links(self) -> int:
        """Number of links added so far."""
        return len(self._links)

    def build(self, metadata: Optional[Dict] = None) -> RoadMap:
        """Assemble the immutable :class:`RoadMap`.

        *metadata* records the map's provenance (source extract, geodesic
        origin, ingest report) and survives save/load round-trips.
        """
        return RoadMap(
            self._intersections.values(),
            self._links.values(),
            index_cell_size=self._index_cell_size,
            metadata=metadata,
        )
