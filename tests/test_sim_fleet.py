"""Tests for the fleet simulation core (engine → fleet equivalence)."""

import numpy as np
import pytest

from repro.protocols.linear import LinearPredictionProtocol
from repro.service.channel import MessageChannel
from repro.service.server import LocationServer
from repro.sim.config import SimulationConfig
from repro.sim.engine import ProtocolSimulation
from repro.sim.fleet import FleetLane, FleetResult, FleetSimulation, run_fleet


def _single_run(protocol, scenario, object_id="object-0", channel=None):
    return ProtocolSimulation(
        protocol=protocol,
        sensor_trace=scenario.sensor_trace,
        truth_trace=scenario.true_trace,
        channel=channel,
        object_id=object_id,
    ).run()


def _assert_results_identical(fleet_result, single_result):
    assert fleet_result.updates == single_result.updates
    assert fleet_result.bytes_sent == single_result.bytes_sent
    assert fleet_result.update_reasons == single_result.update_reasons
    assert fleet_result.duration_h == single_result.duration_h
    assert np.array_equal(fleet_result.metrics.errors, single_result.metrics.errors)
    assert fleet_result.metrics.mean_error == single_result.metrics.mean_error
    assert fleet_result.metrics.max_error == single_result.metrics.max_error


def _build(protocol_id, accuracy, scenario):
    return SimulationConfig(protocol_id=protocol_id, accuracy=accuracy).build_protocol(scenario)


class TestFleetValidation:
    def test_needs_lanes(self):
        with pytest.raises(ValueError):
            FleetSimulation([])

    def test_unique_object_ids(self, tiny_freeway_scenario):
        lanes = [
            FleetLane("car", _build("linear", 100.0, tiny_freeway_scenario),
                      tiny_freeway_scenario.sensor_trace),
            FleetLane("car", _build("linear", 200.0, tiny_freeway_scenario),
                      tiny_freeway_scenario.sensor_trace),
        ]
        with pytest.raises(ValueError):
            FleetSimulation(lanes)

    def test_protocols_not_shared(self, tiny_freeway_scenario):
        protocol = _build("linear", 100.0, tiny_freeway_scenario)
        lanes = [
            FleetLane("a", protocol, tiny_freeway_scenario.sensor_trace),
            FleetLane("b", protocol, tiny_freeway_scenario.sensor_trace),
        ]
        with pytest.raises(ValueError):
            FleetSimulation(lanes)

    def test_clone_for_lanes_are_independent(self, tiny_freeway_scenario):
        """clone_for() detaches per-run state, so clone lanes are fleet-safe."""
        scenario = tiny_freeway_scenario
        prototype = _build("map", 100.0, scenario)
        lanes = [
            FleetLane(f"obj-{n}", prototype.clone_for(us),
                      scenario.sensor_trace, scenario.true_trace)
            for n, us in enumerate((50.0, 100.0, 200.0))
        ]
        fleet = FleetSimulation(lanes).run()
        for n, us in enumerate((50.0, 100.0, 200.0)):
            single = _single_run(_build("map", us, scenario), scenario)
            _assert_results_identical(fleet.results[f"obj-{n}"], single)

    def test_clone_for_leaves_prototype_untouched(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        prototype = _build("map", 100.0, scenario)
        before = _single_run(prototype, scenario)
        stats_before = dict(prototype.matching_statistics())
        clone = prototype.clone_for(200.0)
        assert prototype.matching_statistics() == stats_before
        assert prototype.updates_sent == before.updates
        assert clone.updates_sent == 0
        assert clone.matcher is not prototype.matcher

    def test_mismatched_traces_rejected(self, straight_trace, l_shaped_trace):
        lane = FleetLane(
            "a", LinearPredictionProtocol(accuracy=100.0), straight_trace, l_shaped_trace
        )
        with pytest.raises(ValueError):
            FleetSimulation([lane]).run()

    def test_run_is_one_shot(self, straight_trace):
        sim = FleetSimulation(
            [FleetLane("a", LinearPredictionProtocol(accuracy=100.0), straight_trace)]
        )
        sim.run()
        with pytest.raises(ValueError, match="one-shot"):
            sim.run()

    def test_failed_validation_leaves_server_untouched(
        self, straight_trace, l_shaped_trace
    ):
        """A bad lane must not leave earlier lanes registered on the server."""
        server = LocationServer()
        lanes = [
            FleetLane("good", LinearPredictionProtocol(accuracy=100.0), straight_trace),
            FleetLane(
                "bad", LinearPredictionProtocol(accuracy=100.0),
                straight_trace, l_shaped_trace,
            ),
        ]
        with pytest.raises(ValueError):
            FleetSimulation(lanes, server=server).run()
        assert server.object_ids() == []
        # The corrected fleet runs fine against the same server.
        retry = [
            FleetLane("good", LinearPredictionProtocol(accuracy=100.0), straight_trace),
        ]
        FleetSimulation(retry, server=server).run()
        assert server.object_ids() == ["good"]


class TestFleetEquivalence:
    """N-lane fleet runs must equal N independent single-object runs."""

    def test_mixed_protocols_match_single_runs(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        configs = [
            ("distance", 50.0), ("distance", 200.0),
            ("linear", 50.0), ("linear", 200.0),
            ("map", 100.0),
        ]
        lanes = [
            FleetLane(
                object_id=f"obj-{n}",
                protocol=_build(pid, us, scenario),
                sensor_trace=scenario.sensor_trace,
                truth_trace=scenario.true_trace,
            )
            for n, (pid, us) in enumerate(configs)
        ]
        fleet = FleetSimulation(lanes).run()
        assert isinstance(fleet, FleetResult)
        assert fleet.object_ids == [f"obj-{n}" for n in range(len(configs))]
        for n, (pid, us) in enumerate(configs):
            single = _single_run(_build(pid, us, scenario), scenario)
            _assert_results_identical(fleet.results[f"obj-{n}"], single)

    def test_per_lane_latency_channels_match_single_runs(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        lanes = [
            FleetLane(
                object_id=f"obj-{n}",
                protocol=_build("linear", us, scenario),
                sensor_trace=scenario.sensor_trace,
                truth_trace=scenario.true_trace,
                channel=MessageChannel(latency=5.0),
            )
            for n, us in enumerate((50.0, 150.0))
        ]
        fleet = FleetSimulation(lanes).run()
        for n, us in enumerate((50.0, 150.0)):
            single = _single_run(
                _build("linear", us, scenario), scenario, channel=MessageChannel(latency=5.0)
            )
            _assert_results_identical(fleet.results[f"obj-{n}"], single)

    def test_hundred_object_city_fleet_matches_single_runs(self, tiny_city_scenario):
        """Acceptance: >= 100 objects on the city scenario, exact per-object match."""
        scenario = tiny_city_scenario
        n_objects = 100
        accuracies = [20.0 + 5.0 * (n % 20) for n in range(n_objects)]
        lanes = [
            FleetLane(
                object_id=f"taxi-{n:03d}",
                protocol=_build("linear", accuracies[n], scenario),
                sensor_trace=scenario.sensor_trace,
                truth_trace=scenario.true_trace,
            )
            for n in range(n_objects)
        ]
        fleet = FleetSimulation(lanes).run()
        assert len(fleet.results) == n_objects
        for n in range(n_objects):
            single = _single_run(_build("linear", accuracies[n], scenario), scenario)
            _assert_results_identical(fleet.results[f"taxi-{n:03d}"], single)
        # Aggregates are consistent with the per-object results.
        assert fleet.total_updates == sum(r.updates for r in fleet.results.values())
        assert fleet.object_hours == pytest.approx(
            n_objects * scenario.sensor_trace.duration / 3600.0
        )
        pooled = fleet.aggregate_metrics()
        assert pooled.count == sum(r.metrics.count for r in fleet.results.values())
        # Pooled violations carry each lane's own accuracy bound: with tight
        # 20-115 m bounds some lanes must violate, and the pooled fraction is
        # the sample-weighted mean of the per-lane fractions.
        total_violations = sum(
            r.metrics.violation_count for r in fleet.results.values()
        )
        assert total_violations > 0
        assert pooled.violation_count == total_violations
        assert pooled.violation_fraction == pytest.approx(total_violations / pooled.count)

    def test_shared_server_tracks_all_objects(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        server = LocationServer()
        lanes = [
            FleetLane(f"obj-{n}", _build("linear", 100.0 + n, scenario),
                      scenario.sensor_trace, scenario.true_trace)
            for n in range(3)
        ]
        result = FleetSimulation(lanes, server=server).run()
        assert sorted(server.object_ids()) == sorted(result.object_ids)
        t_end = float(scenario.sensor_trace.times[-1])
        positions = server.all_positions(t_end)
        assert set(positions) == set(result.object_ids)


class TestChannelReuse:
    """Satellite fix: a reused channel must not leak in-flight messages."""

    def test_channel_reset_drains_in_flight(self):
        from repro.protocols.base import ObjectState, UpdateMessage, UpdateReason

        channel = MessageChannel(latency=100.0)
        state = ObjectState(time=0.0, position=(0.0, 0.0), velocity=(0.0, 0.0), speed=0.0)
        channel.send("x", UpdateMessage(0, state, UpdateReason.INITIAL), 0.0)
        assert channel.in_flight == 1
        assert channel.stats.messages_sent == 1
        channel.reset()
        assert channel.in_flight == 0
        assert channel.stats.messages_sent == 0
        assert channel.deliver_due(1e9) == []

    def test_reused_channel_gives_identical_runs(self, tiny_freeway_scenario):
        """Back-to-back runs over one high-latency channel must agree."""
        scenario = tiny_freeway_scenario
        channel = MessageChannel(latency=30.0)
        first = _single_run(_build("linear", 50.0, scenario), scenario, channel=channel)
        # The first run leaves messages in flight (latency exceeds the tail
        # of the trace); without the run-start reset they would be delivered
        # at the very first sample of the second run.
        second = _single_run(_build("linear", 50.0, scenario), scenario, channel=channel)
        assert first.updates == second.updates
        assert np.array_equal(first.metrics.errors, second.metrics.errors)

    def test_fleet_resets_shared_channel(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        channel = MessageChannel(latency=30.0)
        lanes = lambda: [  # noqa: E731 - tiny local factory
            FleetLane("obj-0", _build("linear", 50.0, scenario),
                      scenario.sensor_trace, scenario.true_trace)
        ]
        first = run_fleet(lanes(), channel=channel).results["obj-0"]
        second = run_fleet(lanes(), channel=channel).results["obj-0"]
        assert first.updates == second.updates
        assert np.array_equal(first.metrics.errors, second.metrics.errors)
