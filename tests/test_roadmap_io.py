"""Unit tests for repro.roadmap.io."""

import json

import numpy as np
import pytest

from repro.roadmap.generators import city_grid_map, freeway_map
from repro.roadmap.io import (
    FORMAT_VERSION,
    load_roadmap,
    roadmap_from_dict,
    roadmap_to_dict,
    save_roadmap,
)


class TestDictRoundtrip:
    def test_roundtrip_preserves_counts(self):
        original = city_grid_map(rows=4, cols=4, seed=0)
        rebuilt = roadmap_from_dict(roadmap_to_dict(original))
        assert rebuilt.num_intersections() == original.num_intersections()
        assert rebuilt.num_links() == original.num_links()
        assert rebuilt.total_length() == pytest.approx(original.total_length())

    def test_roundtrip_preserves_geometry(self):
        original = freeway_map(length_km=15.0, seed=1)
        rebuilt = roadmap_from_dict(roadmap_to_dict(original))
        for link_id, link in original.links.items():
            twin = rebuilt.link(link_id)
            np.testing.assert_allclose(twin.geometry.points, link.geometry.points)
            assert twin.road_class == link.road_class
            assert twin.speed_limit == pytest.approx(link.speed_limit)

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            roadmap_from_dict({"format": "something-else", "version": FORMAT_VERSION})

    def test_rejects_wrong_version(self):
        data = roadmap_to_dict(city_grid_map(rows=3, cols=3, seed=2))
        data["version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError):
            roadmap_from_dict(data)

    def test_dict_is_json_serialisable(self):
        data = roadmap_to_dict(city_grid_map(rows=3, cols=3, seed=3))
        text = json.dumps(data)
        assert json.loads(text)["format"] == "repro-roadmap"


class TestTrustedLoad:
    """The ``trusted=True`` fast path must be bit-identical to the builder
    path for any document ``roadmap_to_dict`` wrote — the compiled-map
    cache relies on it."""

    def test_trusted_load_is_bit_identical(self):
        original = freeway_map(length_km=12.0, seed=9)
        data = json.loads(json.dumps(roadmap_to_dict(original)))
        slow = roadmap_from_dict(data)
        fast = roadmap_from_dict(data, trusted=True)
        assert sorted(fast.intersections) == sorted(slow.intersections)
        assert sorted(fast.links) == sorted(slow.links)
        for node_id in slow.intersections:
            assert (
                fast.intersection(node_id).position.tolist()
                == slow.intersection(node_id).position.tolist()
            )
        for link_id, twin in slow.links.items():
            link = fast.link(link_id)
            # exact equality, not approx: both paths must produce the same
            # float64 bits from the same JSON document
            assert link.geometry.points.tolist() == twin.geometry.points.tolist()
            assert link.length == twin.length
            assert link.travel_time() == twin.travel_time()
            assert link.road_class == twin.road_class
            assert link.speed_limit == twin.speed_limit
            assert link.name == twin.name

    def test_trusted_load_keeps_metadata_and_queries(self, tmp_path):
        original = city_grid_map(rows=4, cols=4, seed=11)
        path = tmp_path / "map.json"
        save_roadmap(original, path)
        rebuilt = load_roadmap(path, trusted=True)
        assert rebuilt.num_links() == original.num_links()
        probe = original.intersection(sorted(original.intersections)[3]).position
        assert sorted(
            link.id for link, _d in rebuilt.links_near(probe, 300.0)
        ) == sorted(link.id for link, _d in original.links_near(probe, 300.0))

    def test_trusted_load_still_validates_format(self):
        with pytest.raises(ValueError):
            roadmap_from_dict(
                {"format": "something-else", "version": FORMAT_VERSION}, trusted=True
            )


class TestFileRoundtrip:
    def test_save_and_load(self, tmp_path):
        original = city_grid_map(rows=4, cols=3, seed=4)
        path = tmp_path / "map.json"
        save_roadmap(original, path)
        assert path.exists()
        rebuilt = load_roadmap(path)
        assert rebuilt.num_links() == original.num_links()
        stats_a = original.statistics()
        stats_b = rebuilt.statistics()
        assert stats_a["total_length_km"] == pytest.approx(stats_b["total_length_km"])


class TestMetadata:
    def _imported_map(self):
        from repro.ingest import compile_osm, synthetic_town_xml

        return compile_osm(synthetic_town_xml(seed=2), source_name="town.osm").roadmap

    def test_metadata_survives_dict_roundtrip(self):
        original = self._imported_map()
        rebuilt = roadmap_from_dict(roadmap_to_dict(original))
        assert rebuilt.metadata == original.metadata
        assert rebuilt.metadata["source"] == "town.osm"

    def test_geodesic_origin_survives_file_roundtrip(self, tmp_path):
        original = self._imported_map()
        path = tmp_path / "imported.json"
        save_roadmap(original, path)
        rebuilt = load_roadmap(path)
        assert rebuilt.metadata["origin"] == original.metadata["origin"]
        assert rebuilt.metadata["ingest"]["conditioning"]["contracted"] is True

    def test_synthetic_maps_have_empty_metadata(self):
        roadmap = city_grid_map(rows=3, cols=3, seed=0)
        assert roadmap.metadata == {}
        assert "metadata" not in roadmap_to_dict(roadmap)

    def test_version_1_documents_still_load(self):
        data = roadmap_to_dict(city_grid_map(rows=3, cols=3, seed=5))
        data["version"] = 1
        data.pop("metadata", None)
        rebuilt = roadmap_from_dict(data)
        assert rebuilt.num_links() > 0
        assert rebuilt.metadata == {}

    def test_version_mismatch_error_is_actionable(self):
        data = roadmap_to_dict(city_grid_map(rows=3, cols=3, seed=6))
        data["version"] = 99
        with pytest.raises(ValueError) as excinfo:
            roadmap_from_dict(data)
        message = str(excinfo.value)
        assert "99" in message  # the offending version
        assert "1, 2" in message  # the supported versions
        assert "import-map" in message  # the remedy
