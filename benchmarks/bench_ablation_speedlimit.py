"""A5 — speed-limit-aware prediction (the paper's future-work extension).

Section 6 of the paper proposes letting the map-based prediction "use
knowledge about the speed limits for the roads to appropriately change the
mobile object's assumed speed".  This benchmark compares the evaluated
protocol (assumed speed = reported speed) against variants that cap the
assumed speed at a fraction of each link's speed limit, on the city scenario
where the speed differences between arterials and residential streets are
largest.
"""

from repro.experiments.ablations import speed_limit_prediction_ablation
from repro.experiments.report import format_table
from repro.mobility.scenarios import ScenarioName

from conftest import run_once


def test_speed_limit_prediction(benchmark, scale):
    rows = run_once(
        benchmark,
        speed_limit_prediction_ablation,
        scenario_name=ScenarioName.CITY,
        factors=(None, 1.2, 1.0, 0.9),
        accuracy=100.0,
        scale=min(scale, 0.5),
    )
    print()
    print(format_table(rows, title="A5 — speed-limit-aware prediction (city, us=100 m)"))
    rates = {row["speed_limit_factor"]: row["updates_per_hour"] for row in rows}
    errors = {row["speed_limit_factor"]: row["max_error_m"] for row in rows}
    # The extension must not break the accuracy guarantee...
    assert all(e <= 100.0 + 60.0 for e in errors.values())
    # ...and a moderate cap must not be dramatically worse than the paper's
    # protocol (it mainly changes behaviour right after speed changes).
    assert rates[1.0] <= rates["none (paper)"] * 1.3
