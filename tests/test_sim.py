"""Unit tests for the simulation engine, metrics, config and sweep."""

import numpy as np
import pytest

from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.mapbased import MapBasedProtocol
from repro.protocols.reporting import DistanceBasedReporting
from repro.service.channel import MessageChannel
from repro.sim.config import PROTOCOL_IDS, SimulationConfig
from repro.sim.engine import ProtocolSimulation, run_simulation
from repro.sim.metrics import AccuracyMetrics, SimulationResult
from repro.sim.sweep import run_accuracy_sweep, run_config_sweep
from repro.traces.trace import Trace


class TestAccuracyMetrics:
    def test_empty_metrics(self):
        metrics = AccuracyMetrics()
        assert metrics.count == 0
        assert metrics.mean_error == 0.0
        assert metrics.rms_error == 0.0
        assert metrics.max_error == 0.0
        assert metrics.percentile(95) == 0.0
        assert metrics.violation_fraction == 0.0

    def test_statistics(self):
        metrics = AccuracyMetrics()
        for error in (1.0, 2.0, 3.0, 4.0):
            metrics.record(error)
        assert metrics.count == 4
        assert metrics.mean_error == pytest.approx(2.5)
        assert metrics.rms_error == pytest.approx(np.sqrt(30.0 / 4.0))
        assert metrics.max_error == 4.0
        assert metrics.percentile(50) == pytest.approx(2.5)

    def test_violations(self):
        metrics = AccuracyMetrics()
        metrics.set_bound(2.5)
        for error in (1.0, 2.0, 3.0, 4.0):
            metrics.record(error)
        assert metrics.violation_fraction == pytest.approx(0.5)

    def test_as_dict_keys(self):
        metrics = AccuracyMetrics()
        metrics.record(1.0)
        d = metrics.as_dict()
        assert {"samples", "mean_error_m", "rms_error_m", "p95_error_m", "max_error_m"} <= set(d)


class TestSimulationResult:
    def test_updates_per_hour(self):
        result = SimulationResult(
            protocol_name="x", accuracy=100.0, duration_h=2.0, updates=50,
            bytes_sent=1000, metrics=AccuracyMetrics(),
        )
        assert result.updates_per_hour == 25.0
        assert result.bytes_per_hour == 500.0

    def test_zero_duration(self):
        result = SimulationResult(
            protocol_name="x", accuracy=100.0, duration_h=0.0, updates=5,
            bytes_sent=10, metrics=AccuracyMetrics(),
        )
        assert result.updates_per_hour == 0.0
        assert result.bytes_per_hour == 0.0

    def test_as_dict(self):
        result = SimulationResult(
            protocol_name="x", accuracy=100.0, duration_h=1.0, updates=5,
            bytes_sent=10, metrics=AccuracyMetrics(),
        )
        d = result.as_dict()
        assert d["protocol"] == "x"
        assert d["updates"] == 5


class TestProtocolSimulation:
    def test_mismatched_lengths_rejected(self, straight_trace):
        other = Trace(straight_trace.times[:-1], straight_trace.positions[:-1])
        with pytest.raises(ValueError):
            ProtocolSimulation(
                protocol=LinearPredictionProtocol(accuracy=100.0),
                sensor_trace=straight_trace,
                truth_trace=other,
            ).run()

    def test_mismatched_times_rejected(self, straight_trace):
        other = straight_trace.shifted(time_offset=10.0)
        with pytest.raises(ValueError):
            ProtocolSimulation(
                protocol=LinearPredictionProtocol(accuracy=100.0),
                sensor_trace=straight_trace,
                truth_trace=other,
            ).run()

    def test_counts_and_reasons(self, l_shaped_trace):
        result = run_simulation(
            DistanceBasedReporting(accuracy=100.0), l_shaped_trace
        )
        assert result.updates == sum(result.update_reasons.values())
        assert result.duration_h == pytest.approx(100.0 / 3600.0)
        assert result.metrics.count == len(l_shaped_trace)

    def test_initial_update_can_be_excluded(self, straight_trace):
        counted = ProtocolSimulation(
            protocol=DistanceBasedReporting(accuracy=100.0),
            sensor_trace=straight_trace,
            count_initial_update=True,
        ).run()
        excluded = ProtocolSimulation(
            protocol=DistanceBasedReporting(accuracy=100.0),
            sensor_trace=straight_trace,
            count_initial_update=False,
        ).run()
        assert counted.updates == excluded.updates + 1

    def test_truth_trace_used_for_error(self, straight_trace):
        # Sensor reports a constant 30 m offset; the error against the truth
        # includes that offset even though the protocol never sees it.
        sensor = straight_trace.shifted(position_offset=(0.0, 30.0))
        result = run_simulation(
            DistanceBasedReporting(accuracy=100.0), sensor, truth_trace=straight_trace
        )
        assert result.metrics.mean_error >= 25.0

    def test_channel_latency_increases_error(self, l_shaped_trace):
        instant = run_simulation(
            LinearPredictionProtocol(accuracy=50.0, estimation_window=2), l_shaped_trace
        )
        delayed = run_simulation(
            LinearPredictionProtocol(accuracy=50.0, estimation_window=2),
            l_shaped_trace,
            channel=MessageChannel(latency=5.0),
        )
        assert delayed.metrics.max_error >= instant.metrics.max_error

    def test_matcher_stats_for_map_protocol(self, straight_map, straight_trace):
        result = run_simulation(
            MapBasedProtocol(accuracy=100.0, roadmap=straight_map), straight_trace
        )
        assert "forward_tracks" in result.matcher_stats


class TestSimulationConfig:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(protocol_id="teleportation", accuracy=100.0)

    def test_invalid_accuracy(self):
        with pytest.raises(ValueError):
            SimulationConfig(protocol_id="linear", accuracy=0.0)

    def test_roundtrip(self):
        config = SimulationConfig(protocol_id="map", accuracy=150.0, matching_tolerance=25.0)
        rebuilt = SimulationConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_build_all_protocols(self, tiny_freeway_scenario):
        from repro.roadmap.probability import TurnProbabilityTable

        table = TurnProbabilityTable(tiny_freeway_scenario.roadmap)
        table.record_route(tiny_freeway_scenario.route)
        for protocol_id in PROTOCOL_IDS:
            config = SimulationConfig(protocol_id=protocol_id, accuracy=100.0)
            protocol = config.build_protocol(
                tiny_freeway_scenario, turn_probabilities=table
            )
            assert protocol.accuracy == 100.0

    def test_map_probabilistic_requires_table(self, tiny_freeway_scenario):
        config = SimulationConfig(protocol_id="map_probabilistic", accuracy=100.0)
        with pytest.raises(ValueError):
            config.build_protocol(tiny_freeway_scenario)

    def test_scenario_defaults_used(self, tiny_freeway_scenario):
        config = SimulationConfig(protocol_id="linear", accuracy=100.0)
        protocol = config.build_protocol(tiny_freeway_scenario)
        assert protocol.estimator.window == tiny_freeway_scenario.estimation_window
        assert protocol.sensor_uncertainty == tiny_freeway_scenario.sensor_sigma

    def test_time_protocol_extra_interval(self, tiny_freeway_scenario):
        config = SimulationConfig(
            protocol_id="time", accuracy=100.0, extra={"interval": 7.0}
        )
        protocol = config.build_protocol(tiny_freeway_scenario)
        assert protocol.interval == 7.0


class TestSweep:
    def test_sweep_uses_scenario_accuracies(self, tiny_freeway_scenario):
        points = run_accuracy_sweep(
            tiny_freeway_scenario,
            lambda us: DistanceBasedReporting(accuracy=us),
            accuracies=[50.0, 100.0, 200.0],
        )
        assert [p.accuracy for p in points] == [50.0, 100.0, 200.0]
        # Update counts decrease (weakly) with growing accuracy threshold.
        rates = [p.updates_per_hour for p in points]
        assert rates[0] >= rates[1] >= rates[2]

    def test_config_sweep(self, tiny_freeway_scenario):
        points = run_config_sweep(
            tiny_freeway_scenario, "linear", accuracies=[100.0, 300.0]
        )
        assert len(points) == 2
        assert points[0].result.protocol_name.startswith("linear")
