"""Ingest pipeline benchmark: parse / compact / cache timings + contraction.

The real-map ingestion pipeline (PR: ``src/repro/ingest/``) promises two
things beyond correctness:

1. **The compiled-map cache pays for itself** — loading a cached map is
   much cheaper than re-running parse + conditioning.
2. **Degree-2 contraction makes imported maps fast without changing any
   result** — routing (and map matching) on the contracted graph beats the
   raw bead-chain graph by at least
   :data:`_REQUIRED_ROUTING_SPEEDUP`, while the map-based protocol's
   metrics are *identical*: exactly the same update decisions (counts,
   bytes, reasons — integer-exact) and a byte-identical golden-metrics
   payload (floats rounded to the golden suite's 1e-6 precision; the raw
   aggregates differ only by float summation order, well below nanometres).

Everything is recorded in ``BENCH_ingest.json`` at the repository root.
Size knobs for quick local runs: ``REPRO_BENCH_INGEST_ROWS`` /
``_COLS`` / ``_CHAIN_STEP`` / ``_ROUTES``; ``REPRO_BENCH_INGEST_MIN_SPEEDUP``
lowers the *asserted* routing-speedup floor for noisy CI runners (the 2x
target is still recorded).
"""

from __future__ import annotations

import json
import os
import platform
import random
import tempfile
import time
from pathlib import Path

import networkx as nx

from repro.ingest import compile_osm, import_map, synthetic_town_xml, write_fixture_xml
from repro.mapmatching.matcher import IncrementalMapMatcher, MatcherConfig
from repro.mobility.kinematics import DriverProfile
from repro.mobility.vehicle import VehicleSimulator
from repro.protocols.mapbased import MapBasedConfig, MapBasedProtocol
from repro.roadmap.routing import RoutePlanner
from repro.sim.engine import ProtocolSimulation
from repro.traces.noise import GaussMarkovNoise

from conftest import run_once

_RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_ingest.json")

#: Contraction must make shortest-path routing at least this much faster.
_REQUIRED_ROUTING_SPEEDUP = 2.0

#: Loading a cached compiled map must beat re-running parse + conditioning
#: by at least this factor.  Raised from the pre-lazy-index 1.5x: the
#: spatial index is no longer built eagerly on cache load (it appears on
#: the first spatial query instead), which removed the dominant term of
#: ``cache_load_seconds``.
_REQUIRED_CACHE_SPEEDUP = 3.0


def _env_int(name, default):
    return int(os.environ.get(name, default))


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_INGEST_MIN_SPEEDUP", _REQUIRED_ROUTING_SPEEDUP))


def _min_cache_speedup() -> float:
    return float(
        os.environ.get("REPRO_BENCH_INGEST_MIN_CACHE_SPEEDUP", _REQUIRED_CACHE_SPEEDUP)
    )


def _golden_row(result) -> dict:
    """The golden-metrics payload of one run (same fields/rounding as
    tests/test_golden_metrics.py)."""
    metrics = result.metrics

    def r6(value):
        return round(float(value), 6)

    return {
        "updates": int(result.updates),
        "updates_per_hour": r6(result.updates_per_hour),
        "bytes_sent": int(result.bytes_sent),
        "samples": int(metrics.count),
        "mean_error_m": r6(metrics.mean_error),
        "rms_error_m": r6(metrics.rms_error),
        "p95_error_m": r6(metrics.percentile(95.0)),
        "max_error_m": r6(metrics.max_error),
        "update_reasons": {k: int(v) for k, v in sorted(result.update_reasons.items())},
    }


def _time_routing(roadmap, pairs) -> float:
    planner = RoutePlanner(roadmap, weight="length")
    t0 = time.perf_counter()
    for a, b in pairs:
        try:
            planner.shortest_route(a, b)
        except nx.NetworkXNoPath:
            pass  # same pairs on both graphs, so both skip it
    return time.perf_counter() - t0


def _time_matching(roadmap, positions, headings) -> float:
    matcher = IncrementalMapMatcher(
        roadmap, MatcherConfig(tolerance=30.0, advance_at_link_end=True)
    )
    t0 = time.perf_counter()
    for position, heading in zip(positions, headings):
        matcher.update(position, heading=heading)
    return time.perf_counter() - t0


def run_ingest_bench(
    rows: int = 10,
    cols: int = 10,
    chain_step_m: float = 40.0,
    n_routes: int = 60,
    seed: int = 7,
):
    """Run the full benchmark and return the record."""
    params = dict(rows=rows, cols=cols, spacing_m=200.0, chain_step_m=chain_step_m)
    xml = synthetic_town_xml(seed=seed, **params)

    # ------------------------------------------------------------------ #
    # pipeline + cache timings
    # ------------------------------------------------------------------ #
    compact = compile_osm(xml, source_name="bench-town")
    raw = compile_osm(xml, contract=False, source_name="bench-town")
    with tempfile.TemporaryDirectory() as tmp:
        extract = Path(tmp) / "bench_town.osm"
        write_fixture_xml(extract, seed=seed, **params)
        cold = import_map(extract, cache_dir=Path(tmp) / "cache")
        warm = import_map(extract, cache_dir=Path(tmp) / "cache")
    assert not cold.cached and warm.cached
    cache_speedup = (
        (cold.timings["parse_seconds"] + cold.timings["compile_seconds"])
        / warm.timings["cache_load_seconds"]
        if warm.timings["cache_load_seconds"] > 0
        else None
    )

    # ------------------------------------------------------------------ #
    # routing: contracted vs raw graph
    # ------------------------------------------------------------------ #
    junctions = sorted(compact.roadmap.intersections)
    rng = random.Random(seed)
    pairs = [tuple(rng.sample(junctions, 2)) for _ in range(n_routes)]
    raw_routing = _time_routing(raw.roadmap, pairs)
    compact_routing = _time_routing(compact.roadmap, pairs)
    routing_speedup = raw_routing / compact_routing if compact_routing > 0 else None

    # ------------------------------------------------------------------ #
    # a drive across the imported town (same trace for all comparisons)
    # ------------------------------------------------------------------ #
    route_rng = random.Random(seed + 1)
    route = RoutePlanner(compact.roadmap).random_route(
        min_length=18_000.0, rng=route_rng, straight_bias=0.7
    )
    journey = VehicleSimulator(route, DriverProfile(), rng=route_rng).run(name="bench")
    noise = GaussMarkovNoise(sigma=2.5, correlation_time=60.0, seed=seed + 2)
    sensor = noise.apply(journey.trace)
    velocities = (sensor.positions[1:] - sensor.positions[:-1])
    headings = [None] + [v for v in velocities]

    raw_matching = _time_matching(raw.roadmap, sensor.positions, headings)
    compact_matching = _time_matching(compact.roadmap, sensor.positions, headings)
    matching_speedup = raw_matching / compact_matching if compact_matching > 0 else None

    # ------------------------------------------------------------------ #
    # protocol metrics: identical on raw and contracted graphs
    # ------------------------------------------------------------------ #
    def protocol_payload(roadmap):
        protocol = MapBasedProtocol(
            accuracy=100.0,
            roadmap=roadmap,
            sensor_uncertainty=noise.typical_error,
            estimation_window=4,
            config=MapBasedConfig(advance_at_link_end=True),
        )
        result = ProtocolSimulation(
            protocol=protocol, sensor_trace=sensor, truth_trace=journey.trace
        ).run()
        return _golden_row(result)

    on_compact = protocol_payload(compact.roadmap)
    on_raw = protocol_payload(raw.roadmap)
    decisions_identical = (
        on_compact["updates"] == on_raw["updates"]
        and on_compact["bytes_sent"] == on_raw["bytes_sent"]
        and on_compact["update_reasons"] == on_raw["update_reasons"]
    )
    payloads_identical = json.dumps(on_compact, sort_keys=True) == json.dumps(
        on_raw, sort_keys=True
    )

    return {
        "benchmark": "ingest_pipeline",
        "town": {"rows": rows, "cols": cols, "chain_step_m": chain_step_m, "seed": seed},
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "parse": compact.parse_stats,
        "conditioning": compact.report.as_dict(),
        "raw_graph": {
            "intersections": raw.roadmap.num_intersections(),
            "links": raw.roadmap.num_links(),
        },
        "timings": {
            "parse_seconds": round(compact.timings["parse_seconds"], 4),
            "compact_seconds": round(compact.timings["compile_seconds"], 4),
            "raw_compile_seconds": round(raw.timings["compile_seconds"], 4),
            "cache_write_seconds": round(cold.timings["cache_write_seconds"], 4),
            "cache_load_seconds": round(warm.timings["cache_load_seconds"], 4),
        },
        "cache_speedup": round(cache_speedup, 2) if cache_speedup else None,
        "required_cache_speedup": _REQUIRED_CACHE_SPEEDUP,
        "routing": {
            "routes": n_routes,
            "raw_seconds": round(raw_routing, 4),
            "contracted_seconds": round(compact_routing, 4),
            "speedup": round(routing_speedup, 3) if routing_speedup else None,
            "required_speedup": _REQUIRED_ROUTING_SPEEDUP,
        },
        "matching": {
            "sightings": len(sensor),
            "raw_seconds": round(raw_matching, 4),
            "contracted_seconds": round(compact_matching, 4),
            "speedup": round(matching_speedup, 3) if matching_speedup else None,
        },
        "protocol": {
            "trace_km": round(journey.trace.path_length() / 1000.0, 2),
            "on_contracted": on_compact,
            "on_raw": on_raw,
            "decisions_identical": decisions_identical,
            "metrics_identical": payloads_identical,
        },
    }


def _print_record(record):
    slim = {k: v for k, v in record.items() if k not in ("machine", "parse")}
    print(json.dumps(slim, indent=2))


def _write_record(record):
    with open(_RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.normpath(_RESULT_PATH)}")


def _assert_record(record):
    assert record["protocol"]["decisions_identical"], (
        "contraction changed the protocol's update decisions: "
        f"{record['protocol']['on_contracted']} vs {record['protocol']['on_raw']}"
    )
    assert record["protocol"]["metrics_identical"], (
        "contraction shifted the protocol metrics beyond the golden 1e-6 precision"
    )
    floor = _min_speedup()
    assert record["routing"]["speedup"] >= floor, (
        f"routing speedup {record['routing']['speedup']}x is below the {floor}x floor"
    )
    cache_floor = _min_cache_speedup()
    assert record["cache_speedup"] and record["cache_speedup"] >= cache_floor, (
        f"cache speedup {record['cache_speedup']}x is below the {cache_floor}x floor"
    )


def _bench_kwargs():
    return dict(
        rows=_env_int("REPRO_BENCH_INGEST_ROWS", 10),
        cols=_env_int("REPRO_BENCH_INGEST_COLS", 10),
        chain_step_m=float(os.environ.get("REPRO_BENCH_INGEST_CHAIN_STEP", "40")),
        n_routes=_env_int("REPRO_BENCH_INGEST_ROUTES", 60),
    )


def test_ingest_pipeline(benchmark):
    record = run_once(benchmark, run_ingest_bench, **_bench_kwargs())
    print()
    _print_record(record)
    _write_record(record)
    _assert_record(record)


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke entry point
    record = run_ingest_bench(**_bench_kwargs())
    _print_record(record)
    _write_record(record)
    _assert_record(record)
