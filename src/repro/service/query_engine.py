"""Incremental spatial index over predicted object positions.

The seed's query helpers (:mod:`repro.service.queries`) answer every range
or nearest-object query by scanning all tracked objects — O(fleet) per
query.  :class:`QueryEngine` instead maintains a
:class:`~repro.spatial.grid.GridIndex` over the objects' predicted
positions, so query cost scales with the result size.

The engine is *incremental*: each :meth:`sync` diffs the new predicted
positions against the previous snapshot and only re-registers objects whose
position moved into a different index cell.  Items are stored with their
covering cell as bounding box (always current by construction — an item is
re-registered exactly when its cell changes) and a distance callback that
reads the object's *exact* current position, so every query refines its
cell-level candidates to exact answers:

* :meth:`range_query` — objects inside a bounding box,
* :meth:`k_nearest` — the k closest objects, deterministically tie-broken
  by ``(distance, object_id)``,
* :meth:`within_radius` — objects inside a circle (geofences).

All answers are bit-identical to the linear scans in
:mod:`repro.service.queries` (same distance arithmetic, same ordering),
which the test-suite asserts.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.vec import Vec2, as_vec, distance
from repro.spatial.grid import GridIndex
from repro.spatial.index import IndexedItem

#: Below this many objects the incremental per-object registration is
#: cheaper than staging a bulk rebuild (array round-trips have a fixed
#: cost); above it the first sync of a cold engine goes through
#: :meth:`GridIndex.rebuild` in one pass.
_BULK_SYNC_THRESHOLD = 256

_logger = logging.getLogger(__name__)


class QueryEngine:
    """Index-backed query answering over one shard's predicted positions.

    Parameters
    ----------
    cell_size:
        Edge length of an index cell in metres.  Cells somewhat smaller than
        typical query extents give the best pruning; 500 m works well across
        the scenario library.
    """

    def __init__(self, cell_size: float = 500.0):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._index: GridIndex[str] = GridIndex(cell_size=cell_size)
        self._positions: Dict[str, np.ndarray] = {}
        self._cells: Dict[str, Tuple[int, int]] = {}
        #: Simulation time of the last :meth:`sync` (``None`` before the first).
        self.synced_time: Optional[float] = None
        #: Cumulative sync statistics (diagnostics / load counters).
        self.syncs = 0
        self.moves = 0
        self.drops = 0

    def __len__(self) -> int:
        return len(self._positions)

    def object_ids(self) -> List[str]:
        """Ids currently held by the engine (insertion order)."""
        return list(self._positions)

    def position_of(self, object_id: str) -> np.ndarray:
        """The exact position of *object_id* as of the last sync."""
        return self._positions[object_id]

    # ------------------------------------------------------------------ #
    # incremental maintenance
    # ------------------------------------------------------------------ #
    def sync(self, positions: Mapping[str, np.ndarray], time: float) -> int:
        """Bring the index up to date with *positions* at *time*.

        Objects absent from *positions* are dropped; objects whose position
        moved into a different cell are re-registered; objects that stayed
        in their cell only get their exact position refreshed (their index
        entry — cell bounds plus position-reading distance callback — is
        still valid).  Returns the number of re-registered objects.
        """
        moved = 0
        if not self._cells and len(positions) >= _BULK_SYNC_THRESHOLD:
            return self._bulk_sync(positions, time)
        for object_id in [oid for oid in self._cells if oid not in positions]:
            self._index.remove(object_id)
            del self._cells[object_id]
            del self._positions[object_id]
            self.drops += 1
        for object_id, position in positions.items():
            self._positions[object_id] = position
            cell = self._cell_of(position)
            if self._cells.get(object_id) == cell:
                continue
            if object_id in self._cells:
                self._index.remove(object_id)
            self._index.insert(
                IndexedItem(
                    key=object_id,
                    bounds=self._cell_box(cell),
                    distance=self._distance_to(object_id),
                )
            )
            self._cells[object_id] = cell
            moved += 1
        self.synced_time = float(time)
        self.syncs += 1
        self.moves += moved
        return moved

    def _bulk_sync(self, positions: Mapping[str, np.ndarray], time: float) -> int:
        """First big sync: register every object through one index rebuild.

        Equivalent to the incremental loop above for an empty engine (same
        registration order, hence the same index serials and query answers,
        asserted by the test-suite), but it computes every object's cell in
        one vectorised pass and hands the whole item list to
        :meth:`~repro.spatial.grid.GridIndex.rebuild` instead of paying the
        per-item ``insert`` bookkeeping N times — the difference between a
        sub-second and a multi-second cold start at mega-fleet sizes.
        """
        object_ids = list(positions)
        stacked = np.array([positions[oid] for oid in object_ids], dtype=float)
        cell_rows = np.floor(stacked / self.cell_size).astype(np.int64).tolist()
        items = []
        for object_id, (cx, cy) in zip(object_ids, cell_rows):
            cell = (cx, cy)
            self._positions[object_id] = positions[object_id]
            self._cells[object_id] = cell
            items.append(
                IndexedItem(
                    key=object_id,
                    bounds=self._cell_box(cell),
                    distance=self._distance_to(object_id),
                )
            )
        self._index.rebuild(items)
        moved = len(items)
        _logger.debug(
            "bulk sync: rebuilt index with %d objects at t=%g", moved, time
        )
        self.synced_time = float(time)
        self.syncs += 1
        self.moves += moved
        return moved

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def candidates_in_box(self, box: BoundingBox) -> List[str]:
        """Ids whose index *cell* intersects *box* (cheap superset).

        Callers that refine per object (e.g. accuracy-margin range queries)
        use this; everyone else wants :meth:`range_query`.
        """
        return [item.key for item in self._index.query_bbox(box)]

    def range_query(self, box: BoundingBox) -> List[str]:
        """Ids whose exact position lies inside *box*, sorted."""
        positions = self._positions
        return sorted(
            item.key
            for item in self._index.query_bbox(box)
            if box.contains_point(positions[item.key])
        )

    def k_nearest(self, point: Vec2, k: int) -> List[Tuple[str, float]]:
        """The *k* objects closest to *point*, tie-broken by ``(d, id)``.

        The underlying index resolves ties arbitrarily at the k-th place, so
        when the candidate list is full the engine re-fetches everything
        within the k-th distance and re-sorts — the answer is independent of
        insertion order.
        """
        if k <= 0 or not self._positions:
            return []
        p = as_vec(point)
        top = self._index.k_nearest(p, k)
        if len(top) == k:
            boundary = top[-1][1]
            items = self._index.query_radius(p, boundary)
        else:
            items = [item for item, _ in top]
        scored = sorted(
            ((item.key, distance(self._positions[item.key], p)) for item in items),
            key=lambda pair: (pair[1], pair[0]),
        )
        return scored[:k]

    def within_radius(self, point: Vec2, radius: float) -> List[Tuple[str, float]]:
        """Objects within *radius* of *point* (geofence), sorted by ``(d, id)``."""
        if radius < 0 or not self._positions:
            return []
        p = as_vec(point)
        positions = self._positions
        scored = []
        for item in self._index.query_bbox(BoundingBox.around(p, radius)):
            d = distance(positions[item.key], p)
            if d <= radius:
                scored.append((item.key, d))
        scored.sort(key=lambda pair: (pair[1], pair[0]))
        return scored

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _cell_of(self, position: np.ndarray) -> Tuple[int, int]:
        size = self.cell_size
        return (int(np.floor(position[0] / size)), int(np.floor(position[1] / size)))

    def _cell_box(self, cell: Tuple[int, int]) -> BoundingBox:
        size = self.cell_size
        return BoundingBox(
            cell[0] * size, cell[1] * size, (cell[0] + 1) * size, (cell[1] + 1) * size
        )

    def _distance_to(self, object_id: str):
        positions = self._positions
        return lambda q, _oid=object_id: distance(positions[_oid], q)
