"""Unit tests for repro.protocols.base and repro.protocols.prediction."""

import numpy as np
import pytest

from repro.protocols.base import ObjectState, UpdateMessage, UpdateReason
from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.prediction import (
    LinearPrediction,
    MainRoadTurnPolicy,
    MapPrediction,
    ProbabilisticTurnPolicy,
    QuadraticPrediction,
    RoutePrediction,
    SmallestAngleTurnPolicy,
    StaticPrediction,
)
from repro.roadmap.elements import RoadClass
from repro.roadmap.generators import freeway_map, t_junction_map
from repro.roadmap.probability import TurnProbabilityTable
from repro.roadmap.routing import RoutePlanner
from repro.mobility.scenarios import corridor_route


def make_state(time=0.0, position=(0.0, 0.0), velocity=(10.0, 0.0), **kwargs):
    speed = float(np.hypot(*velocity))
    return ObjectState(time=time, position=position, velocity=velocity, speed=speed, **kwargs)


class TestObjectState:
    def test_coercion_and_direction(self):
        state = make_state(velocity=(3.0, 4.0))
        assert state.speed == pytest.approx(5.0)
        np.testing.assert_allclose(state.direction, [0.6, 0.8])

    def test_zero_speed_direction(self):
        state = ObjectState(time=0.0, position=(0, 0), velocity=(0, 0), speed=0.0)
        assert state.direction.tolist() == [0.0, 0.0]

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            ObjectState(time=0.0, position=(0, 0), velocity=(0, 0), speed=-1.0)

    def test_with_link(self):
        state = make_state()
        linked = state.with_link(7, 123.0)
        assert linked.link_id == 7
        assert linked.link_offset == 123.0
        assert state.link_id is None  # original unchanged


class TestUpdateMessage:
    def test_size_without_link(self):
        msg = UpdateMessage(sequence=0, state=make_state(), reason=UpdateReason.INITIAL)
        assert msg.size_bytes == 32

    def test_size_with_link(self):
        msg = UpdateMessage(
            sequence=0, state=make_state(link_id=3, link_offset=5.0), reason=UpdateReason.INITIAL
        )
        assert msg.size_bytes == 36


class TestBasicPredictions:
    def test_static(self):
        state = make_state(position=(5.0, 6.0))
        np.testing.assert_allclose(StaticPrediction().predict(state, 100.0), [5.0, 6.0])

    def test_linear(self):
        state = make_state(time=10.0, position=(0.0, 0.0), velocity=(10.0, -5.0))
        np.testing.assert_allclose(LinearPrediction().predict(state, 14.0), [40.0, -20.0])

    def test_quadratic_without_acceleration_is_linear(self):
        state = make_state(time=0.0, velocity=(10.0, 0.0))
        np.testing.assert_allclose(QuadraticPrediction().predict(state, 2.0), [20.0, 0.0])

    def test_quadratic_with_acceleration(self):
        state = make_state(time=0.0, velocity=(10.0, 0.0), acceleration=(2.0, 0.0))
        np.testing.assert_allclose(QuadraticPrediction().predict(state, 3.0), [39.0, 0.0])

    def test_quadratic_horizon_freezes_acceleration(self):
        state = make_state(time=0.0, velocity=(10.0, 0.0), acceleration=(2.0, 0.0))
        pred = QuadraticPrediction(max_horizon=5.0)
        at_horizon = pred.predict(state, 5.0)
        far_beyond = pred.predict(state, 50.0)
        np.testing.assert_allclose(at_horizon, far_beyond)


class TestTurnPolicies:
    @pytest.fixture()
    def junction(self):
        roadmap = t_junction_map(arm_length_m=500.0)
        center, _ = roadmap.nearest_intersection((0.0, 0.0))
        west, _ = roadmap.nearest_intersection((-500.0, 0.0))
        incoming = next(
            l for l in roadmap.outgoing_links(west.id) if l.to_node == center.id
        )
        return roadmap, incoming

    def test_smallest_angle_goes_straight(self, junction):
        roadmap, incoming = junction
        chosen = SmallestAngleTurnPolicy().choose(roadmap, incoming)
        assert chosen is not None
        # Continuing east (straight) rather than turning north.
        assert chosen.end_position[0] > 100.0

    def test_smallest_angle_dead_end_returns_none(self, junction):
        roadmap, incoming = junction
        east_link = SmallestAngleTurnPolicy().choose(roadmap, incoming)
        assert SmallestAngleTurnPolicy().choose(roadmap, east_link) is None

    def test_main_road_policy_prefers_higher_class(self):
        # Build a junction where going straight is a residential street but
        # turning right is a primary road.
        from repro.roadmap.builder import RoadMapBuilder

        builder = RoadMapBuilder()
        west = builder.add_intersection((-500.0, 0.0)).id
        center = builder.add_intersection((0.0, 0.0)).id
        east = builder.add_intersection((500.0, 0.0)).id
        south = builder.add_intersection((0.0, -500.0)).id
        builder.add_two_way_link(west, center, road_class=RoadClass.PRIMARY)
        builder.add_two_way_link(center, east, road_class=RoadClass.RESIDENTIAL)
        builder.add_two_way_link(center, south, road_class=RoadClass.PRIMARY)
        roadmap = builder.build()
        incoming = next(
            l for l in roadmap.outgoing_links(west) if l.to_node == center
        )
        straight = SmallestAngleTurnPolicy().choose(roadmap, incoming)
        main = MainRoadTurnPolicy().choose(roadmap, incoming)
        assert straight.to_node == east
        assert main.to_node == south

    def test_probabilistic_policy_follows_counts(self, junction):
        roadmap, incoming = junction
        north_link = next(
            l for l in roadmap.successors(incoming) if l.end_position[1] > 100.0
        )
        table = TurnProbabilityTable(roadmap)
        table.record_transition(incoming.id, north_link.id, 10.0)
        chosen = ProbabilisticTurnPolicy(table).choose(roadmap, incoming)
        assert chosen.id == north_link.id

    def test_probabilistic_policy_falls_back_to_geometry(self, junction):
        roadmap, incoming = junction
        table = TurnProbabilityTable(roadmap)  # no observations at all
        chosen = ProbabilisticTurnPolicy(table).choose(roadmap, incoming)
        straight = SmallestAngleTurnPolicy().choose(roadmap, incoming)
        assert chosen.id == straight.id


class TestMapPrediction:
    @pytest.fixture(scope="class")
    def freeway(self):
        roadmap = freeway_map(length_km=20.0, seed=0)
        route = corridor_route(roadmap, RoadClass.MOTORWAY)
        return roadmap, route

    def test_prediction_advances_along_link(self, freeway):
        roadmap, route = freeway
        link = route.links[0]
        state = make_state(velocity=(0.0, 0.0)).with_link(link.id, 0.0)
        state = ObjectState(
            time=0.0, position=link.point_at(0.0), velocity=link.direction_at(0.0) * 25.0,
            speed=25.0, link_id=link.id, link_offset=0.0,
        )
        prediction = MapPrediction(roadmap)
        predicted = prediction.predict(state, 10.0)
        np.testing.assert_allclose(predicted, link.point_at(250.0), atol=1e-6)

    def test_prediction_crosses_intersections(self, freeway):
        roadmap, route = freeway
        link = route.links[0]
        speed = 30.0
        state = ObjectState(
            time=0.0, position=link.point_at(0.0), velocity=link.direction_at(0.0) * speed,
            speed=speed, link_id=link.id, link_offset=0.0,
        )
        prediction = MapPrediction(roadmap)
        horizon = (link.length + 500.0) / speed
        predicted = prediction.predict(state, horizon)
        # The predicted point lies on the route (the smallest-angle policy
        # keeps following the motorway), about 500 m into the second link.
        _, offset, dist = route.project(predicted)
        assert dist < 1.0
        assert offset == pytest.approx(link.length + 500.0, rel=0.01)

    def test_prediction_follows_curves_better_than_linear(self, freeway):
        roadmap, route = freeway
        link = route.links[0]
        speed = 30.0
        state = ObjectState(
            time=0.0, position=link.point_at(0.0), velocity=link.direction_at(0.0) * speed,
            speed=speed, link_id=link.id, link_offset=0.0,
        )
        horizon = link.length / speed  # far enough for the road to curve
        truth = link.point_at(link.length)
        map_error = np.hypot(*(MapPrediction(roadmap).predict(state, horizon) - truth))
        linear_error = np.hypot(*(LinearPrediction().predict(state, horizon) - truth))
        assert map_error < linear_error

    def test_fallback_to_linear_without_link(self, freeway):
        roadmap, _ = freeway
        state = make_state(velocity=(12.0, 0.0))
        predicted = MapPrediction(roadmap).predict(state, 10.0)
        np.testing.assert_allclose(predicted, [120.0, 0.0])

    def test_dead_end_stops_at_link_end(self):
        roadmap = t_junction_map(arm_length_m=400.0)
        center, _ = roadmap.nearest_intersection((0.0, 0.0))
        east, _ = roadmap.nearest_intersection((400.0, 0.0))
        to_east = next(l for l in roadmap.outgoing_links(center.id) if l.to_node == east.id)
        state = ObjectState(
            time=0.0, position=to_east.point_at(0.0), velocity=(20.0, 0.0), speed=20.0,
            link_id=to_east.id, link_offset=0.0,
        )
        predicted = MapPrediction(roadmap).predict(state, 1000.0)
        np.testing.assert_allclose(predicted, to_east.point_at(to_east.length), atol=1e-6)

    def test_predict_link_diagnostic(self, freeway):
        roadmap, route = freeway
        link = route.links[0]
        state = ObjectState(
            time=0.0, position=link.point_at(0.0), velocity=link.direction_at(0.0) * 20.0,
            speed=20.0, link_id=link.id, link_offset=0.0,
        )
        link_id, offset = MapPrediction(roadmap).predict_link(state, 5.0)
        assert link_id == link.id
        assert offset == pytest.approx(100.0)

    def test_predict_link_without_link(self, freeway):
        roadmap, _ = freeway
        state = make_state()
        assert MapPrediction(roadmap).predict_link(state, 5.0) == (None, 0.0)


class TestRoutePrediction:
    def test_advances_along_route(self, straight_map):
        planner = RoutePlanner(straight_map)
        start, _ = straight_map.nearest_intersection((0.0, 0.0))
        end, _ = straight_map.nearest_intersection((2000.0, 0.0))
        route = planner.shortest_route(start.id, end.id)
        state = make_state(time=0.0, position=(100.0, 4.0), velocity=(15.0, 0.0))
        prediction = RoutePrediction(route)
        predicted = prediction.predict(state, 10.0)
        np.testing.assert_allclose(predicted, [250.0, 0.0], atol=1e-6)

    def test_clamps_at_route_end(self, straight_map):
        planner = RoutePlanner(straight_map)
        start, _ = straight_map.nearest_intersection((0.0, 0.0))
        end, _ = straight_map.nearest_intersection((2000.0, 0.0))
        route = planner.shortest_route(start.id, end.id)
        state = make_state(time=0.0, position=(1900.0, 0.0), velocity=(30.0, 0.0))
        predicted = RoutePrediction(route).predict(state, 1000.0)
        np.testing.assert_allclose(predicted, [2000.0, 0.0], atol=1e-6)


class TestUpdateProtocolMachinery:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LinearPredictionProtocol(accuracy=0.0)
        with pytest.raises(ValueError):
            LinearPredictionProtocol(accuracy=100.0, sensor_uncertainty=-1.0)

    def test_first_observation_triggers_initial_update(self):
        protocol = LinearPredictionProtocol(accuracy=100.0)
        message = protocol.observe(0.0, (0.0, 0.0))
        assert message is not None
        assert message.reason is UpdateReason.INITIAL
        assert protocol.updates_sent == 1

    def test_predicted_position_none_before_first_update(self):
        protocol = LinearPredictionProtocol(accuracy=100.0)
        assert protocol.predicted_position(0.0) is None
        assert protocol.deviation(0.0, (0.0, 0.0)) == float("inf")

    def test_bytes_accumulate(self):
        protocol = LinearPredictionProtocol(accuracy=10.0)
        protocol.observe(0.0, (0.0, 0.0))
        protocol.observe(1.0, (100.0, 0.0))
        assert protocol.bytes_sent >= 2 * 32

    def test_reset(self):
        protocol = LinearPredictionProtocol(accuracy=10.0)
        protocol.observe(0.0, (0.0, 0.0))
        protocol.reset()
        assert protocol.updates_sent == 0
        assert protocol.last_reported is None
