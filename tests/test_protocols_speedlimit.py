"""Unit tests for the speed-limit-aware map prediction (future-work extension)."""

import numpy as np
import pytest

from repro.protocols.base import ObjectState
from repro.protocols.mapbased import MapBasedConfig, MapBasedProtocol
from repro.protocols.prediction import MapPrediction
from repro.roadmap.builder import RoadMapBuilder
from repro.roadmap.elements import RoadClass
from repro.sim.engine import run_simulation
from repro.traces.trace import Trace


@pytest.fixture()
def fast_then_slow_map():
    """A straight road whose second half has a much lower speed limit."""
    builder = RoadMapBuilder()
    a = builder.add_intersection((0.0, 0.0)).id
    b = builder.add_intersection((1000.0, 0.0)).id
    c = builder.add_intersection((2000.0, 0.0)).id
    builder.add_two_way_link(a, b, road_class=RoadClass.PRIMARY, speed_limit=30.0)
    builder.add_two_way_link(b, c, road_class=RoadClass.RESIDENTIAL, speed_limit=10.0)
    return builder.build()


def first_link(roadmap, from_x, to_x):
    return next(
        l
        for l in roadmap.links.values()
        if l.start_position[0] == from_x and l.end_position[0] == to_x
    )


class TestSpeedLimitAwarePrediction:
    def test_invalid_factor(self, fast_then_slow_map):
        with pytest.raises(ValueError):
            MapPrediction(fast_then_slow_map, speed_limit_factor=0.0)

    def test_same_as_plain_prediction_below_limit(self, fast_then_slow_map):
        link = first_link(fast_then_slow_map, 0.0, 1000.0)
        state = ObjectState(
            time=0.0, position=link.point_at(0.0), velocity=(20.0, 0.0), speed=20.0,
            link_id=link.id, link_offset=0.0,
        )
        plain = MapPrediction(fast_then_slow_map)
        capped = MapPrediction(fast_then_slow_map, speed_limit_factor=1.0)
        # 20 m/s is below the 30 m/s limit of the first link: identical result.
        np.testing.assert_allclose(plain.predict(state, 30.0), capped.predict(state, 30.0))

    def test_capped_on_slow_link(self, fast_then_slow_map):
        link = first_link(fast_then_slow_map, 0.0, 1000.0)
        state = ObjectState(
            time=0.0, position=link.point_at(0.0), velocity=(25.0, 0.0), speed=25.0,
            link_id=link.id, link_offset=0.0,
        )
        capped = MapPrediction(fast_then_slow_map, speed_limit_factor=1.0)
        # 40 s at 25 m/s reaches the slow link after 1000 m (40 s at 25 m/s
        # covers the first link in 40 s exactly), so with the cap the object
        # does not advance onto the slow link at full speed.
        plain_position = MapPrediction(fast_then_slow_map).predict(state, 80.0)
        capped_position = capped.predict(state, 80.0)
        assert capped_position[0] < plain_position[0]
        # After 40 s on the first link, 40 s remain at 10 m/s -> 400 m into link 2.
        assert capped_position[0] == pytest.approx(1400.0, abs=1.0)

    def test_stationary_state_stays_put(self, fast_then_slow_map):
        link = first_link(fast_then_slow_map, 0.0, 1000.0)
        state = ObjectState(
            time=0.0, position=link.point_at(100.0), velocity=(0.0, 0.0), speed=0.0,
            link_id=link.id, link_offset=100.0,
        )
        capped = MapPrediction(fast_then_slow_map, speed_limit_factor=1.0)
        np.testing.assert_allclose(capped.predict(state, 60.0), link.point_at(100.0))


class TestSpeedLimitAwareProtocol:
    def _drive_trace(self):
        """20 m/s over the fast link, then 8 m/s over the slow one."""
        times = np.arange(0.0, 176.0)
        xs = np.where(times <= 50.0, times * 20.0, 1000.0 + (times - 50.0) * 8.0)
        return Trace(times, np.column_stack((xs, np.zeros_like(xs))))

    def test_accuracy_guarantee_still_holds(self, fast_then_slow_map):
        trace = self._drive_trace()
        protocol = MapBasedProtocol(
            accuracy=80.0, roadmap=fast_then_slow_map, estimation_window=2,
            config=MapBasedConfig(speed_limit_factor=1.0),
        )
        result = run_simulation(protocol, trace)
        assert result.metrics.max_error <= 80.0 + 20.0 + 1e-6

    def test_fewer_or_equal_updates_when_slowdown_is_predictable(self, fast_then_slow_map):
        trace = self._drive_trace()
        plain = MapBasedProtocol(
            accuracy=80.0, roadmap=fast_then_slow_map, estimation_window=2,
        )
        aware = MapBasedProtocol(
            accuracy=80.0, roadmap=fast_then_slow_map, estimation_window=2,
            config=MapBasedConfig(speed_limit_factor=1.0),
        )
        plain_result = run_simulation(plain, trace)
        aware_result = run_simulation(aware, trace)
        # The slowdown at the residential link is predictable from the map, so
        # the speed-limit-aware variant cannot need more updates on this trace.
        assert aware_result.updates <= plain_result.updates
