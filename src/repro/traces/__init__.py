"""GPS traces: containers, noise models, estimation and statistics.

A *trace* is a time-ordered sequence of position sightings, exactly what the
paper records from its Differential-GPS receiver once per second.  The
protocols never see the true position of the mobile object — they consume a
trace (possibly noisy) sample by sample, mirroring the paper's trace-driven
simulation.
"""

from repro.traces.trace import TraceSample, Trace
from repro.traces.noise import GpsNoiseModel, GaussianNoise, GaussMarkovNoise, NoNoise
from repro.traces.estimation import StateEstimator, estimate_velocity
from repro.traces.filters import MovingAverageFilter, AlphaBetaFilter
from repro.traces.stats import TraceStatistics, compute_statistics
from repro.traces.resample import resample_uniform, decimate
from repro.traces import io

__all__ = [
    "TraceSample",
    "Trace",
    "GpsNoiseModel",
    "GaussianNoise",
    "GaussMarkovNoise",
    "NoNoise",
    "StateEstimator",
    "estimate_velocity",
    "MovingAverageFilter",
    "AlphaBetaFilter",
    "TraceStatistics",
    "compute_statistics",
    "resample_uniform",
    "decimate",
    "io",
]
