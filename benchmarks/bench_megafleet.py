"""Mega-fleet scaling: the columnar engine against a 100k-object city.

The paper's experiments track single vehicles; a city-scale deployment
tracks a hundred thousand.  At that width the per-object fleet loop — one
protocol instance, one estimator deque, one server record per object —
spends its time on Python attribute access, so this benchmark exercises
the struct-of-arrays :class:`~repro.sim.columnar.ColumnarFleetEngine`
instead and records the scaling curve in ``BENCH_megafleet.json``:

* builds a synthetic homogeneous city fleet (seeded velocity random walk
  on a shared 1 Hz sampling grid, linear-prediction dead reckoning at a
  50 m accuracy threshold) **directly as arrays** at 1k / 10k / 100k
  objects,
* times one columnar run per size and records objects/s, lane-samples/s,
  the ``tracemalloc`` peak and the process peak RSS,
* asserts the 100k fleet runs **faster than real time**
  (``sim_seconds / wall_seconds > 1``) on one machine,
* asserts the columnar results are **bitwise identical** to the scalar
  :class:`~repro.sim.fleet.FleetSimulation` event kernel on a small
  subsample of the same fleet,
* asserts ``processes=4`` is **bitwise identical** to ``processes=1`` on
  the event kernel — per-object results, every error sample, channel
  counters (over a seeded lossy high-latency uplink) and the sharded
  service statistics — and
* measures the multi-process speedup (``processes=2`` vs ``1``) and
  records the parallel efficiency honestly; on a single-core container
  the sharded run mostly pays serialisation, so the asserted efficiency
  floor defaults to 0 and the number is informational.

Tunables for quick local runs / CI smoke: ``REPRO_BENCH_MF_SIZES``
(comma-separated fleet sizes, default ``1000,10000,100000``),
``REPRO_BENCH_MF_SAMPLES`` (sighting instants per lane, default 240),
``REPRO_BENCH_MF_MIN_REALTIME`` (asserted realtime factor at the largest
size, default 1.0), ``REPRO_BENCH_MF_PARALLEL_OBJECTS`` (fleet size of
the processes=2 timing, default 800) and ``REPRO_BENCH_MF_MIN_EFFICIENCY``
(asserted parallel-efficiency floor, default 0.0).
"""

from __future__ import annotations

import json
import os
import platform
import resource
import time
import tracemalloc

import numpy as np

from repro.protocols.linear import LinearPredictionProtocol
from repro.service.channel import MessageChannel
from repro.service.facade import LocationService
from repro.sim.columnar import LINEAR, ColumnarFleetEngine
from repro.sim.fleet import FleetLane, FleetSimulation
from repro.traces.trace import Trace

_RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_megafleet.json")

#: The realtime factor the largest fleet must reach (sim seconds of
#: simulated fleet time per wall-clock second; > 1 means faster than
#: real time).
_REQUIRED_REALTIME = 1.0

#: Accuracy threshold of every lane (metres) — the paper's mid "us".
_ACCURACY_M = 50.0

#: Sampling interval of the shared sighting grid (seconds).
_SAMPLE_INTERVAL_S = 1.0

#: Extent of the square city the fleet starts in (metres).
_CITY_EXTENT_M = 12_000.0

#: Seed of the synthetic fleet's velocity random walk.
_SEED = 20020


def _build_arrays(n_objects: int, n_samples: int, seed: int = _SEED):
    """The synthetic city fleet as raw arrays: ``(times, positions)``.

    Every object starts somewhere in a ``_CITY_EXTENT_M`` square and
    drives a velocity random walk (Gaussian acceleration steps around an
    urban cruise speed) on the shared 1 Hz grid — the homogeneous
    mega-fleet shape the columnar engine covers, with enough per-object
    variety that update cadences differ across the fleet.
    """
    rng = np.random.default_rng(seed)
    times = np.arange(n_samples, dtype=float) * _SAMPLE_INTERVAL_S
    starts = rng.uniform(0.0, _CITY_EXTENT_M, size=(n_objects, 1, 2))
    headings = rng.uniform(0.0, 2.0 * np.pi, size=n_objects)
    speeds = rng.uniform(3.0, 17.0, size=n_objects)  # ~11-60 km/h cruise
    v0 = np.stack([speeds * np.cos(headings), speeds * np.sin(headings)], axis=1)
    accel = rng.normal(0.0, 0.6, size=(n_objects, n_samples, 2))
    velocity = v0[:, None, :] + np.cumsum(accel, axis=1) * _SAMPLE_INTERVAL_S
    steps = np.zeros((n_objects, n_samples, 2))
    steps[:, 1:, :] = velocity[:, :-1, :] * _SAMPLE_INTERVAL_S
    positions = starts + np.cumsum(steps, axis=1)
    return times, positions


def _lanes_from_arrays(times, positions, channel=None):
    """Per-object :class:`FleetLane` view of the same fleet (scalar path)."""
    return [
        FleetLane(
            object_id=f"mf/{k:06d}",
            protocol=LinearPredictionProtocol(_ACCURACY_M),
            sensor_trace=Trace(times, positions[k]),
            channel=channel,
        )
        for k in range(positions.shape[0])
    ]


def _ru_maxrss_mb() -> float:
    """Lifetime peak RSS of this process in MiB (Linux reports KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_columnar_point(n_objects: int, n_samples: int) -> dict:
    """One point of the scaling curve: build + run + memory probe.

    The run is timed *under* ``tracemalloc`` — the tracing overhead only
    makes the realtime claim conservative.
    """
    build_started = time.perf_counter()
    times, positions = _build_arrays(n_objects, n_samples)
    build_seconds = time.perf_counter() - build_started
    sim_seconds = float(times[-1] - times[0])
    tracemalloc.start()
    engine = ColumnarFleetEngine(
        times, positions, mode=LINEAR, accuracy=_ACCURACY_M
    )
    started = time.perf_counter()
    result = engine.run()
    run_seconds = time.perf_counter() - started
    _current, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    updates = sum(r.updates for r in result.results.values())
    return {
        "objects": n_objects,
        "build_seconds": round(build_seconds, 4),
        "run_seconds": round(run_seconds, 4),
        "sim_seconds": sim_seconds,
        "realtime_factor": round(sim_seconds / run_seconds, 3),
        "objects_per_second": round(n_objects / run_seconds, 1),
        "lane_samples_per_second": round(n_objects * n_samples / run_seconds, 1),
        "updates_total": updates,
        "tracemalloc_peak_mb": round(traced_peak / 2**20, 1),
        "ru_maxrss_mb": round(_ru_maxrss_mb(), 1),
    }


def _result_rows(result):
    rows = {oid: r.as_dict() for oid, r in result.results.items()}
    errors = {oid: r.metrics.errors for oid, r in result.results.items()}
    return rows, errors


def _identical(a, b) -> bool:
    rows_a, err_a = _result_rows(a)
    rows_b, err_b = _result_rows(b)
    return (
        list(rows_a) == list(rows_b)
        and rows_a == rows_b
        and all(np.array_equal(err_a[oid], err_b[oid]) for oid in rows_a)
    )


def _stats_tuple(stats):
    return (
        stats.messages_sent,
        stats.messages_delivered,
        stats.messages_lost,
        stats.bytes_sent,
        stats.bytes_delivered,
        stats.max_queue_delay,
    )


def check_columnar_identity(n_objects: int = 400, n_samples: int = 120) -> bool:
    """Columnar engine vs the scalar event kernel, bit for bit."""
    times, positions = _build_arrays(n_objects, n_samples)
    scalar = FleetSimulation(_lanes_from_arrays(times, positions), kernel="event")
    columnar = ColumnarFleetEngine.from_lanes(_lanes_from_arrays(times, positions))
    return _identical(scalar.run(), columnar.run())


def _sharded_fleet(times, positions, processes: int) -> FleetSimulation:
    """An event-kernel fleet over a seeded lossy uplink and 4 service shards."""
    channel = MessageChannel(latency=4.0, loss_probability=0.1, seed=42)
    return FleetSimulation(
        _lanes_from_arrays(times, positions, channel=channel),
        server=LocationService(n_shards=4),
        kernel="event",
        handoff_interval=30.0,
        processes=processes,
    )


def check_multiprocess_identity(n_objects: int = 200, n_samples: int = 90) -> bool:
    """``processes=4`` vs ``processes=1``: results, channel, service stats."""
    times, positions = _build_arrays(n_objects, n_samples)
    single = _sharded_fleet(times, positions, processes=1)
    result_1 = single.run()
    stats_1 = _stats_tuple(single.shared_channel.stats)
    sharded = _sharded_fleet(times, positions, processes=4)
    result_4 = sharded.run()
    stats_4 = _stats_tuple(sharded.shared_channel.stats)
    return (
        _identical(result_1, result_4)
        and stats_1 == stats_4
        and result_1.service_stats == result_4.service_stats
    )


def _time_processes(times, positions, processes: int) -> float:
    fleet = FleetSimulation(
        _lanes_from_arrays(times, positions), kernel="event", processes=processes
    )
    started = time.perf_counter()
    fleet.run()
    return time.perf_counter() - started


def measure_parallel(n_objects: int, n_samples: int = 120) -> dict:
    """Wall time of ``processes=2`` against ``processes=1`` (event kernel)."""
    times, positions = _build_arrays(n_objects, n_samples)
    single_seconds = _time_processes(times, positions, 1)
    multi_seconds = _time_processes(times, positions, 2)
    speedup = single_seconds / multi_seconds if multi_seconds > 0 else None
    return {
        "objects": n_objects,
        "processes": 2,
        "single_seconds": round(single_seconds, 4),
        "multi_seconds": round(multi_seconds, 4),
        "speedup": round(speedup, 3) if speedup else None,
        "efficiency": round(speedup / 2, 3) if speedup else None,
    }


def run_megafleet(sizes, n_samples: int, parallel_objects: int) -> dict:
    """The full benchmark: scaling curve + identity checks + parallel timing."""
    curve = [_run_columnar_point(n, n_samples) for n in sizes]
    return {
        "benchmark": "megafleet_columnar_scaling",
        "mode": "linear",
        "accuracy_m": _ACCURACY_M,
        "n_samples": n_samples,
        "sample_interval_s": _SAMPLE_INTERVAL_S,
        "city_extent_m": _CITY_EXTENT_M,
        "seed": _SEED,
        "required_realtime": _REQUIRED_REALTIME,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "curve": curve,
        "realtime_factor_largest": curve[-1]["realtime_factor"],
        "columnar_identical_to_event": check_columnar_identity(),
        "multiprocess_identical": check_multiprocess_identity(),
        "parallel": measure_parallel(parallel_objects, min(n_samples, 120)),
    }


def _print_record(record):
    print(json.dumps({k: v for k, v in record.items() if k != "machine"}, indent=2))


def _write_record(record):
    with open(_RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.normpath(_RESULT_PATH)}")


def _assert_record(record):
    assert record["columnar_identical_to_event"], (
        "columnar engine diverged from the scalar event kernel"
    )
    assert record["multiprocess_identical"], (
        "processes=4 diverged from processes=1 on the event kernel"
    )
    floor = _min_realtime()
    assert record["realtime_factor_largest"] >= floor, (
        f"realtime factor {record['realtime_factor_largest']}x at "
        f"{record['curve'][-1]['objects']} objects is below the {floor}x floor"
    )
    eff_floor = _min_efficiency()
    efficiency = record["parallel"]["efficiency"] or 0.0
    assert efficiency >= eff_floor, (
        f"parallel efficiency {efficiency} is below the {eff_floor} floor"
    )


def _env_int(name, default):
    return int(os.environ.get(name, default))


def _min_realtime() -> float:
    """The asserted realtime floor (default: the full 1x target)."""
    return float(os.environ.get("REPRO_BENCH_MF_MIN_REALTIME", _REQUIRED_REALTIME))


def _min_efficiency() -> float:
    """The asserted parallel-efficiency floor (default: off — 1-core CI)."""
    return float(os.environ.get("REPRO_BENCH_MF_MIN_EFFICIENCY", 0.0))


def _params():
    sizes = os.environ.get("REPRO_BENCH_MF_SIZES", "1000,10000,100000")
    return dict(
        sizes=[int(s) for s in sizes.split(",") if s.strip()],
        n_samples=_env_int("REPRO_BENCH_MF_SAMPLES", 240),
        parallel_objects=_env_int("REPRO_BENCH_MF_PARALLEL_OBJECTS", 800),
    )


def test_megafleet_scaling(benchmark):
    from conftest import run_once

    record = run_once(benchmark, run_megafleet, **_params())
    print()
    _print_record(record)
    _write_record(record)
    _assert_record(record)


def test_columnar_identity_small():
    """Tiny cross-check runnable without the benchmark harness."""
    assert check_columnar_identity(n_objects=60, n_samples=50)


def test_multiprocess_identity_small():
    """Tiny cross-check runnable without the benchmark harness."""
    assert check_multiprocess_identity(n_objects=40, n_samples=40)


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke entry point
    record = run_megafleet(**_params())
    _print_record(record)
    _write_record(record)
    _assert_record(record)
