"""Unit tests for repro.roadmap.probability."""

import random

import pytest

from repro.roadmap.generators import t_junction_map
from repro.roadmap.probability import TurnProbabilityTable
from repro.roadmap.routing import RoutePlanner


@pytest.fixture()
def t_map_with_links():
    roadmap = t_junction_map(arm_length_m=500.0)
    center, _ = roadmap.nearest_intersection((0.0, 0.0))
    west, _ = roadmap.nearest_intersection((-500.0, 0.0))
    east, _ = roadmap.nearest_intersection((500.0, 0.0))
    north, _ = roadmap.nearest_intersection((0.0, 500.0))

    def link_between(a, b):
        return next(
            l for l in roadmap.outgoing_links(a) if l.to_node == b
        )

    return {
        "map": roadmap,
        "west_in": link_between(west.id, center.id),
        "to_east": link_between(center.id, east.id),
        "to_north": link_between(center.id, north.id),
    }


class TestRecording:
    def test_unknown_link_rejected(self, t_map_with_links):
        table = TurnProbabilityTable(t_map_with_links["map"])
        with pytest.raises(KeyError):
            table.record_transition(9999, t_map_with_links["to_east"].id)

    def test_record_and_count(self, t_map_with_links):
        table = TurnProbabilityTable(t_map_with_links["map"])
        table.record_transition(t_map_with_links["west_in"].id, t_map_with_links["to_east"].id)
        assert table.transition_count(
            t_map_with_links["west_in"].id, t_map_with_links["to_east"].id
        ) == 1.0

    def test_negative_smoothing_rejected(self, t_map_with_links):
        with pytest.raises(ValueError):
            TurnProbabilityTable(t_map_with_links["map"], laplace_smoothing=-1.0)

    def test_record_route(self):
        roadmap = t_junction_map()
        planner = RoutePlanner(roadmap)
        route = planner.random_route(min_length=900.0, rng=random.Random(0))
        table = TurnProbabilityTable(roadmap)
        table.record_route(route)
        assert len(list(table.observed_transitions())) == len(route.links) - 1

    def test_merge(self, t_map_with_links):
        a = TurnProbabilityTable(t_map_with_links["map"])
        b = TurnProbabilityTable(t_map_with_links["map"])
        a.record_transition(t_map_with_links["west_in"].id, t_map_with_links["to_east"].id, 2.0)
        b.record_transition(t_map_with_links["west_in"].id, t_map_with_links["to_east"].id, 3.0)
        a.merge(b)
        assert a.transition_count(
            t_map_with_links["west_in"].id, t_map_with_links["to_east"].id
        ) == 5.0


class TestProbabilities:
    def test_uniform_when_no_observations(self, t_map_with_links):
        table = TurnProbabilityTable(t_map_with_links["map"])
        probs = table.transition_probabilities(t_map_with_links["west_in"])
        assert len(probs) == 2  # east and north (no U-turn)
        assert sum(probs.values()) == pytest.approx(1.0)
        assert all(p == pytest.approx(0.5) for p in probs.values())

    def test_probabilities_follow_counts(self, t_map_with_links):
        table = TurnProbabilityTable(t_map_with_links["map"])
        west_in = t_map_with_links["west_in"]
        table.record_transition(west_in.id, t_map_with_links["to_east"].id, 3.0)
        table.record_transition(west_in.id, t_map_with_links["to_north"].id, 1.0)
        probs = table.transition_probabilities(west_in)
        assert probs[t_map_with_links["to_east"].id] == pytest.approx(0.75)
        assert probs[t_map_with_links["to_north"].id] == pytest.approx(0.25)

    def test_most_probable_successor(self, t_map_with_links):
        table = TurnProbabilityTable(t_map_with_links["map"])
        west_in = t_map_with_links["west_in"]
        table.record_transition(west_in.id, t_map_with_links["to_north"].id, 5.0)
        best = table.most_probable_successor(west_in)
        assert best is not None
        assert best.id == t_map_with_links["to_north"].id

    def test_most_probable_dead_end_returns_none(self, t_map_with_links):
        roadmap = t_map_with_links["map"]
        table = TurnProbabilityTable(roadmap)
        # A link towards a dead-end arm: the only outgoing link at the arm tip
        # is the U-turn, which successors() excludes.
        dead_end_link = t_map_with_links["to_east"]
        assert table.most_probable_successor(dead_end_link) is None

    def test_smoothing_keeps_unseen_turns_possible(self, t_map_with_links):
        table = TurnProbabilityTable(t_map_with_links["map"], laplace_smoothing=1.0)
        west_in = t_map_with_links["west_in"]
        table.record_transition(west_in.id, t_map_with_links["to_east"].id, 8.0)
        probs = table.transition_probabilities(west_in)
        assert probs[t_map_with_links["to_north"].id] > 0.0

    def test_serialisation_roundtrip(self, t_map_with_links):
        table = TurnProbabilityTable(t_map_with_links["map"], laplace_smoothing=0.5)
        west_in = t_map_with_links["west_in"]
        table.record_transition(west_in.id, t_map_with_links["to_east"].id, 4.0)
        rebuilt = TurnProbabilityTable.from_dict(t_map_with_links["map"], table.to_dict())
        assert rebuilt.laplace_smoothing == 0.5
        assert rebuilt.transition_count(
            west_in.id, t_map_with_links["to_east"].id
        ) == 4.0
