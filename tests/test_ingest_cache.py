"""Unit tests for repro.ingest.cache: the compiled-map disk cache."""

import json

import pytest

from repro.ingest import cache as map_cache
from repro.ingest.cache import compile_osm, default_cache_dir, import_map
from repro.ingest.fixtures import write_fixture_xml
from repro.roadmap.io import roadmap_to_dict


@pytest.fixture
def extract(tmp_path):
    path = tmp_path / "town.osm"
    write_fixture_xml(path, seed=3)
    return path


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "mapcache"


def _entries(cache_dir):
    return sorted(p.name for p in cache_dir.glob("*.json"))


class TestImportMap:
    def test_miss_then_hit(self, extract, cache_dir):
        first = import_map(extract, cache_dir=cache_dir)
        assert not first.cached
        assert "parse_seconds" in first.timings
        assert first.cache_path and len(_entries(cache_dir)) == 1

        second = import_map(extract, cache_dir=cache_dir)
        assert second.cached
        assert "cache_load_seconds" in second.timings
        assert len(_entries(cache_dir)) == 1

    def test_hit_is_identical_to_miss(self, extract, cache_dir):
        first = import_map(extract, cache_dir=cache_dir)
        second = import_map(extract, cache_dir=cache_dir)
        assert json.dumps(roadmap_to_dict(first.roadmap)) == json.dumps(
            roadmap_to_dict(second.roadmap)
        )
        assert second.report.as_dict() == first.report.as_dict()
        assert second.origin == first.origin
        assert second.parse_stats == first.parse_stats

    def test_option_change_is_a_different_entry(self, extract, cache_dir):
        import_map(extract, cache_dir=cache_dir)
        raw = import_map(extract, cache_dir=cache_dir, contract=False)
        assert not raw.cached
        assert len(_entries(cache_dir)) == 2
        assert raw.roadmap.num_intersections() > 0

    def test_content_change_invalidates(self, extract, cache_dir):
        import_map(extract, cache_dir=cache_dir)
        write_fixture_xml(extract, seed=4)  # different town, same path
        again = import_map(extract, cache_dir=cache_dir)
        assert not again.cached
        assert len(_entries(cache_dir)) == 2

    def test_refresh_forces_reimport(self, extract, cache_dir):
        import_map(extract, cache_dir=cache_dir)
        again = import_map(extract, cache_dir=cache_dir, refresh=True)
        assert not again.cached
        assert len(_entries(cache_dir)) == 1

    def test_corrupt_entry_is_rebuilt(self, extract, cache_dir):
        first = import_map(extract, cache_dir=cache_dir)
        entry = cache_dir / _entries(cache_dir)[0]
        entry.write_text("{not json", encoding="utf-8")
        again = import_map(extract, cache_dir=cache_dir)
        assert not again.cached
        assert json.dumps(roadmap_to_dict(again.roadmap)) == json.dumps(
            roadmap_to_dict(first.roadmap)
        )
        # ... and the entry is healthy again.
        assert import_map(extract, cache_dir=cache_dir).cached

    def test_pipeline_version_bump_invalidates(self, extract, cache_dir, monkeypatch):
        import_map(extract, cache_dir=cache_dir)
        monkeypatch.setattr(map_cache, "PIPELINE_VERSION", map_cache.PIPELINE_VERSION + 1)
        again = import_map(extract, cache_dir=cache_dir)
        assert not again.cached
        assert len(_entries(cache_dir)) == 2

    def test_bbox_option_clips(self, extract, cache_dir):
        full = import_map(extract, cache_dir=cache_dir)
        min_lat, min_lon, max_lat, max_lon = (
            48.775, 9.175, 48.7832, 9.1832,
        )
        clipped = import_map(
            extract, cache_dir=cache_dir, bbox=(min_lat, min_lon, max_lat, max_lon)
        )
        assert clipped.roadmap.num_links() < full.roadmap.num_links()


class TestCompileOsm:
    def test_accepts_raw_text(self, extract):
        compiled = compile_osm(extract.read_text(encoding="utf-8"), source_name="inline")
        assert compiled.roadmap.metadata["source"] == "inline"
        assert compiled.report.contracted

    def test_records_timings(self, extract):
        compiled = compile_osm(extract)
        assert set(compiled.timings) == {"parse_seconds", "compile_seconds"}


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MAP_CACHE", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAP_CACHE", raising=False)
        assert default_cache_dir().name == "maps"


class TestReviewRegressions:
    def test_index_cell_size_survives_cache_hit(self, extract, cache_dir):
        cold = import_map(extract, cache_dir=cache_dir, index_cell_size=50.0)
        warm = import_map(extract, cache_dir=cache_dir, index_cell_size=50.0)
        assert warm.cached
        # Both maps answer spatial queries identically (the index is a
        # runtime structure sized per request, not per document)...
        probe = next(iter(cold.roadmap.intersections.values())).position
        assert warm.roadmap.nearest_link(probe)[0].id == cold.roadmap.nearest_link(probe)[0].id
        # ...and the rebuilt index really uses the requested cell size.
        assert warm.roadmap._index.cell_size == 50.0

    def test_inline_text_source_is_not_embedded_as_metadata(self, extract):
        text = extract.read_text(encoding="utf-8")
        compiled = compile_osm(text)
        assert compiled.roadmap.metadata["source"] == ""

    def test_malformed_report_metadata_is_rebuilt(self, extract, cache_dir):
        import_map(extract, cache_dir=cache_dir)
        entry = cache_dir / _entries(cache_dir)[0]
        document = json.loads(entry.read_text(encoding="utf-8"))
        document["metadata"]["ingest"]["conditioning"] = {"bogus_field": 1}
        entry.write_text(json.dumps(document), encoding="utf-8")
        again = import_map(extract, cache_dir=cache_dir)
        assert not again.cached  # silently rebuilt, not a TypeError crash
        assert import_map(extract, cache_dir=cache_dir).cached


class TestRegisterMapFileScenario:
    def test_identical_recipe_is_idempotent_different_options_raise(self, extract):
        from repro.experiments.library import (
            register_map_file_scenario,
            unregister_scenario,
        )

        name = register_map_file_scenario(str(extract))
        try:
            assert register_map_file_scenario(str(extract)) == name
            with pytest.raises(ValueError, match="different options"):
                register_map_file_scenario(str(extract), agent_kind="pedestrian")
            with pytest.raises(ValueError, match="different options"):
                register_map_file_scenario(
                    str(extract), bbox=(48.7, 9.1, 48.8, 9.2)
                )
        finally:
            unregister_scenario(name)
