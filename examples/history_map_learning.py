#!/usr/bin/env python
"""History-based dead reckoning: learn the map from past movements.

The paper's *history-based* variant (Sec. 2) generates the road map from
traces of the user's own past movements — useful when no navigation map is
available — and then runs the normal map-based protocol on the learned map.
This example demonstrates the complete loop on a commuter who drives the
same city route every day:

1. simulate a few days of commutes (ground truth + GPS noise),
2. learn a road map and the turn probabilities from the first days,
3. track the final day's commute with (a) linear prediction, (b) map-based
   DR on the learned map and (c) map-based DR with learned turn
   probabilities, and compare the update counts.

Run with::

    python examples/history_map_learning.py
"""

import random

from repro.experiments.report import format_table
from repro.mobility.kinematics import CITY_DRIVER
from repro.mobility.vehicle import VehicleSimulator
from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.mapbased import MapBasedConfig, MapBasedProtocol
from repro.protocols.probabilistic import ProbabilisticMapBasedProtocol
from repro.roadmap.generators import city_grid_map
from repro.roadmap.history import HistoryMapLearner
from repro.roadmap.probability import TurnProbabilityTable
from repro.roadmap.routing import RoutePlanner
from repro.mapmatching.offline import match_trace, matched_link_sequence
from repro.mapmatching.matcher import MatcherConfig
from repro.sim.engine import ProtocolSimulation
from repro.traces.noise import GaussMarkovNoise

ACCURACY = 100.0
TRAINING_DAYS = 4


def main() -> None:
    rng = random.Random(3)
    # The "real world" the commuter drives in; the tracking system never sees it.
    real_world = city_grid_map(rows=12, cols=12, spacing_m=250.0, seed=3)
    planner = RoutePlanner(real_world)
    commute = planner.random_route(min_length=7_000.0, rng=rng, straight_bias=0.8)

    def one_day(seed: int):
        journey = VehicleSimulator(
            commute, CITY_DRIVER, rng=random.Random(seed)
        ).run(name=f"commute-{seed}")
        noise = GaussMarkovNoise(sigma=2.5, correlation_time=60.0, seed=seed)
        return journey, noise.apply(journey.trace)

    # ---- learn the map from the first days ----------------------------------
    learner = HistoryMapLearner(cell_size=35.0)
    training_traces = []
    for day in range(TRAINING_DAYS):
        journey, sensor = one_day(seed=10 + day)
        learner.add_trace(sensor)
        training_traces.append(sensor)
    learned_map = learner.build_map()
    print(
        f"Learned map from {TRAINING_DAYS} commutes: "
        f"{learned_map.num_intersections()} intersections, "
        f"{learned_map.num_links()} links, "
        f"{learned_map.total_length() / 2000.0:.1f} km of road."
    )

    # ---- learn user-specific turn probabilities on the learned map ----------
    turn_table = TurnProbabilityTable(learned_map, laplace_smoothing=0.1)
    for sensor in training_traces:
        points = match_trace(sensor, learned_map, MatcherConfig(tolerance=50.0))
        turn_table.record_link_sequence(matched_link_sequence(points))

    # ---- track a new day with the learned knowledge --------------------------
    journey, sensor = one_day(seed=99)
    protocols = [
        LinearPredictionProtocol(ACCURACY, sensor_uncertainty=2.5, estimation_window=4),
        MapBasedProtocol(
            ACCURACY, learned_map, sensor_uncertainty=2.5, estimation_window=4,
            config=MapBasedConfig(matching_tolerance=50.0),
        ),
        ProbabilisticMapBasedProtocol(
            ACCURACY, learned_map, turn_table, sensor_uncertainty=2.5, estimation_window=4,
            config=MapBasedConfig(matching_tolerance=50.0),
        ),
    ]
    rows = []
    for protocol in protocols:
        result = ProtocolSimulation(
            protocol=protocol, sensor_trace=sensor, truth_trace=journey.trace
        ).run()
        rows.append(
            {
                "protocol": result.protocol_name,
                "updates": result.updates,
                "updates/h": round(result.updates_per_hour, 1),
                "mean error [m]": round(result.metrics.mean_error, 1),
            }
        )
    print()
    print(format_table(rows, title=f"Tracking a new commute (us = {ACCURACY:.0f} m)"))
    print()
    print(
        "The map learned from the user's own history replaces the navigation "
        "map: the map-based protocol works without ever having seen a real map, "
        "and the learned turn probabilities recover the known-route behaviour "
        "on the commuter's habitual route."
    )


if __name__ == "__main__":
    main()
