"""Run provenance: who produced this artifact, from what, with what.

Every number the reproduction publishes — sweep artifacts, benchmark
records, obs metric dumps — should carry enough context to be re-run:
the git commit (and whether the tree was dirty), the seed, a content hash
of the configuration, and the toolchain versions.  :func:`build_manifest`
assembles that block; ``SweepRunner`` stamps it into artifacts under a
top-level ``"provenance"`` key (never inside ``metadata``, which belongs
to the caller and is compared exactly by tests).

The config hash is a SHA-256 over the canonical JSON encoding of the
configuration (sorted keys, compact separators), so two runs with equal
configuration hash equal regardless of dict ordering — and a one-knob
difference is immediately visible as a different hash.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import time
from typing import Dict, Mapping, Optional

try:  # numpy is a hard dependency of the sim, but the manifest never fails
    import numpy as _np

    _NUMPY_VERSION: Optional[str] = _np.__version__
except Exception:  # pragma: no cover - defensive
    _NUMPY_VERSION = None


def git_revision(cwd: Optional[str] = None) -> Dict[str, object]:
    """The current git commit — ``{"sha": ..., "dirty": ...}``.

    ``sha`` is ``None`` outside a work tree (artifacts from an installed
    package still get a manifest, just without a commit).
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
            check=True,
        ).stdout
        return {"sha": sha, "dirty": bool(status.strip())}
    except Exception:
        return {"sha": None, "dirty": None}


def config_hash(config: Mapping[str, object]) -> str:
    """SHA-256 of the canonical JSON encoding of *config*."""
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_manifest(
    seed: Optional[int] = None,
    config: Optional[Mapping[str, object]] = None,
    timings: Optional[Mapping[str, float]] = None,
    cwd: Optional[str] = None,
) -> Dict[str, object]:
    """Assemble the provenance block stamped into artifacts."""
    manifest: Dict[str, object] = {
        "schema": 1,
        "created_unix": round(time.time(), 3),
        "git": git_revision(cwd=cwd),
        "python": platform.python_version(),
        "numpy": _NUMPY_VERSION,
        "platform": platform.platform(),
        "seed": seed,
    }
    if config is not None:
        manifest["config"] = dict(config)
        manifest["config_hash"] = config_hash(config)
    if timings:
        manifest["timings"] = {k: round(float(v), 6) for k, v in timings.items()}
    return manifest
