"""A3 — ablation of the intersection turn policy (paper Sec. 3).

The paper's prediction selects "the link with the smallest angle to the
previous link"; it mentions selecting the main road as the ideal and the
*map-based with probability information* variant as an improvement for
frequent intersections, and uses the known-route protocol as the upper
bound.  This ablation compares all four on the city scenario, where
intersections are frequent enough for the choice to matter.
"""

from repro.experiments.ablations import turn_policy_ablation
from repro.experiments.report import format_table
from repro.mobility.scenarios import ScenarioName

from conftest import run_once


def test_turn_policy_ablation(benchmark, scale):
    rows = run_once(
        benchmark,
        turn_policy_ablation,
        scenario_name=ScenarioName.CITY,
        accuracy=100.0,
        scale=min(scale, 0.5),
    )
    print()
    print(format_table(rows, title="A3 — intersection turn policy (city, us=100 m)"))
    rates = {row["policy"]: row["updates_per_hour"] for row in rows}
    # The known route is (essentially) the lower bound for any turn policy —
    # small deviations are possible because the map-based variants transmit
    # corrected positions while the known-route protocol transmits raw ones.
    assert rates["known route"] <= rates["smallest angle"]
    assert rates["known route"] <= rates["turn probabilities"] * 1.15
    # Turn probabilities learned from the object's own history cannot be
    # (meaningfully) worse than pure geometry.
    assert rates["turn probabilities"] <= rates["smallest angle"] * 1.05
