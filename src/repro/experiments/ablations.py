"""Ablation experiments around the design choices of the map-based protocol.

The paper motivates several design choices without quantifying them; the
ablations here fill those gaps (they correspond to experiments A1-A4 of
DESIGN.md):

* matching tolerance ``um`` (A1),
* heading/speed estimation window *n* (A2),
* intersection turn policy: smallest angle vs main road vs learned
  probabilities vs the known-route upper bound (A3),
* the Wolfson-style adaptive threshold strategies sdr/adr/dtdr (A4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.scenarios import get_scenario
from repro.mapmatching.offline import match_trace, matching_accuracy
from repro.mapmatching.matcher import MatcherConfig
from repro.mobility.scenarios import Scenario, ScenarioName
from repro.protocols.adaptive import (
    AdaptiveDeadReckoning,
    DisconnectionDetectionDeadReckoning,
    SpeedDeadReckoning,
)
from repro.protocols.higher_order import HigherOrderPredictionProtocol
from repro.protocols.known_route import KnownRouteProtocol
from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.mapbased import MapBasedConfig, MapBasedProtocol
from repro.protocols.prediction import (
    MainRoadTurnPolicy,
    SmallestAngleTurnPolicy,
)
from repro.protocols.probabilistic import ProbabilisticMapBasedProtocol
from repro.roadmap.probability import TurnProbabilityTable
from repro.sim.metrics import SimulationResult
from repro.sim.runner import SweepRunner

#: All ablation studies execute through the shared sweep runner, like the
#: figures and tables — one pipeline, one set of engine fast paths.
_RUNNER = SweepRunner()


def _run(protocol, scenario: Scenario, channel=None) -> SimulationResult:
    return _RUNNER.run_single(scenario, protocol, channel=channel)


# --------------------------------------------------------------------------- #
# A6: robustness against message loss / disconnections
# --------------------------------------------------------------------------- #
def message_loss_robustness(
    scenario_name: ScenarioName | str = ScenarioName.FREEWAY,
    loss_probabilities: Sequence[float] = (0.0, 0.02, 0.05, 0.1),
    accuracy: float = 100.0,
    scale: float = 1.0,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Server-side error of linear DR and dtdr under lossy channels.

    The paper's related work motivates Wolfson's *disconnection detection*
    variant (dtdr) with exactly this failure mode: if update messages can be
    lost, a silent source is indistinguishable from a perfectly predicted
    one, and the server's error is unbounded.  dtdr shrinks its threshold
    while silent so the source keeps refreshing the server.  This experiment
    measures how the delivered accuracy of plain linear DR and of dtdr
    degrades as the loss probability grows.
    """
    from repro.service.channel import MessageChannel

    scenario = get_scenario(scenario_name, scale=scale)
    up = scenario.sensor_sigma
    window = scenario.estimation_window
    rows: List[Dict[str, object]] = []
    for loss in loss_probabilities:
        for label, protocol in (
            ("linear dr", LinearPredictionProtocol(accuracy, up, window)),
            (
                "dtdr",
                DisconnectionDetectionDeadReckoning(
                    accuracy, decay_time=120.0, floor_fraction=0.2,
                    sensor_uncertainty=up, estimation_window=window,
                ),
            ),
        ):
            channel = MessageChannel(loss_probability=float(loss), seed=seed)
            result = _run(protocol, scenario, channel=channel)
            rows.append(
                {
                    "loss": float(loss),
                    "protocol": label,
                    "updates_per_hour": round(result.updates_per_hour, 2),
                    "mean_error_m": round(result.metrics.mean_error, 2),
                    "p95_error_m": round(result.metrics.percentile(95.0), 2),
                    "max_error_m": round(result.metrics.max_error, 2),
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# A1: matching tolerance um
# --------------------------------------------------------------------------- #
def matching_tolerance_ablation(
    scenario_name: ScenarioName | str = ScenarioName.FREEWAY,
    tolerances: Sequence[float] = (5.0, 10.0, 20.0, 30.0, 50.0),
    accuracy: float = 100.0,
    scale: float = 1.0,
) -> List[Dict[str, float]]:
    """Update rate and matching accuracy as a function of ``um``.

    A tolerance below the sensor noise loses the map frequently (more
    updates, linear fallback); a very large tolerance risks matching onto
    the wrong road.
    """
    scenario = get_scenario(scenario_name, scale=scale)
    rows: List[Dict[str, float]] = []
    for um in tolerances:
        protocol = MapBasedProtocol(
            accuracy,
            scenario.roadmap,
            sensor_uncertainty=scenario.sensor_sigma,
            estimation_window=scenario.estimation_window,
            config=MapBasedConfig(matching_tolerance=float(um)),
        )
        result = _run(protocol, scenario)
        matched = match_trace(
            scenario.sensor_trace,
            scenario.roadmap,
            MatcherConfig(tolerance=float(um)),
        )
        accuracy_fraction = matching_accuracy(
            matched, scenario.journey.link_ids, scenario.roadmap
        )
        rows.append(
            {
                "um [m]": float(um),
                "updates_per_hour": round(result.updates_per_hour, 2),
                "off_map_events": float(result.matcher_stats.get("off_map_events", 0)),
                "match_accuracy": round(accuracy_fraction, 3),
                "mean_error_m": round(result.metrics.mean_error, 2),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# A2: estimation window n
# --------------------------------------------------------------------------- #
def estimation_window_ablation(
    scenario_name: ScenarioName | str,
    windows: Sequence[int] = (2, 4, 8, 16),
    accuracy: float = 100.0,
    scale: float = 1.0,
) -> List[Dict[str, float]]:
    """Effect of the speed/heading estimation window on the linear protocol.

    The paper (Sec. 4) interpolates speed and direction from 2, 4 or 8
    consecutive sightings depending on the movement pattern; this ablation
    reproduces that tuning.
    """
    scenario = get_scenario(scenario_name, scale=scale)
    rows: List[Dict[str, float]] = []
    for window in windows:
        protocol = LinearPredictionProtocol(
            accuracy,
            sensor_uncertainty=scenario.sensor_sigma,
            estimation_window=int(window),
        )
        result = _run(protocol, scenario)
        rows.append(
            {
                "window": float(window),
                "updates_per_hour": round(result.updates_per_hour, 2),
                "mean_error_m": round(result.metrics.mean_error, 2),
                "p95_error_m": round(result.metrics.percentile(95.0), 2),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# A3: turn policy at intersections
# --------------------------------------------------------------------------- #
def turn_policy_ablation(
    scenario_name: ScenarioName | str = ScenarioName.CITY,
    accuracy: float = 100.0,
    scale: float = 1.0,
) -> List[Dict[str, object]]:
    """Compare intersection-choice policies for the map-based prediction.

    * smallest angle (the paper's implementation),
    * main road first (the paper's "ideal" policy),
    * learned turn probabilities (the map-based-with-probabilities variant,
      trained here on the scenario's own ground-truth route — the
      user-specific best case),
    * known route (upper bound: always the right choice).
    """
    scenario = get_scenario(scenario_name, scale=scale)
    config = MapBasedConfig(matching_tolerance=scenario.matching_tolerance)
    up = scenario.sensor_sigma
    window = scenario.estimation_window

    table = TurnProbabilityTable(scenario.roadmap, laplace_smoothing=0.0)
    table.record_route(scenario.route)

    protocols = [
        (
            "smallest angle",
            MapBasedProtocol(
                accuracy,
                scenario.roadmap,
                sensor_uncertainty=up,
                estimation_window=window,
                turn_policy=SmallestAngleTurnPolicy(),
                config=config,
            ),
        ),
        (
            "main road",
            MapBasedProtocol(
                accuracy,
                scenario.roadmap,
                sensor_uncertainty=up,
                estimation_window=window,
                turn_policy=MainRoadTurnPolicy(),
                config=config,
            ),
        ),
        (
            "turn probabilities",
            ProbabilisticMapBasedProtocol(
                accuracy,
                scenario.roadmap,
                table,
                sensor_uncertainty=up,
                estimation_window=window,
                config=config,
            ),
        ),
        (
            "known route",
            KnownRouteProtocol(
                accuracy, scenario.route, sensor_uncertainty=up, estimation_window=window
            ),
        ),
    ]
    rows: List[Dict[str, object]] = []
    for label, protocol in protocols:
        result = _run(protocol, scenario)
        rows.append(
            {
                "policy": label,
                "updates_per_hour": round(result.updates_per_hour, 2),
                "mean_error_m": round(result.metrics.mean_error, 2),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# A5: speed-limit-aware prediction (the paper's future-work extension)
# --------------------------------------------------------------------------- #
def speed_limit_prediction_ablation(
    scenario_name: ScenarioName | str = ScenarioName.CITY,
    factors: Sequence[Optional[float]] = (None, 1.2, 1.0, 0.9),
    accuracy: float = 100.0,
    scale: float = 1.0,
) -> List[Dict[str, object]]:
    """Effect of capping the assumed speed at the link speed limit.

    The paper's future-work section proposes using "knowledge about the speed
    limits for the roads to appropriately change the mobile object's assumed
    speed".  ``None`` is the evaluated protocol (always the reported speed);
    the other entries cap the assumed speed at ``factor * speed_limit`` of
    the link the object is predicted to be on.
    """
    scenario = get_scenario(scenario_name, scale=scale)
    rows: List[Dict[str, object]] = []
    for factor in factors:
        protocol = MapBasedProtocol(
            accuracy,
            scenario.roadmap,
            sensor_uncertainty=scenario.sensor_sigma,
            estimation_window=scenario.estimation_window,
            config=MapBasedConfig(
                matching_tolerance=scenario.matching_tolerance,
                speed_limit_factor=factor,
            ),
        )
        result = _run(protocol, scenario)
        rows.append(
            {
                "speed_limit_factor": "none (paper)" if factor is None else factor,
                "updates_per_hour": round(result.updates_per_hour, 2),
                "mean_error_m": round(result.metrics.mean_error, 2),
                "max_error_m": round(result.metrics.max_error, 2),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# A4: Wolfson adaptive strategies
# --------------------------------------------------------------------------- #
def adaptive_strategy_comparison(
    scenario_name: ScenarioName | str = ScenarioName.FREEWAY,
    threshold: float = 100.0,
    scale: float = 1.0,
) -> List[Dict[str, object]]:
    """Compare sdr, adr and dtdr against plain linear-prediction DR.

    The adaptive strategies do not guarantee a fixed accuracy, so both the
    update rate and the resulting mean/maximum error are reported.
    """
    scenario = get_scenario(scenario_name, scale=scale)
    up = scenario.sensor_sigma
    window = scenario.estimation_window
    protocols = [
        ("linear dr", LinearPredictionProtocol(threshold, up, window)),
        ("sdr", SpeedDeadReckoning(threshold, up, window)),
        (
            "adr",
            AdaptiveDeadReckoning(
                threshold, update_cost=1.0, deviation_cost=0.0002,
                sensor_uncertainty=up, estimation_window=window,
            ),
        ),
        (
            "dtdr",
            DisconnectionDetectionDeadReckoning(
                threshold, decay_time=600.0, floor_fraction=0.25,
                sensor_uncertainty=up, estimation_window=window,
            ),
        ),
        (
            "higher-order dr",
            HigherOrderPredictionProtocol(threshold, up, window),
        ),
    ]
    rows: List[Dict[str, object]] = []
    for label, protocol in protocols:
        result = _run(protocol, scenario)
        rows.append(
            {
                "strategy": label,
                "updates_per_hour": round(result.updates_per_hour, 2),
                "mean_error_m": round(result.metrics.mean_error, 2),
                "max_error_m": round(result.metrics.max_error, 2),
            }
        )
    return rows
