"""Routes over a road map and a shortest-path route planner.

The mobility simulator drives objects along :class:`Route` objects, and the
*dead-reckoning with known route* protocol (paper Sec. 2, citing Wolfson et
al.) predicts positions along one.  The planner owns two interchangeable
engines over the same compact :class:`~repro.roadmap.hierarchy.RoutingGraph`:
a tie-broken reference Dijkstra (``algo="dijkstra"``) and a contraction
hierarchy (``algo="ch"``) whose offline preprocessing makes queries on
metro-scale maps answer in well under a millisecond.  Both produce the
identical canonical route: equal-cost ties are broken deterministically by
an integer tie key derived from link endpoint node ids, compared
lexicographically as ``(cost, key)``, so the optimum is unique.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.geo.polyline import Polyline
from repro.geo.vec import Vec2
from repro.roadmap.elements import Link
from repro.roadmap.graph import RoadMap
from repro.roadmap.hierarchy import (
    ContractionHierarchy,
    PlannedPath,
    RoutingGraph,
    dijkstra_path,
)


class Route:
    """A connected sequence of links over a road map.

    The route exposes an arc-length parameterisation over the concatenated
    link geometry, plus the mapping from route offsets to the underlying link
    and link offset, which both the mobility simulator and the known-route
    protocol rely on.
    """

    def __init__(self, roadmap: RoadMap, links: Sequence[Link]):
        if not links:
            raise ValueError("a route needs at least one link")
        for a, b in zip(links, links[1:]):
            if a.to_node != b.from_node:
                raise ValueError(
                    f"links {a.id} and {b.id} are not connected "
                    f"({a.to_node} != {b.from_node})"
                )
        self.roadmap = roadmap
        self.links: Tuple[Link, ...] = tuple(links)
        self._link_start_offsets = np.concatenate(
            ([0.0], np.cumsum([l.length for l in links]))
        )
        geometry = links[0].geometry
        for link in links[1:]:
            geometry = geometry.concat(link.geometry)
        self.geometry: Polyline = geometry

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> float:
        """Total route length in metres."""
        return float(self._link_start_offsets[-1])

    @property
    def start(self) -> np.ndarray:
        """Start position of the route."""
        return self.links[0].start_position

    @property
    def end(self) -> np.ndarray:
        """End position of the route."""
        return self.links[-1].end_position

    def node_sequence(self) -> List[int]:
        """The intersection ids visited, in order."""
        nodes = [self.links[0].from_node]
        nodes.extend(link.to_node for link in self.links)
        return nodes

    def __len__(self) -> int:
        return len(self.links)

    def __iter__(self) -> Iterator[Link]:
        return iter(self.links)

    # ------------------------------------------------------------------ #
    # arc-length parameterisation
    # ------------------------------------------------------------------ #
    def link_index_at(self, offset: float) -> int:
        """Index into :attr:`links` of the link containing route offset *offset*."""
        if offset <= 0.0:
            return 0
        if offset >= self.length:
            return len(self.links) - 1
        idx = int(np.searchsorted(self._link_start_offsets, offset, side="right") - 1)
        return min(idx, len(self.links) - 1)

    def link_at(self, offset: float) -> Tuple[Link, float]:
        """The link at route offset *offset* and the offset within that link."""
        idx = self.link_index_at(offset)
        local = offset - float(self._link_start_offsets[idx])
        local = min(max(local, 0.0), self.links[idx].length)
        return self.links[idx], local

    def link_start_offset(self, index: int) -> float:
        """Route offset at which link number *index* starts."""
        return float(self._link_start_offsets[index])

    def point_at(self, offset: float) -> np.ndarray:
        """Position at route offset *offset* (clamped to the route)."""
        link, local = self.link_at(offset)
        return link.point_at(local)

    def direction_at(self, offset: float) -> np.ndarray:
        """Unit direction of travel at route offset *offset*."""
        link, local = self.link_at(offset)
        return link.direction_at(local)

    def bearing_at(self, offset: float) -> float:
        """Compass bearing of travel at route offset *offset*."""
        link, local = self.link_at(offset)
        return link.bearing_at(local)

    def speed_limit_at(self, offset: float) -> float:
        """Speed limit (m/s) of the link at route offset *offset*."""
        link, _ = self.link_at(offset)
        return float(link.speed_limit)

    def distance_to_next_node(self, offset: float) -> float:
        """Distance from route offset *offset* to the next intersection ahead."""
        idx = self.link_index_at(offset)
        return float(self._link_start_offsets[idx + 1]) - offset

    def project(self, point: Vec2) -> Tuple[np.ndarray, float, float]:
        """Project *point* onto the route geometry: ``(point, offset, distance)``."""
        return self.geometry.project(point)

    def project_near(
        self,
        point: Vec2,
        near_offset: float,
        forward_window: float = 300.0,
        backward_window: float = 100.0,
    ) -> Tuple[np.ndarray, float, float]:
        """Project *point* onto the route close to a known route offset.

        Routes generated from real trips frequently self-intersect (a city
        drive crosses its own earlier path); a global projection could then
        snap to the wrong pass.  Restricting the search to the links between
        ``near_offset - backward_window`` and ``near_offset + forward_window``
        keeps the progress along the route monotone, which is what the
        known-route protocol needs.  The windows are measured in arc length
        along the route; the forward window only needs to exceed the distance
        the object can cover between two sightings.
        """
        start_idx = self.link_index_at(max(0.0, near_offset - backward_window))
        end_idx = self.link_index_at(min(self.length, near_offset + forward_window))
        best: Optional[Tuple[np.ndarray, float, float]] = None
        for idx in range(start_idx, end_idx + 1):
            matched, local_offset, dist = self.links[idx].project(point)
            global_offset = float(self._link_start_offsets[idx]) + local_offset
            if best is None or dist < best[2]:
                best = (matched, global_offset, dist)
        assert best is not None  # the window always contains at least one link
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Route({len(self.links)} links, {self.length / 1000.0:.1f} km)"


@dataclass
class RoutePlanner:
    """Shortest-path routing and random route generation over a road map.

    Parameters
    ----------
    roadmap:
        The network to plan over.
    weight:
        Either ``"length"`` (shortest distance) or ``"travel_time"``
        (fastest, using link speed limits).
    algo:
        ``"dijkstra"`` answers each query with one tie-broken Dijkstra
        run; ``"ch"`` preprocesses the map into a contraction hierarchy on
        first use (or reuses an injected/cached one) and then answers each
        query with a sub-millisecond bidirectional upward search.  Both
        return the identical canonical route.
    hierarchy:
        Optionally, a prebuilt :class:`ContractionHierarchy` for this map
        and weight (e.g. loaded from the compiled-map cache).  Only
        consulted when ``algo="ch"``.
    cache_entry:
        Path of the compiled-map cache entry this map was loaded from
        (``CompiledMap.cache_path``).  When set, the lazily built
        hierarchy is persisted as a sidecar next to that entry through
        :func:`repro.ingest.cache.load_or_build_hierarchy`, so the
        preprocessing cost is paid once per content hash.
    """

    roadmap: RoadMap
    weight: str = "length"
    algo: str = "dijkstra"
    hierarchy: Optional[ContractionHierarchy] = None
    cache_entry: str = ""
    _graph: RoutingGraph = field(init=False, repr=False)
    _pair_link: Optional[Dict[Tuple[int, int], int]] = field(
        init=False, repr=False, default=None
    )

    def __post_init__(self) -> None:
        if self.weight not in ("length", "travel_time"):
            raise ValueError("weight must be 'length' or 'travel_time'")
        if self.algo not in ("dijkstra", "ch"):
            raise ValueError("algo must be 'dijkstra' or 'ch'")
        self._graph = RoutingGraph.from_roadmap(self.roadmap, self.weight)
        if self.hierarchy is not None:
            if self.hierarchy.graph.weight != self.weight:
                raise ValueError(
                    f"hierarchy was built for weight "
                    f"{self.hierarchy.graph.weight!r}, not {self.weight!r}"
                )
            if self.hierarchy.graph.node_ids != self._graph.node_ids:
                raise ValueError("hierarchy does not match this road map")
            # Requery through the planner's own graph so link lookups and
            # cost re-accumulation share one link_info table.
            self.hierarchy.graph = self._graph

    # ------------------------------------------------------------------ #
    # deterministic planning
    # ------------------------------------------------------------------ #
    def build_hierarchy(self) -> ContractionHierarchy:
        """The planner's contraction hierarchy, building it on first use."""
        if self.hierarchy is None:
            if self.cache_entry:
                # Imported lazily: the cache module depends on the ingest
                # pipeline, which this module must not import eagerly.
                from repro.ingest.cache import load_or_build_hierarchy

                self.hierarchy, _ = load_or_build_hierarchy(
                    self._graph, self.cache_entry
                )
            else:
                self.hierarchy = ContractionHierarchy.build(self._graph)
            # Pre-expand the top-of-hierarchy shortcuts so the first long
            # queries don't pay the one-off unpacking cost.
            self.hierarchy.warm_expansions()
        return self.hierarchy

    def plan(self, from_node: int, to_node: int) -> PlannedPath:
        """The canonical shortest path as ids, without building a Route.

        Raises
        ------
        networkx.NodeNotFound
            If either endpoint is not an intersection of the map.
        networkx.NetworkXNoPath
            If the destination is unreachable.
        """
        for node in (from_node, to_node):
            if node not in self._graph.index_of and node not in self.roadmap.intersections:
                raise nx.NodeNotFound(f"node {node} is not in the road map")
        if from_node == to_node:
            return PlannedPath(0.0, 0, [], nodes=[from_node])
        if self.algo == "ch":
            path = self.build_hierarchy().query(from_node, to_node)
        else:
            path = dijkstra_path(self._graph, from_node, to_node)
        if path is None:
            raise nx.NetworkXNoPath(
                f"no route from node {from_node} to node {to_node}"
            )
        return path

    def shortest_route(self, from_node: int, to_node: int) -> Route:
        """Shortest route between two intersections.

        Raises
        ------
        networkx.NetworkXNoPath
            If the destination is unreachable.
        """
        path = self.plan(from_node, to_node)
        if not path.links:
            raise ValueError("a route needs at least two nodes")
        return self.route_from_links(path.links)

    def route_from_nodes(self, node_path: Sequence[int]) -> Route:
        """Build a route from a sequence of adjacent intersection ids."""
        if len(node_path) < 2:
            raise ValueError("a route needs at least two nodes")
        pair_link = self._pair_link
        if pair_link is None:
            ids = self._graph.node_ids
            pair_link = {
                (ids[u], ids[v]): link
                for link, (_w, _tie, u, v) in self._graph.link_info.items()
            }
            self._pair_link = pair_link
        links: List[Link] = []
        for a, b in zip(node_path, node_path[1:]):
            link_id = pair_link.get((a, b))
            if link_id is None:
                raise ValueError(f"nodes {a} and {b} are not connected by a link")
            links.append(self.roadmap.link(link_id))
        return Route(self.roadmap, links)

    def route_from_links(self, link_ids: Sequence[int]) -> Route:
        """Build a route from an explicit sequence of link ids."""
        return Route(self.roadmap, [self.roadmap.link(lid) for lid in link_ids])

    # ------------------------------------------------------------------ #
    # random routes (used by the scenario generators)
    # ------------------------------------------------------------------ #
    def random_route(
        self,
        min_length: float,
        rng: Optional[random.Random] = None,
        max_attempts: int = 200,
        u_turn_penalty: bool = True,
        straight_bias: float = 0.0,
    ) -> Route:
        """A random route of at least *min_length* metres.

        The route is built as a random walk over successor links that avoids
        immediate U-turns where possible; this mimics the "previously unknown
        route" assumption of the paper better than repeated shortest paths
        between random node pairs, because it visits intersections the way a
        real trip does.

        Parameters
        ----------
        straight_bias:
            Probability of continuing onto the successor with the smallest
            turn angle at each intersection (real trips mostly go straight
            and turn occasionally); the remaining probability mass is spread
            uniformly over the other successors.  0 means a uniform choice.
        """
        if not (0.0 <= straight_bias <= 1.0):
            raise ValueError("straight_bias must be in [0, 1]")
        rng = rng or random.Random()
        link_ids = list(self.roadmap.links.keys())
        if not link_ids:
            raise ValueError("the road map has no links")
        from repro.geo.angles import angle_between  # local import avoids a cycle

        for _ in range(max_attempts):
            current = self.roadmap.link(rng.choice(link_ids))
            links = [current]
            total = current.length
            visited_pairs = {(current.from_node, current.to_node)}
            while total < min_length:
                successors = self.roadmap.successors(current)
                if u_turn_penalty:
                    fresh = [
                        l
                        for l in successors
                        if (l.from_node, l.to_node) not in visited_pairs
                    ]
                    if fresh:
                        successors = fresh
                if not successors:
                    break
                if straight_bias > 0.0 and len(successors) > 1:
                    exit_dir = current.direction_at(current.length)
                    straightest = min(
                        successors,
                        key=lambda link: (angle_between(exit_dir, link.direction_at(0.0)), link.id),
                    )
                    if rng.random() < straight_bias:
                        current = straightest
                    else:
                        others = [l for l in successors if l.id != straightest.id]
                        current = rng.choice(others)
                else:
                    current = rng.choice(successors)
                links.append(current)
                visited_pairs.add((current.from_node, current.to_node))
                total += current.length
            if total >= min_length:
                return Route(self.roadmap, links)
        raise RuntimeError(
            f"could not generate a random route of length >= {min_length:.0f} m; "
            "the map may be too small or poorly connected"
        )
