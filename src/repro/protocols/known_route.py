"""Dead reckoning with a pre-known route.

"If the route of the mobile object is known beforehand, the protocol only
needs to consider the object's speed and not the direction of its movement."
(paper Sec. 2, following Wolfson et al. [12]).  The paper uses it as the
upper bound for the map-based protocol: with a known route the prediction is
equivalent to a map-based prediction that chooses correctly at every
intersection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.protocols.base import UpdateProtocol, UpdateReason
from repro.protocols.prediction import PredictionFunction, RoutePrediction
from repro.roadmap.routing import Route


class KnownRouteProtocol(UpdateProtocol):
    """Dead reckoning along a route known to both source and server.

    The source tracks its progress (arc-length offset) along the known route
    monotonically — a fresh global projection every second could jump to a
    different pass of a self-intersecting route — and transmits that offset
    in the ``link_offset`` field of the update, which the shared
    :class:`~repro.protocols.prediction.RoutePrediction` then advances at the
    reported speed.
    """

    name = "known-route dead reckoning"

    def __init__(
        self,
        accuracy: float,
        route: Route,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
    ):
        super().__init__(accuracy, sensor_uncertainty, estimation_window)
        self.route = route
        self._prediction = RoutePrediction(route)
        self._route_offset: Optional[float] = None

    def prediction_function(self) -> PredictionFunction:
        return self._prediction

    def _pre_decision_hook(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> None:
        if self._route_offset is None:
            self._route_offset = self.route.project(position)[1]
        else:
            _, offset, _ = self.route.project_near(position, self._route_offset)
            self._route_offset = offset

    def _build_state(self, time, position, velocity, speed):
        state = super()._build_state(time, position, velocity, speed)
        return state.with_link(None, self._route_offset)

    def _should_update(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> Optional[UpdateReason]:
        if self._threshold_exceeded(time, position):
            return UpdateReason.THRESHOLD
        return None

    def reset(self) -> None:
        super().reset()
        self._route_offset = None
