"""Spatial indexes over geometric items.

The map-based protocol queries "a spatial index for the map information with
the mobile object's current position" (paper Sec. 3) when it initialises the
map matcher and whenever it has lost its current link and needs to
re-acquire one.  Two interchangeable index structures are provided:

* :class:`repro.spatial.grid.GridIndex` — a uniform grid hash, the default
  used by the road map because links are distributed fairly evenly; and
* :class:`repro.spatial.rtree.STRtree` — a static, STR-packed R-tree, useful
  for very unevenly distributed geometry and as an independent cross-check
  in the test-suite.

Both implement the :class:`repro.spatial.index.SpatialIndex` interface.
"""

from repro.spatial.index import IndexedItem, SpatialIndex, brute_force_nearest
from repro.spatial.grid import GridIndex
from repro.spatial.rtree import STRtree

__all__ = [
    "IndexedItem",
    "SpatialIndex",
    "brute_force_nearest",
    "GridIndex",
    "STRtree",
]
