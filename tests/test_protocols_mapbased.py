"""Unit tests for the map-based dead-reckoning protocol and its variants."""

import numpy as np
import pytest

from repro.protocols.base import UpdateReason
from repro.protocols.known_route import KnownRouteProtocol
from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.mapbased import MapBasedConfig, MapBasedProtocol
from repro.protocols.probabilistic import ProbabilisticMapBasedProtocol
from repro.roadmap.probability import TurnProbabilityTable
from repro.sim.engine import run_simulation
from repro.traces.trace import Trace


def feed(protocol, trace):
    messages = []
    for sample in trace:
        message = protocol.observe(sample.time, sample.position)
        if message is not None:
            messages.append(message)
    return messages


class TestMapBasedConfig:
    def test_matcher_config_propagation(self):
        config = MapBasedConfig(matching_tolerance=17.0, backtrack_depth=3)
        matcher_config = config.matcher_config()
        assert matcher_config.tolerance == 17.0
        assert matcher_config.backtrack_depth == 3


class TestMapBasedProtocol:
    def test_initial_update_contains_link(self, straight_map, straight_trace):
        protocol = MapBasedProtocol(accuracy=100.0, roadmap=straight_map, estimation_window=2)
        messages = feed(protocol, straight_trace)
        assert messages[0].reason is UpdateReason.INITIAL
        assert messages[0].state.link_id is not None
        assert messages[0].state.link_offset is not None

    def test_updates_carry_corrected_position(self, straight_map):
        # Drive along the road with a constant 8 m lateral offset: the
        # transmitted positions must be the projections onto the road.
        times = np.arange(0.0, 61.0)
        positions = np.column_stack((times * 20.0, np.full_like(times, 8.0)))
        trace = Trace(times, positions)
        protocol = MapBasedProtocol(
            accuracy=30.0, roadmap=straight_map, estimation_window=2,
            config=MapBasedConfig(matching_tolerance=30.0),
        )
        messages = feed(protocol, trace)
        for message in messages:
            if message.state.link_id is not None:
                assert message.state.position[1] == pytest.approx(0.0, abs=1e-6)

    def test_raw_position_when_configured(self, straight_map):
        times = np.arange(0.0, 31.0)
        positions = np.column_stack((times * 20.0, np.full_like(times, 8.0)))
        trace = Trace(times, positions)
        protocol = MapBasedProtocol(
            accuracy=30.0, roadmap=straight_map, estimation_window=2,
            config=MapBasedConfig(use_corrected_position=False),
        )
        messages = feed(protocol, trace)
        assert messages[0].state.position[1] == pytest.approx(8.0)

    def test_no_updates_on_straight_road_constant_speed(self, straight_map, straight_trace):
        protocol = MapBasedProtocol(accuracy=50.0, roadmap=straight_map, estimation_window=2)
        messages = feed(protocol, straight_trace)
        assert len(messages) <= 2

    def test_fewer_updates_than_linear_on_curved_road(self, curved_map):
        # Drive around the 90-degree bend of the curved map at constant speed.
        times = np.arange(0.0, 101.0)
        xs = np.where(times <= 50.0, times * 20.0, 1000.0)
        ys = np.where(times <= 50.0, 0.0, (times - 50.0) * 20.0)
        trace = Trace(times, np.column_stack((xs, ys)))
        linear = feed(LinearPredictionProtocol(accuracy=60.0, estimation_window=2), trace)
        map_based = feed(
            MapBasedProtocol(accuracy=60.0, roadmap=curved_map, estimation_window=2), trace
        )
        assert len(map_based) < len(linear)

    def test_off_map_update_with_empty_link(self, straight_map):
        # Drive along the road, then leave it perpendicularly.
        times = np.arange(0.0, 61.0)
        xs = np.where(times <= 30.0, times * 20.0, 600.0)
        ys = np.where(times <= 30.0, 0.0, (times - 30.0) * 20.0)
        trace = Trace(times, np.column_stack((xs, ys)))
        protocol = MapBasedProtocol(
            accuracy=500.0, roadmap=straight_map, estimation_window=2,
            config=MapBasedConfig(matching_tolerance=30.0),
        )
        messages = feed(protocol, trace)
        reasons = [m.reason for m in messages]
        assert UpdateReason.OFF_MAP in reasons
        off_map_message = messages[reasons.index(UpdateReason.OFF_MAP)]
        assert off_map_message.state.link_id is None

    def test_off_map_update_can_be_disabled(self, straight_map):
        times = np.arange(0.0, 61.0)
        xs = np.where(times <= 30.0, times * 20.0, 600.0)
        ys = np.where(times <= 30.0, 0.0, (times - 30.0) * 20.0)
        trace = Trace(times, np.column_stack((xs, ys)))
        protocol = MapBasedProtocol(
            accuracy=10_000.0, roadmap=straight_map, estimation_window=2,
            config=MapBasedConfig(update_on_off_map=False),
        )
        messages = feed(protocol, trace)
        assert all(m.reason is not UpdateReason.OFF_MAP for m in messages)

    def test_reacquire_update_when_enabled(self, straight_map):
        # Leave the road and come back to it.
        times = np.arange(0.0, 91.0)
        xs = np.where(times <= 30.0, times * 20.0, 600.0)
        ys = np.concatenate(
            [np.zeros(31), (np.arange(1, 31)) * 20.0, 600.0 - np.arange(1, 31) * 20.0]
        )
        trace = Trace(times, np.column_stack((xs, ys)))
        protocol = MapBasedProtocol(
            accuracy=10_000.0, roadmap=straight_map, estimation_window=2,
            config=MapBasedConfig(update_on_reacquire=True, reacquire_interval=1),
        )
        messages = feed(protocol, trace)
        assert any(m.reason is UpdateReason.REACQUIRED for m in messages)

    def test_server_error_bounded(self, curved_map):
        times = np.arange(0.0, 101.0)
        xs = np.where(times <= 50.0, times * 20.0, 1000.0)
        ys = np.where(times <= 50.0, 0.0, (times - 50.0) * 20.0)
        trace = Trace(times, np.column_stack((xs, ys)))
        protocol = MapBasedProtocol(accuracy=60.0, roadmap=curved_map, estimation_window=2)
        result = run_simulation(protocol, trace)
        assert result.metrics.max_error <= 60.0 + 20.0 + 1e-6

    def test_matching_statistics_exposed(self, straight_map, straight_trace):
        protocol = MapBasedProtocol(accuracy=100.0, roadmap=straight_map)
        feed(protocol, straight_trace)
        stats = protocol.matching_statistics()
        assert "forward_tracks" in stats

    def test_reset(self, straight_map, straight_trace):
        protocol = MapBasedProtocol(accuracy=100.0, roadmap=straight_map)
        feed(protocol, straight_trace)
        protocol.reset()
        assert protocol.updates_sent == 0
        assert protocol.last_match is None
        assert protocol.matcher.current_link is None


class TestProbabilisticMapBased:
    def test_requires_matching_roadmap(self, straight_map, t_map):
        table = TurnProbabilityTable(t_map)
        with pytest.raises(ValueError):
            ProbabilisticMapBasedProtocol(
                accuracy=100.0, roadmap=straight_map, turn_probabilities=table
            )

    def test_runs_and_matches(self, straight_map, straight_trace):
        table = TurnProbabilityTable(straight_map)
        protocol = ProbabilisticMapBasedProtocol(
            accuracy=100.0, roadmap=straight_map, turn_probabilities=table,
            estimation_window=2,
        )
        messages = feed(protocol, straight_trace)
        assert messages[0].state.link_id is not None

    def test_learned_turns_beat_geometry_on_a_turning_route(self, tiny_city_scenario):
        scenario = tiny_city_scenario
        table = TurnProbabilityTable(scenario.roadmap)
        table.record_route(scenario.route)
        geometric = MapBasedProtocol(
            accuracy=100.0, roadmap=scenario.roadmap,
            sensor_uncertainty=scenario.sensor_sigma,
            estimation_window=scenario.estimation_window,
            config=MapBasedConfig(matching_tolerance=scenario.matching_tolerance),
        )
        probabilistic = ProbabilisticMapBasedProtocol(
            accuracy=100.0, roadmap=scenario.roadmap, turn_probabilities=table,
            sensor_uncertainty=scenario.sensor_sigma,
            estimation_window=scenario.estimation_window,
            config=MapBasedConfig(matching_tolerance=scenario.matching_tolerance),
        )
        geometric_result = run_simulation(geometric, scenario.sensor_trace, scenario.true_trace)
        probabilistic_result = run_simulation(
            probabilistic, scenario.sensor_trace, scenario.true_trace
        )
        assert probabilistic_result.updates <= geometric_result.updates


class TestKnownRouteProtocol:
    def test_no_updates_when_following_route_at_constant_speed(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        protocol = KnownRouteProtocol(
            accuracy=200.0, route=scenario.route,
            sensor_uncertainty=scenario.sensor_sigma,
            estimation_window=scenario.estimation_window,
        )
        result = run_simulation(protocol, scenario.sensor_trace, scenario.true_trace)
        # With the route known, only speed changes can trigger updates: far
        # fewer than the map-based protocol needs on the same trace.
        assert result.updates_per_hour < 200.0

    def test_known_route_not_worse_than_map_based(self, tiny_city_scenario):
        scenario = tiny_city_scenario
        known = KnownRouteProtocol(
            accuracy=150.0, route=scenario.route,
            sensor_uncertainty=scenario.sensor_sigma,
            estimation_window=scenario.estimation_window,
        )
        mapped = MapBasedProtocol(
            accuracy=150.0, roadmap=scenario.roadmap,
            sensor_uncertainty=scenario.sensor_sigma,
            estimation_window=scenario.estimation_window,
            config=MapBasedConfig(matching_tolerance=scenario.matching_tolerance),
        )
        known_result = run_simulation(known, scenario.sensor_trace, scenario.true_trace)
        mapped_result = run_simulation(mapped, scenario.sensor_trace, scenario.true_trace)
        assert known_result.updates <= mapped_result.updates
