"""Offline (whole-trace) map matching.

Used for analysis rather than by the online protocol: given a complete trace
and a road map, produce the matched link id for every sample.  The paper
uses its ground truth for the same purpose implicitly (its simulator knows
which road the object drives on); here the offline matcher also provides the
training data for :class:`~repro.roadmap.probability.TurnProbabilityTable`
when only traces (not ground-truth link ids) are available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.mapmatching.matcher import IncrementalMapMatcher, MatcherConfig
from repro.roadmap.graph import RoadMap
from repro.traces.estimation import StateEstimator
from repro.traces.trace import Trace


@dataclass(frozen=True)
class MatchedTracePoint:
    """Per-sample result of offline matching."""

    time: float
    position: np.ndarray
    link_id: Optional[int]
    matched_position: Optional[np.ndarray]
    distance: Optional[float]


def match_trace(
    trace: Trace, roadmap: RoadMap, config: Optional[MatcherConfig] = None
) -> List[MatchedTracePoint]:
    """Match every sample of *trace* onto *roadmap*.

    The same incremental matcher the protocol uses is run over the whole
    trace; off-map samples yield ``link_id=None``.
    """
    matcher = IncrementalMapMatcher(roadmap, config)
    estimator = StateEstimator(window=4)
    results: List[MatchedTracePoint] = []
    for sample in trace:
        velocity, speed = estimator.update(sample.time, sample.position)
        heading = velocity if speed > 1.0 else None
        match = matcher.update(sample.position, heading=heading)
        if match.is_matched:
            results.append(
                MatchedTracePoint(
                    time=sample.time,
                    position=sample.position,
                    link_id=match.link_id,
                    matched_position=match.position,
                    distance=match.distance,
                )
            )
        else:
            results.append(
                MatchedTracePoint(
                    time=sample.time,
                    position=sample.position,
                    link_id=None,
                    matched_position=None,
                    distance=None,
                )
            )
    return results


def matched_link_sequence(points: List[MatchedTracePoint]) -> List[int]:
    """Collapse per-sample matches into the sequence of distinct links visited.

    Consecutive duplicates are removed and off-map samples are skipped, which
    is the form :meth:`TurnProbabilityTable.record_link_sequence` expects.
    """
    sequence: List[int] = []
    for point in points:
        if point.link_id is None:
            continue
        if not sequence or sequence[-1] != point.link_id:
            sequence.append(point.link_id)
    return sequence


def matching_accuracy(
    points: List[MatchedTracePoint], true_link_ids: List[int], roadmap: RoadMap
) -> float:
    """Fraction of samples matched to the correct link (or its reverse twin).

    The reverse twin counts as correct because a geometric matcher cannot
    distinguish the two carriageways of a two-way road from position alone;
    neither can the paper's.
    """
    if len(points) != len(true_link_ids):
        raise ValueError("points and true_link_ids must have the same length")
    if not points:
        return 0.0
    correct = 0
    for point, true_id in zip(points, true_link_ids):
        if point.link_id is None:
            continue
        if point.link_id == true_id:
            correct += 1
            continue
        true_link = roadmap.link(true_id)
        twin = roadmap.reverse_link(true_link)
        if twin is not None and point.link_id == twin.id:
            correct += 1
    return correct / len(points)
