"""Unit tests for repro.experiments.visualize."""

import numpy as np
import pytest

from repro.experiments.visualize import (
    AsciiCanvas,
    render_route_updates,
    render_update_summary,
)
from repro.geo.bbox import BoundingBox
from repro.traces.trace import Trace


@pytest.fixture()
def canvas():
    return AsciiCanvas(bounds=BoundingBox(0.0, 0.0, 100.0, 100.0), width=20, height=10)


class TestAsciiCanvas:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            AsciiCanvas(bounds=BoundingBox(0, 0, 1, 1), width=1, height=10)

    def test_degenerate_bounds_expanded(self):
        canvas = AsciiCanvas(bounds=BoundingBox(0.0, 0.0, 0.0, 0.0), width=10, height=5)
        canvas.plot_point((0.0, 0.0), "x")
        assert "x" in canvas.render()

    def test_plot_point_inside(self, canvas):
        canvas.plot_point((50.0, 50.0), "x")
        assert "x" in canvas.render()

    def test_plot_point_outside_ignored(self, canvas):
        canvas.plot_point((500.0, 500.0), "x")
        assert "x" not in canvas.render()

    def test_overwrite_false_preserves_existing(self, canvas):
        canvas.plot_point((50.0, 50.0), "A")
        canvas.plot_point((50.0, 50.0), "B", overwrite=False)
        assert "A" in canvas.render()
        assert "B" not in canvas.render()

    def test_polyline_is_connected(self, canvas):
        canvas.plot_polyline([(0.0, 0.0), (100.0, 0.0)], ".")
        bottom_row = canvas.render().splitlines()[-2]
        assert bottom_row.count(".") >= 15

    def test_render_frame(self, canvas):
        lines = canvas.render().splitlines()
        assert lines[0].startswith("+") and lines[0].endswith("+")
        assert len(lines) == 10 + 2
        assert all(len(line) == 22 for line in lines)


class TestRenderRouteUpdates:
    @pytest.fixture()
    def simple_trace(self):
        times = np.arange(0.0, 50.0)
        positions = np.column_stack((times * 20.0, np.zeros_like(times)))
        return Trace(times, positions)

    def test_contains_markers(self, straight_map, simple_trace):
        art = render_route_updates(
            straight_map, simple_trace, [(200.0, 0.0), (600.0, 0.0)], width=60, height=12
        )
        assert "S" in art
        assert "E" in art
        assert "1" in art and "2" in art

    def test_works_without_roadmap(self, simple_trace):
        art = render_route_updates(None, simple_trace, [], width=40, height=8)
        assert "S" in art and "E" in art

    def test_many_updates_use_star(self, simple_trace):
        updates = [(float(x), 0.0) for x in range(0, 980, 70)]
        art = render_route_updates(None, simple_trace, updates, width=80, height=10)
        assert "*" in art

    def test_summary_line(self, simple_trace):
        text = render_update_summary(simple_trace, [(0.0, 0.0)], "linear")
        assert "linear" in text
        assert "1 updates" in text
