"""Unit tests for repro.mobility.vehicle and repro.mobility.pedestrian."""

import random

import numpy as np
import pytest

from repro.mobility.kinematics import DriverProfile
from repro.mobility.pedestrian import PedestrianProfile, PedestrianSimulator
from repro.mobility.vehicle import VehicleSimulator
from repro.roadmap.generators import pedestrian_map, straight_road_map
from repro.roadmap.routing import RoutePlanner


@pytest.fixture(scope="module")
def straight_route():
    roadmap = straight_road_map(length_m=2000.0, n_links=4, speed_limit_kmh=36.0)
    planner = RoutePlanner(roadmap)
    start, _ = roadmap.nearest_intersection((0.0, 0.0))
    end, _ = roadmap.nearest_intersection((2000.0, 0.0))
    return planner.shortest_route(start.id, end.id)


class TestVehicleSimulator:
    def test_invalid_interval(self, straight_route):
        with pytest.raises(ValueError):
            VehicleSimulator(straight_route, DriverProfile(), sample_interval=0.0)

    def test_journey_covers_route(self, straight_route):
        sim = VehicleSimulator(
            straight_route,
            DriverProfile(stop_probability=0.0, speed_noise_sigma=0.0),
            rng=random.Random(0),
        )
        journey = sim.run(name="test drive")
        assert journey.trace.name == "test drive"
        np.testing.assert_allclose(journey.trace.positions[0], straight_route.start)
        np.testing.assert_allclose(journey.trace.positions[-1], straight_route.end, atol=1e-6)
        assert journey.trace.path_length() == pytest.approx(straight_route.length, rel=0.01)

    def test_sampling_interval(self, straight_route):
        sim = VehicleSimulator(straight_route, DriverProfile(), sample_interval=2.0)
        journey = sim.run()
        assert journey.trace.sampling_interval == pytest.approx(2.0)

    def test_speed_respects_limit(self, straight_route):
        profile = DriverProfile(speed_factor=0.9, stop_probability=0.0, speed_noise_sigma=0.0)
        journey = VehicleSimulator(straight_route, profile, rng=random.Random(1)).run()
        assert journey.trace.speeds().max() <= 10.0 * 0.9 + 0.3

    def test_link_ids_follow_route(self, straight_route):
        journey = VehicleSimulator(
            straight_route, DriverProfile(stop_probability=0.0), rng=random.Random(2)
        ).run()
        assert len(journey.link_ids) == len(journey.trace)
        route_link_ids = [l.id for l in straight_route.links]
        # Link ids appear in route order (no jumps backwards).
        indices = [route_link_ids.index(lid) for lid in journey.link_ids]
        assert indices == sorted(indices)

    def test_stops_extend_duration(self, straight_route):
        quiet = DriverProfile(stop_probability=0.0, speed_noise_sigma=0.0)
        stoppy = DriverProfile(
            stop_probability=1.0, stop_duration_range=(20.0, 20.0), speed_noise_sigma=0.0
        )
        duration_quiet = VehicleSimulator(straight_route, quiet, rng=random.Random(3)).run()
        duration_stoppy = VehicleSimulator(straight_route, stoppy, rng=random.Random(3)).run()
        assert duration_stoppy.stop_count == len(straight_route.links) - 1
        assert (
            duration_stoppy.trace.duration
            >= duration_quiet.trace.duration + 3 * 20.0 - 2.0
        )

    def test_extra_stops_extend_duration(self, straight_route):
        quiet = DriverProfile(stop_probability=0.0, speed_noise_sigma=0.0)
        base = VehicleSimulator(straight_route, quiet, rng=random.Random(3)).run()
        dwelling = VehicleSimulator(
            straight_route, quiet, rng=random.Random(3), extra_stops=[(1000.0, 60.0)]
        ).run()
        assert dwelling.trace.duration >= base.trace.duration + 60.0 - 2.0

    def test_extra_stop_at_start_and_coincident_stops_do_not_stall_queue(
        self, straight_route
    ):
        """Regression: a stop at offset 0 (or two stops sharing an offset)
        must not block every later stop in the merged queue."""
        quiet = DriverProfile(stop_probability=0.0, speed_noise_sigma=0.0)
        base = VehicleSimulator(straight_route, quiet, rng=random.Random(3)).run()
        tricky = VehicleSimulator(
            straight_route,
            quiet,
            rng=random.Random(3),
            extra_stops=[(0.0, 30.0), (1000.0, 20.0), (1000.0, 40.0), (1500.0, 50.0)],
        ).run()
        # All four dwells are honoured: 30 at the start, 20+40 merged at
        # 1000 m, 50 at 1500 m.
        assert tricky.trace.duration >= base.trace.duration + 140.0 - 4.0
        assert tricky.stop_count == 3  # start, merged mid, late

    def test_extra_stops_validated(self, straight_route):
        with pytest.raises(ValueError):
            VehicleSimulator(straight_route, DriverProfile(), extra_stops=[(-5.0, 10.0)])
        with pytest.raises(ValueError):
            VehicleSimulator(straight_route, DriverProfile(), extra_stops=[(10.0, -1.0)])
        with pytest.raises(ValueError):
            VehicleSimulator(
                straight_route, DriverProfile(), extra_stops=[(1e9, 10.0)]
            )

    def test_max_duration_truncates(self, straight_route):
        journey = VehicleSimulator(
            straight_route, DriverProfile(), rng=random.Random(4)
        ).run(max_duration=10.0)
        assert journey.trace.duration <= 10.0

    def test_average_speed_helper(self, straight_route):
        journey = VehicleSimulator(
            straight_route, DriverProfile(stop_probability=0.0), rng=random.Random(5)
        ).run()
        assert journey.average_speed() == pytest.approx(
            journey.trace.path_length() / journey.trace.duration
        )


class TestPedestrianSimulator:
    @pytest.fixture(scope="class")
    def walk_route(self):
        roadmap = pedestrian_map(rows=8, cols=8, spacing_m=80.0, seed=1)
        planner = RoutePlanner(roadmap)
        return planner.random_route(min_length=800.0, rng=random.Random(0))

    def test_profile_translation(self):
        profile = PedestrianProfile(walking_speed_factor=0.8, pause_probability=0.2)
        driver = profile.as_driver_profile()
        assert driver.speed_factor == 0.8
        assert driver.stop_probability == 0.2

    def test_walk_speed_is_plausible(self, walk_route):
        sim = PedestrianSimulator(walk_route, rng=random.Random(1))
        journey = sim.run()
        avg_kmh = journey.average_speed() * 3.6
        assert 2.5 <= avg_kmh <= 6.0

    def test_route_property(self, walk_route):
        sim = PedestrianSimulator(walk_route)
        assert sim.route is walk_route

    def test_trace_name(self, walk_route):
        journey = PedestrianSimulator(walk_route, rng=random.Random(2)).run(name="stroll")
        assert journey.trace.name == "stroll"
