"""A6 — robustness against lost update messages (disconnections).

Wolfson's *disconnection detection dead reckoning* (dtdr), summarised in the
paper's related-work section, exists because a lossy or disconnected uplink
makes a silent source indistinguishable from a perfectly predicted one.
This benchmark measures how the accuracy delivered at the server degrades
with increasing message-loss probability for plain linear-prediction DR and
for dtdr on the freeway scenario.
"""

from repro.experiments.ablations import message_loss_robustness
from repro.experiments.report import format_table
from repro.mobility.scenarios import ScenarioName

from conftest import run_once


def test_message_loss_robustness(benchmark, scale):
    rows = run_once(
        benchmark,
        message_loss_robustness,
        scenario_name=ScenarioName.FREEWAY,
        loss_probabilities=(0.0, 0.02, 0.05, 0.1),
        accuracy=100.0,
        scale=min(scale, 0.5),
    )
    print()
    print(format_table(rows, title="A6 — message-loss robustness (freeway, us=100 m)"))

    def by(protocol, loss):
        return next(r for r in rows if r["protocol"] == protocol and r["loss"] == loss)

    # Losses hurt: the p95 error of linear DR grows with the loss probability.
    assert by("linear dr", 0.1)["p95_error_m"] >= by("linear dr", 0.0)["p95_error_m"]
    # dtdr sends more updates than plain linear DR under the same conditions
    # (its threshold shrinks while it hears nothing back)...
    assert by("dtdr", 0.1)["updates_per_hour"] >= by("linear dr", 0.1)["updates_per_hour"]
    # ...and that redundancy buys a smaller tail error under heavy loss.
    assert by("dtdr", 0.1)["p95_error_m"] <= by("linear dr", 0.1)["p95_error_m"] * 1.05
