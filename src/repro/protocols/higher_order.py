"""Higher-order (constant-acceleration) prediction dead reckoning.

The paper lists prediction with higher-order functions as a variant
(Sec. 2) but chooses not to evaluate it, arguing that the map-based protocol
already predicts the geometry better.  The implementation here completes the
protocol family so that the ablation benchmark can quantify that argument:
the acceleration estimate helps during speed changes but hurts whenever the
noisy second derivative is extrapolated too far.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.protocols.base import ObjectState, UpdateProtocol, UpdateReason
from repro.protocols.prediction import PredictionFunction, QuadraticPrediction


class HigherOrderPredictionProtocol(UpdateProtocol):
    """Dead reckoning with constant-acceleration (quadratic) prediction.

    Parameters
    ----------
    accuracy, sensor_uncertainty, estimation_window:
        As for every protocol (see :class:`~repro.protocols.base.UpdateProtocol`).
    acceleration_window:
        Number of recent velocity estimates used to estimate the
        acceleration vector by finite differences.
    max_horizon:
        Prediction horizon (seconds) beyond which the acceleration term is
        frozen to avoid divergence.
    """

    name = "higher-order prediction dead reckoning"

    def __init__(
        self,
        accuracy: float,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
        acceleration_window: int = 4,
        max_horizon: float = 30.0,
    ):
        super().__init__(accuracy, sensor_uncertainty, estimation_window)
        if acceleration_window < 2:
            raise ValueError("acceleration_window must be at least 2")
        self._prediction = QuadraticPrediction(max_horizon=max_horizon)
        self._velocities: Deque[tuple[float, np.ndarray]] = deque(maxlen=acceleration_window)

    def prediction_function(self) -> PredictionFunction:
        return self._prediction

    def _pre_decision_hook(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> None:
        self._velocities.append((time, velocity.copy()))

    def _current_acceleration(self) -> Optional[np.ndarray]:
        if len(self._velocities) < 2:
            return None
        (t0, v0), (t1, v1) = self._velocities[0], self._velocities[-1]
        dt = t1 - t0
        if dt <= 0:
            return None
        return (v1 - v0) / dt

    def _build_state(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> ObjectState:
        return ObjectState(
            time=time,
            position=position,
            velocity=velocity,
            speed=speed,
            uncertainty=self.sensor_uncertainty,
            acceleration=self._current_acceleration(),
        )

    def _should_update(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> Optional[UpdateReason]:
        if self._threshold_exceeded(time, position):
            return UpdateReason.THRESHOLD
        return None

    def _detach_clone_state(self) -> None:
        super()._detach_clone_state()
        self._velocities = deque(maxlen=self._velocities.maxlen)

    def reset(self) -> None:
        super().reset()
        self._velocities.clear()
