"""Unit tests for repro.traces.estimation."""

import numpy as np
import pytest

from repro.traces.estimation import (
    StateEstimator,
    estimate_trace,
    estimate_velocity,
    recommended_window,
)


class TestEstimateTrace:
    """The batched estimator must be bitwise identical to the streaming one."""

    @staticmethod
    def _streaming(times, positions, window):
        estimator = StateEstimator(window=window)
        velocities = np.zeros((len(times), 2))
        speeds = np.zeros(len(times))
        for i in range(len(times)):
            velocities[i], speeds[i] = estimator.update(float(times[i]), positions[i])
        return velocities, speeds

    @pytest.mark.parametrize("window", [2, 3, 4, 8])
    def test_matches_streaming_estimator_bitwise(self, window):
        rng = np.random.default_rng(7)
        n = 200
        times = np.cumsum(rng.uniform(0.5, 2.0, size=n))  # irregular sampling
        positions = np.cumsum(rng.normal(0.0, 5.0, size=(n, 2)), axis=0)
        expected_v, expected_s = self._streaming(times, positions, window)
        got_v, got_s = estimate_trace(times, positions, window)
        assert np.array_equal(expected_v, got_v)
        assert np.array_equal(expected_s, got_s)

    def test_short_traces(self):
        velocities, speeds = estimate_trace(np.array([0.0]), np.zeros((1, 2)), 4)
        assert velocities.tolist() == [[0.0, 0.0]]
        assert speeds.tolist() == [0.0]

    def test_duplicate_timestamps_degenerate_to_zero(self):
        times = np.array([1.0, 1.0, 1.0])
        positions = np.array([[0.0, 0.0], [5.0, 0.0], [9.0, 0.0]])
        _, speeds = estimate_trace(times, positions, 3)
        expected_v, expected_s = self._streaming(times, positions, 3)
        assert np.array_equal(speeds, expected_s)

    def test_window_below_two_rejected(self):
        with pytest.raises(ValueError):
            estimate_trace(np.arange(3.0), np.zeros((3, 2)), 1)


class TestEstimateVelocity:
    def test_constant_velocity_exact(self):
        times = np.arange(5.0)
        positions = np.column_stack((times * 10.0, times * -5.0))
        velocity, speed = estimate_velocity(times, positions)
        np.testing.assert_allclose(velocity, [10.0, -5.0], atol=1e-9)
        assert speed == pytest.approx(np.hypot(10.0, 5.0))

    def test_single_sample_is_zero(self):
        velocity, speed = estimate_velocity(np.array([0.0]), np.array([[1.0, 2.0]]))
        assert speed == 0.0
        assert velocity.tolist() == [0.0, 0.0]

    def test_two_samples_finite_difference(self):
        velocity, speed = estimate_velocity(
            np.array([0.0, 2.0]), np.array([[0.0, 0.0], [10.0, 0.0]])
        )
        np.testing.assert_allclose(velocity, [5.0, 0.0])
        assert speed == pytest.approx(5.0)

    def test_identical_times_return_zero(self):
        velocity, speed = estimate_velocity(
            np.array([1.0, 1.0]), np.array([[0.0, 0.0], [10.0, 0.0]])
        )
        assert speed == 0.0

    def test_noise_averaging(self):
        rng = np.random.default_rng(0)
        times = np.arange(20.0)
        truth = np.column_stack((times * 20.0, np.zeros_like(times)))
        noisy = truth + rng.normal(0.0, 2.0, size=truth.shape)
        _, speed_small = estimate_velocity(times[-2:], noisy[-2:])
        _, speed_large = estimate_velocity(times, noisy)
        assert abs(speed_large - 20.0) < abs(speed_small - 20.0) + 2.0


class TestStateEstimator:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            StateEstimator(window=1)

    def test_first_update_zero(self):
        estimator = StateEstimator(window=4)
        velocity, speed = estimator.update(0.0, (0.0, 0.0))
        assert speed == 0.0

    def test_converges_to_constant_velocity(self):
        estimator = StateEstimator(window=4)
        for t in range(10):
            velocity, speed = estimator.update(float(t), (t * 15.0, 0.0))
        np.testing.assert_allclose(velocity, [15.0, 0.0], atol=1e-9)
        assert speed == pytest.approx(15.0)

    def test_window_limits_memory(self):
        estimator = StateEstimator(window=2)
        estimator.update(0.0, (0.0, 0.0))
        estimator.update(1.0, (100.0, 0.0))
        velocity, speed = estimator.update(2.0, (100.0, 0.0))
        # With a window of 2, the old fast movement is forgotten: speed is 0.
        assert speed == pytest.approx(0.0, abs=1e-9)

    def test_n_samples_and_reset(self):
        estimator = StateEstimator(window=4)
        estimator.update(0.0, (0.0, 0.0))
        estimator.update(1.0, (1.0, 0.0))
        assert estimator.n_samples == 2
        estimator.reset()
        assert estimator.n_samples == 0
        _, speed = estimator.update(5.0, (0.0, 0.0))
        assert speed == 0.0

    def test_current_direction(self):
        estimator = StateEstimator(window=3)
        estimator.update(0.0, (0.0, 0.0))
        estimator.update(1.0, (0.0, 10.0))
        direction = estimator.current_direction()
        np.testing.assert_allclose(direction, [0.0, 1.0], atol=1e-9)

    def test_current_direction_unknown(self):
        estimator = StateEstimator(window=3)
        assert estimator.current_direction().tolist() == [0.0, 0.0]


class TestRecommendedWindow:
    def test_freeway_speeds(self):
        assert recommended_window(30.0) == 2  # ~108 km/h

    def test_urban_speeds(self):
        assert recommended_window(10.0) == 4  # ~36 km/h

    def test_walking_speeds(self):
        assert recommended_window(1.3) == 8
