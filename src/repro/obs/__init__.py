"""Unified observability: metrics, tracing and provenance for every layer.

The reproduction's argument is quantitative — update counts, message
costs, latency distributions — so counting and timing deserve one shared
instrument instead of ad-hoc ``perf_counter`` calls per benchmark.  The
``obs`` package provides it in three pieces:

* :mod:`repro.obs.metrics` — a deterministic registry of counters, gauges,
  histograms and latency recorders whose ``merge()`` is commutative, so
  per-worker registries from a ``processes=N`` run fold back bit-identically;
* :mod:`repro.obs.trace` — nested wall-time spans exported as Chrome
  ``trace_event`` JSON (open in Perfetto), plus a bounded flight recorder
  of recent kernel events dumped on error;
* :mod:`repro.obs.manifest` — run provenance (git SHA, seed, config hash,
  toolchain versions) stamped into artifacts.

:class:`Observability` bundles one of each and is the single handle the
instrumented layers accept (``FleetSimulation(..., obs=...)``,
``LiveLocationServer(..., obs=...)``, ``repro fleet --obs``).  The
contract with the rest of the repository is **no-op when absent**: every
hook sits behind an ``obs is None`` check, hot loops read the flag once
before entering, and nothing about results, goldens or bit-identity
changes when observability is enabled — the instruments only *watch*.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.obs.manifest import build_manifest, config_hash, git_revision
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LatencyRecorder,
    MetricsRegistry,
    nearest_rank,
    publish_service_stats,
)
from repro.obs.trace import (
    FlightRecorder,
    Span,
    SpanTracer,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LatencyRecorder",
    "MetricsRegistry",
    "Observability",
    "Span",
    "SpanTracer",
    "build_manifest",
    "config_hash",
    "git_revision",
    "nearest_rank",
    "publish_service_stats",
    "validate_chrome_trace",
]

_logger = logging.getLogger(__name__)


class Observability:
    """One registry + tracer + flight recorder, passed around as a unit.

    Pickles cleanly (fleet workers build their own and ship the registry
    back), and exposes thin pass-throughs so instrumented code reads as
    ``obs.counter("kernel.events.sample").inc()`` without reaching into
    the bundle's internals.
    """

    __slots__ = ("registry", "tracer", "flight")

    def __init__(self, flight_capacity: int = 256):
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer()
        self.flight = FlightRecorder(flight_capacity)

    # ------------------------------------------------------------------ #
    # instrument pass-throughs
    # ------------------------------------------------------------------ #
    def counter(self, name: str, deterministic: bool = True) -> Counter:
        return self.registry.counter(name, deterministic=deterministic)

    def gauge(self, name: str, mode: str = "max", deterministic: bool = False) -> Gauge:
        return self.registry.gauge(name, mode=mode, deterministic=deterministic)

    def histogram(
        self, name: str, bounds: Sequence[float], deterministic: bool = False
    ) -> Histogram:
        return self.registry.histogram(name, bounds, deterministic=deterministic)

    def latency(self, name: str) -> LatencyRecorder:
        return self.registry.latency(name)

    def span(self, name: str, cat: str = "repro", args: Optional[Dict] = None) -> Span:
        return self.tracer.span(name, cat=cat, args=args)

    def instant(self, name: str, cat: str = "repro", args: Optional[Dict] = None) -> None:
        self.tracer.instant(name, cat=cat, args=args)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def report(self) -> Dict[str, object]:
        """Both metric views: everything, and the deterministic subset."""
        return {
            "metrics": self.registry.snapshot(),
            "deterministic_metrics": self.registry.snapshot(deterministic_only=True),
        }

    def dump_flight(self, reason: str = "") -> int:
        """Log the flight-recorder ring (crash path); returns event count."""
        count = len(self.flight)
        if count:
            _logger.error(
                "flight recorder%s — last %d kernel events:\n%s",
                f" ({reason})" if reason else "",
                count,
                self.flight.format(),
            )
        return count

    def write(
        self,
        directory: Union[str, Path],
        seed: Optional[int] = None,
        config: Optional[Mapping[str, object]] = None,
        timings: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, str]:
        """Write ``metrics.json``, ``trace.json`` and ``manifest.json``.

        Returns the written paths by artifact name.  ``metrics.json``
        carries both snapshot views plus the Prometheus exposition;
        ``trace.json`` is a Chrome-trace document Perfetto opens directly.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        artifacts = {
            "metrics": {
                **self.report(),
                "prometheus": self.registry.to_prometheus(),
            },
            "trace": self.tracer.to_chrome(),
            "manifest": build_manifest(seed=seed, config=config, timings=timings),
        }
        paths: Dict[str, str] = {}
        for name, payload in artifacts.items():
            path = directory / f"{name}.json"
            path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            paths[name] = str(path)
        _logger.info("observability artifacts written to %s", directory)
        return paths
