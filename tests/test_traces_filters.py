"""Unit tests for repro.traces.filters."""

import numpy as np
import pytest

from repro.traces.filters import AlphaBetaFilter, MovingAverageFilter
from repro.traces.noise import GaussianNoise
from repro.traces.trace import Trace


@pytest.fixture()
def noisy_walk():
    times = np.arange(0.0, 400.0)
    truth = np.column_stack((times * 1.3, np.zeros_like(times)))
    noisy = GaussianNoise(sigma=3.0, seed=0).apply(Trace(times, truth))
    return Trace(times, truth), noisy


class TestMovingAverageFilter:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MovingAverageFilter(window=0)

    def test_window_one_is_identity(self, straight_trace):
        filtered = MovingAverageFilter(window=1).filter_trace(straight_trace)
        np.testing.assert_allclose(filtered.positions, straight_trace.positions)

    def test_constant_signal_unchanged(self):
        times = np.arange(0.0, 20.0)
        trace = Trace(times, np.full((20, 2), 7.0))
        filtered = MovingAverageFilter(window=5).filter_trace(trace)
        np.testing.assert_allclose(filtered.positions, trace.positions)

    def test_reduces_noise(self, noisy_walk):
        truth, noisy = noisy_walk
        filtered = MovingAverageFilter(window=5).filter_trace(noisy)
        raw_error = np.hypot(*(noisy.positions - truth.positions).T)
        filtered_error = np.hypot(*(filtered.positions - truth.positions).T)
        assert filtered_error.mean() < raw_error.mean()

    def test_update_and_reset(self):
        filt = MovingAverageFilter(window=3)
        filt.update(0.0, (0.0, 0.0))
        out = filt.update(1.0, (6.0, 0.0))
        assert out[0] == pytest.approx(3.0)
        filt.reset()
        out = filt.update(2.0, (10.0, 0.0))
        assert out[0] == pytest.approx(10.0)


class TestAlphaBetaFilter:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AlphaBetaFilter(alpha=0.0)
        with pytest.raises(ValueError):
            AlphaBetaFilter(alpha=1.5)
        with pytest.raises(ValueError):
            AlphaBetaFilter(beta=0.0)
        with pytest.raises(ValueError):
            AlphaBetaFilter(beta=2.5)

    def test_first_sample_passthrough(self):
        filt = AlphaBetaFilter()
        out = filt.update(0.0, (5.0, 5.0))
        np.testing.assert_allclose(out, [5.0, 5.0])

    def test_non_increasing_time_rejected(self):
        filt = AlphaBetaFilter()
        filt.update(0.0, (0.0, 0.0))
        with pytest.raises(ValueError):
            filt.update(0.0, (1.0, 0.0))

    def test_tracks_constant_velocity(self, straight_trace):
        filt = AlphaBetaFilter(alpha=0.85, beta=0.3)
        filtered = filt.filter_trace(straight_trace)
        # After convergence the filtered positions follow the truth closely.
        tail_error = np.hypot(
            *(filtered.positions[20:] - straight_trace.positions[20:]).T
        )
        assert tail_error.max() < 1.0

    def test_velocity_estimate_converges(self, straight_trace):
        filt = AlphaBetaFilter()
        for t, p in zip(straight_trace.times, straight_trace.positions):
            filt.update(t, p)
        assert filt.velocity[0] == pytest.approx(20.0, rel=0.05)
        assert abs(filt.velocity[1]) < 0.5

    def test_reduces_noise(self, noisy_walk):
        truth, noisy = noisy_walk
        filtered = AlphaBetaFilter(alpha=0.5, beta=0.1).filter_trace(noisy)
        raw_error = np.hypot(*(noisy.positions - truth.positions).T)
        filtered_error = np.hypot(*(filtered.positions - truth.positions).T)
        assert filtered_error[50:].mean() < raw_error[50:].mean()

    def test_reset(self):
        filt = AlphaBetaFilter()
        filt.update(0.0, (0.0, 0.0))
        filt.update(1.0, (10.0, 0.0))
        filt.reset()
        assert filt.velocity.tolist() == [0.0, 0.0]
        out = filt.update(5.0, (100.0, 0.0))
        np.testing.assert_allclose(out, [100.0, 0.0])
