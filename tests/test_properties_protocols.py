"""Property-based tests of the protocol accuracy invariant (hypothesis).

The central guarantee of every accuracy-bounded protocol (paper Sec. 2): as
long as source and server share the prediction function, the server-side
position error never exceeds the requested accuracy ``us`` by more than the
sensor uncertainty plus the movement within one sampling interval (the
deviation is only checked once per sighting).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.higher_order import HigherOrderPredictionProtocol
from repro.protocols.reporting import DistanceBasedReporting, MovementBasedReporting
from repro.sim.engine import run_simulation
from repro.traces.trace import Trace


@st.composite
def random_walk_trace(draw):
    """A random trace with bounded per-step movement (max 40 m/s)."""
    n = draw(st.integers(min_value=5, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    # Piecewise-constant heading and speed, changed at random instants:
    # resembles real movement better than white-noise steps.
    times = np.arange(float(n))
    headings = np.cumsum(rng.normal(0.0, 0.4, size=n))
    speeds = np.abs(rng.normal(15.0, 10.0, size=n)).clip(0.0, 40.0)
    steps = np.column_stack((np.cos(headings), np.sin(headings))) * speeds[:, None]
    positions = np.cumsum(steps, axis=0)
    return Trace(times, positions)


MAX_STEP = 40.0  # matches the speed clip in the strategy above


@settings(max_examples=30, deadline=None)
@given(trace=random_walk_trace(), accuracy=st.floats(min_value=30.0, max_value=400.0))
def test_distance_based_error_bounded(trace, accuracy):
    result = run_simulation(DistanceBasedReporting(accuracy=accuracy), trace)
    assert result.metrics.max_error <= accuracy + MAX_STEP + 1e-6


@settings(max_examples=30, deadline=None)
@given(trace=random_walk_trace(), accuracy=st.floats(min_value=30.0, max_value=400.0))
def test_linear_prediction_error_bounded(trace, accuracy):
    result = run_simulation(
        LinearPredictionProtocol(accuracy=accuracy, estimation_window=2), trace
    )
    assert result.metrics.max_error <= accuracy + MAX_STEP + 1e-6


@settings(max_examples=20, deadline=None)
@given(trace=random_walk_trace(), accuracy=st.floats(min_value=30.0, max_value=400.0))
def test_higher_order_error_bounded(trace, accuracy):
    result = run_simulation(
        HigherOrderPredictionProtocol(accuracy=accuracy, estimation_window=2), trace
    )
    assert result.metrics.max_error <= accuracy + MAX_STEP + 1e-6


@settings(max_examples=20, deadline=None)
@given(trace=random_walk_trace(), accuracy=st.floats(min_value=30.0, max_value=400.0))
def test_movement_based_error_bounded(trace, accuracy):
    # Movement-based reporting bounds the travelled path, which in turn
    # bounds the displacement from the last report.
    result = run_simulation(MovementBasedReporting(accuracy=accuracy), trace)
    assert result.metrics.max_error <= accuracy + MAX_STEP + 1e-6


@settings(max_examples=30, deadline=None)
@given(trace=random_walk_trace(), accuracy=st.floats(min_value=30.0, max_value=400.0))
def test_distance_based_update_count_bounded_by_path_length(trace, accuracy):
    """Between two distance-based updates the object must travel at least ``us``.

    Hence the total number of updates is bounded by path_length / us plus the
    initial update (and one partial interval).
    """
    result = run_simulation(DistanceBasedReporting(accuracy=accuracy), trace)
    assert result.updates <= trace.path_length() / accuracy + 2


@settings(max_examples=30, deadline=None)
@given(trace=random_walk_trace(), accuracy=st.floats(min_value=30.0, max_value=400.0))
def test_update_count_conservation(trace, accuracy):
    """The engine's update count equals the protocol's own count and the reasons add up."""
    protocol = LinearPredictionProtocol(accuracy=accuracy, estimation_window=2)
    result = run_simulation(protocol, trace)
    assert result.updates == protocol.updates_sent
    assert sum(result.update_reasons.values()) == result.updates
