"""Property tests for the ingest invariants (satellite of the ingest PR).

Over randomly drawn synthetic-OSM towns, the conditioning pipeline must
hold four invariants:

* every emitted link has strictly positive length,
* the contracted graph stays connected (conditioning keeps exactly one
  component, so contraction must not sever anything),
* junction degrees are preserved — a node surviving contraction has the
  same out-degree in the raw and the contracted graph,
* shortest-path distances between junctions are identical (up to float
  summation order) on the raw and the contracted graph: contraction
  changes the graph, never the road geometry.

Plus the determinism contracts: the fixture generator is byte-stable per
seed, and the bundled ``tests/data/miniville.osm`` is exactly the
generator's output, so the committed extract can never drift.
"""

from pathlib import Path

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ingest import (
    compile_roadmap,
    load_osm,
    project_network,
    synthetic_town_xml,
)

FIXTURE_PATH = Path(__file__).parent / "data" / "miniville.osm"

towns = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "rows": st.integers(min_value=3, max_value=6),
        "cols": st.integers(min_value=3, max_value=6),
        "chain_step_m": st.sampled_from([45.0, 70.0, 110.0]),
    }
)


def _compiled_pair(params):
    projected = project_network(load_osm(synthetic_town_xml(**params)))
    compact = compile_roadmap(projected, contract=True, source="property")
    raw = compile_roadmap(projected, contract=False, source="property")
    return raw.roadmap, compact.roadmap


@settings(max_examples=12, deadline=None)
@given(params=towns)
def test_every_link_has_positive_length(params):
    raw, compact = _compiled_pair(params)
    for roadmap in (raw, compact):
        assert all(link.length > 0.0 for link in roadmap.links.values())


@settings(max_examples=12, deadline=None)
@given(params=towns)
def test_contracted_graph_is_connected(params):
    _, compact = _compiled_pair(params)
    assert nx.is_weakly_connected(compact.to_networkx())


@settings(max_examples=12, deadline=None)
@given(params=towns)
def test_junction_degrees_preserved(params):
    raw, compact = _compiled_pair(params)
    for node_id in compact.intersections:
        assert raw.degree(node_id) == compact.degree(node_id), (
            f"out-degree of junction {node_id} changed under contraction"
        )
        assert len(raw.incoming_links(node_id)) == len(compact.incoming_links(node_id))


@settings(max_examples=8, deadline=None)
@given(params=towns, pair_seed=st.integers(min_value=0, max_value=999))
def test_shortest_path_distances_identical(params, pair_seed):
    raw, compact = _compiled_pair(params)
    raw_graph = raw.to_networkx()
    compact_graph = compact.to_networkx()
    junctions = sorted(compact.intersections)
    rng = np.random.default_rng(pair_seed)
    for _ in range(6):
        a, b = (junctions[i] for i in rng.choice(len(junctions), size=2, replace=False))
        try:
            on_compact = nx.shortest_path_length(compact_graph, a, b, weight="length")
        except nx.NetworkXNoPath:
            with pytest.raises(nx.NetworkXNoPath):
                nx.shortest_path_length(raw_graph, a, b, weight="length")
            continue
        on_raw = nx.shortest_path_length(raw_graph, a, b, weight="length")
        # Identical up to float summation order (the raw path adds segment
        # lengths one by one; the chain pre-sums them).
        assert on_raw == pytest.approx(on_compact, rel=1e-9, abs=1e-6)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_fixture_generator_is_deterministic(seed):
    assert synthetic_town_xml(seed=seed) == synthetic_town_xml(seed=seed)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_total_length_preserved_by_contraction(seed):
    projected = project_network(load_osm(synthetic_town_xml(seed=seed, rows=4, cols=4)))
    compact = compile_roadmap(projected, contract=True).roadmap
    raw = compile_roadmap(projected, contract=False).roadmap
    assert compact.total_length() == pytest.approx(raw.total_length(), rel=1e-9)


def test_bundled_fixture_matches_generator():
    """tests/data/miniville.osm is exactly synthetic_town_xml(seed=7)."""
    committed = FIXTURE_PATH.read_text(encoding="utf-8")
    assert committed == synthetic_town_xml(seed=7), (
        "the bundled fixture drifted from the generator; regenerate it with "
        "python -c \"from repro.ingest import write_fixture_xml; "
        "write_fixture_xml('tests/data/miniville.osm', seed=7)\""
    )


def test_bundled_fixture_compiles():
    compiled = compile_roadmap(project_network(load_osm(FIXTURE_PATH)), source="miniville")
    assert compiled.roadmap.num_intersections() == 36
    assert compiled.report.components_dropped == 1  # the island
    assert compiled.report.stub_segments_pruned >= 3  # the cul-de-sacs
    assert compiled.report.nodes_contracted > 100  # the bead chains
