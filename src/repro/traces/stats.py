"""Trace statistics (the quantities of the paper's Table 1).

Table 1 characterises each recorded GPS trace by its length, duration,
average speed and maximum speed.  :func:`compute_statistics` derives the same
quantities from a :class:`~repro.traces.Trace`, with the same caveat the
paper notes: the maximum speed read off a noisy GPS trace overestimates the
true maximum, so a smoothed maximum is reported as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.trace import Trace


@dataclass(frozen=True)
class TraceStatistics:
    """Summary of a trace, mirroring the columns of the paper's Table 1."""

    name: str
    length_km: float
    duration_h: float
    average_speed_kmh: float
    max_speed_kmh: float
    smoothed_max_speed_kmh: float
    n_samples: int
    sampling_interval_s: float

    def as_row(self) -> dict:
        """Dictionary with human-friendly keys, used by the report renderer."""
        return {
            "trace": self.name,
            "length [km]": round(self.length_km, 1),
            "duration [h]": round(self.duration_h, 2),
            "avg speed [km/h]": round(self.average_speed_kmh, 1),
            "max speed [km/h]": round(self.max_speed_kmh, 1),
            "samples": self.n_samples,
        }


def compute_statistics(trace: Trace, smoothing_window_s: float = 5.0) -> TraceStatistics:
    """Compute Table 1 style statistics for *trace*.

    Parameters
    ----------
    trace:
        The trace to summarise.
    smoothing_window_s:
        Width of the moving-average window applied to the speed series before
        taking the smoothed maximum; compensates for the sensor-noise induced
        overestimate the paper's footnote mentions.
    """
    length_m = trace.path_length()
    duration_s = trace.duration
    speeds = trace.speeds()
    if len(speeds) == 0:
        max_speed = 0.0
        smoothed_max = 0.0
        avg_speed = 0.0
    else:
        max_speed = float(speeds.max())
        interval = trace.sampling_interval or 1.0
        window = max(1, int(round(smoothing_window_s / interval)))
        if window > 1 and len(speeds) >= window:
            kernel = np.ones(window) / window
            smoothed = np.convolve(speeds, kernel, mode="valid")
            smoothed_max = float(smoothed.max())
        else:
            smoothed_max = max_speed
        avg_speed = length_m / duration_s if duration_s > 0 else 0.0

    return TraceStatistics(
        name=trace.name,
        length_km=length_m / 1000.0,
        duration_h=duration_s / 3600.0,
        average_speed_kmh=avg_speed * 3.6,
        max_speed_kmh=max_speed * 3.6,
        smoothed_max_speed_kmh=smoothed_max * 3.6,
        n_samples=len(trace),
        sampling_interval_s=trace.sampling_interval,
    )
