"""Application-level queries against the location server.

The paper motivates the location service with queries such as "find the
nearest taxi cab depending on the user's current location" and "address all
users that are currently inside a department of a store" (Sec. 1).  These
helpers implement the standard flavours as linear scans over the server's
predicted positions.

They are the *reference* implementations: exact, easy to audit, O(fleet)
per query.  The sharded service tier
(:class:`~repro.service.facade.LocationService`) answers the same queries
through incremental spatial indexes and is asserted bit-identical to these
scans by the test-suite.  Because they accept any object exposing the
:class:`~repro.service.server.LocationServer` query surface, they also run
unchanged against a :class:`LocationService`.

Edge cases are well-defined rather than exceptional: a position query for
an unknown object, and range / nearest / geofence queries against an empty
server (or before any update has arrived) return empty / ``None`` results.
Nearest-object answers are deterministically tie-broken by
``(distance, object_id)`` so that sharded and single-server answers are
reproducible and comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.vec import Vec2, as_vec, distance
from repro.service.server import LocationServer


@dataclass(frozen=True)
class PositionQueryResult:
    """Answer to a position query."""

    object_id: str
    position: Optional[np.ndarray]
    accuracy: float
    last_update_time: Optional[float]


def position_query(server: LocationServer, object_id: str, time: float) -> PositionQueryResult:
    """Where is *object_id* (assumed to be) at *time*?

    The answer carries the accuracy the source guarantees, so applications
    can reason about the uncertainty of the returned position.  An unknown
    object id yields a well-defined empty answer (``position=None``,
    infinite accuracy, no update time) instead of an exception — mirroring
    an object that has never reported.
    """
    if not server.is_registered(object_id):
        return PositionQueryResult(
            object_id=object_id,
            position=None,
            accuracy=float("inf"),
            last_update_time=None,
        )
    record = server.tracked_object(object_id)
    return PositionQueryResult(
        object_id=object_id,
        position=record.predict(time),
        accuracy=record.accuracy,
        last_update_time=record.last_update_time,
    )


def range_query(
    server: LocationServer, area: BoundingBox, time: float, margin: float = 0.0
) -> List[str]:
    """All objects whose predicted position lies inside *area* at *time*.

    *margin* grows the area by the per-object accuracy bound when positive
    multiples of it are desired (e.g. ``margin=1.0`` adds one accuracy radius),
    so that the query never misses an object that could actually be inside.
    An empty server — or one where no object has reported yet — yields an
    empty list.
    """
    hits: List[str] = []
    for object_id in server.object_ids():
        record = server.tracked_object(object_id)
        predicted = record.predict(time)
        if predicted is None:
            continue
        effective_area = area
        if margin > 0.0 and record.accuracy != float("inf"):
            effective_area = area.expanded(margin * record.accuracy)
        if effective_area.contains_point(predicted):
            hits.append(object_id)
    return sorted(hits)


def nearest_object_query(
    server: LocationServer, point: Vec2, time: float, k: int = 1
) -> List[Tuple[str, float]]:
    """The *k* objects predicted to be closest to *point* at *time*.

    Returns ``(object_id, distance)`` pairs sorted by distance, with exact
    ties broken by object id — so the answer is independent of registration
    order and identical between the sharded and single-server paths.
    Objects that have never reported are ignored; an empty server yields an
    empty list.
    """
    p = as_vec(point)
    scored: List[Tuple[str, float]] = []
    for object_id, predicted in server.all_positions(time).items():
        scored.append((object_id, distance(predicted, p)))
    scored.sort(key=lambda pair: (pair[1], pair[0]))
    return scored[: max(0, k)]


def geofence_query(
    server: LocationServer, point: Vec2, radius: float, time: float
) -> List[Tuple[str, float]]:
    """All objects predicted within *radius* metres of *point* at *time*.

    The "address all users currently inside an area" query (paper Sec. 1)
    for circular areas.  Returns ``(object_id, distance)`` pairs sorted by
    ``(distance, object_id)``; a negative radius, an empty server, or a
    server where nothing has reported yet all yield an empty list.
    """
    if radius < 0:
        return []
    p = as_vec(point)
    scored: List[Tuple[str, float]] = []
    for object_id, predicted in server.all_positions(time).items():
        d = distance(predicted, p)
        if d <= radius:
            scored.append((object_id, d))
    scored.sort(key=lambda pair: (pair[1], pair[0]))
    return scored
