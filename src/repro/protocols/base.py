"""Common machinery shared by all update protocols.

The general dead-reckoning mechanism of the paper (Fig. 1):

* the *source* observes sensor sightings ``(t, position)``;
* it maintains the last *reported* object state ``or`` and predicts the
  position the server currently assumes with the shared prediction function
  ``pred(or, param, t)``;
* when ``Distance(op.pos, pred(or, param, t)) + up > us`` it sends an update
  containing the current object state.

:class:`UpdateProtocol` implements that loop once; concrete protocols
provide the prediction function, the content of the transmitted state and
(for the non-DR baselines) a different trigger condition.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.geo.vec import Vec2, as_vec, distance, norm
from repro.protocols.prediction import PredictionFunction
from repro.traces.estimation import StateEstimator


class UpdateReason(enum.Enum):
    """Why an update message was transmitted."""

    INITIAL = "initial"
    """First sighting: the server knows nothing yet."""

    THRESHOLD = "threshold"
    """The predicted position deviated from the actual one by more than ``us``."""

    TIMER = "timer"
    """Periodic (time-based) update."""

    OFF_MAP = "off_map"
    """The map-based source lost its link and falls back to linear prediction."""

    REACQUIRED = "reacquired"
    """The map-based source found a link again and returns to map prediction."""

    FINAL = "final"
    """Explicit flush at the end of a trace (not counted by the evaluation)."""


@dataclass(frozen=True, slots=True)
class ObjectState:
    """The state of the mobile object as transmitted in an update.

    Mirrors the paper's ``o``: position, speed, direction of movement and a
    timestamp, optionally extended with the current link for the map-based
    protocol (``o.l``) and the offset of the (corrected) position along it.

    Slotted: one instance exists per transmitted update, and the server
    keeps the latest one per tracked object, so the ``__dict__`` saving
    scales with the fleet.
    """

    time: float
    position: np.ndarray
    velocity: np.ndarray
    speed: float
    link_id: Optional[int] = None
    link_offset: Optional[float] = None
    uncertainty: float = 0.0
    acceleration: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", as_vec(self.position))
        object.__setattr__(self, "velocity", as_vec(self.velocity))
        if self.acceleration is not None:
            object.__setattr__(self, "acceleration", as_vec(self.acceleration))
        if self.speed < 0:
            raise ValueError("speed must be non-negative")

    @property
    def direction(self) -> np.ndarray:
        """Unit direction of movement (zero vector when stationary)."""
        if self.speed == 0.0:
            return np.zeros(2)
        n = norm(self.velocity)
        if n == 0.0:
            return np.zeros(2)
        return self.velocity / n

    def with_link(self, link_id: Optional[int], link_offset: Optional[float]) -> "ObjectState":
        """A copy of the state with different link information."""
        return replace(self, link_id=link_id, link_offset=link_offset)


#: Rough wire sizes in bytes, used for the bandwidth metric: timestamp (8),
#: position (2 x 8), speed (4), direction (4), and optionally a link id (4).
_BASE_UPDATE_BYTES = 8 + 16 + 4 + 4
_LINK_FIELD_BYTES = 4


@dataclass(frozen=True, slots=True)
class UpdateMessage:
    """A location update transmitted from the source to the server."""

    sequence: int
    state: ObjectState
    reason: UpdateReason

    @property
    def size_bytes(self) -> int:
        """Approximate message payload size in bytes."""
        size = _BASE_UPDATE_BYTES
        if self.state.link_id is not None:
            size += _LINK_FIELD_BYTES
        return size


class UpdateProtocol(abc.ABC):
    """Source-side protocol machine.

    Parameters
    ----------
    accuracy:
        The requested accuracy ``us`` at the server, in metres.
    sensor_uncertainty:
        The sensor uncertainty ``up`` in metres; added to the measured
        deviation before comparing against ``us`` so the guarantee holds for
        the *true* position, as in the paper's pseudo code.
    estimation_window:
        Number of recent sightings used to estimate speed and heading
        (the paper's *n*; see :mod:`repro.traces.estimation`).
    """

    #: Human-readable protocol name used in reports and figures.
    name: str = "abstract"

    def __init__(
        self,
        accuracy: float,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
    ):
        if accuracy <= 0:
            raise ValueError("accuracy (us) must be positive")
        if sensor_uncertainty < 0:
            raise ValueError("sensor_uncertainty (up) must be non-negative")
        self.accuracy = float(accuracy)
        self.sensor_uncertainty = float(sensor_uncertainty)
        self.estimator = StateEstimator(window=estimation_window)
        self._last_reported: Optional[ObjectState] = None
        self._sequence = 0
        self._updates_sent = 0
        self._bytes_sent = 0

    # ------------------------------------------------------------------ #
    # to be provided by concrete protocols
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def prediction_function(self) -> PredictionFunction:
        """The prediction function shared between source and server."""

    @abc.abstractmethod
    def _should_update(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> Optional[UpdateReason]:
        """Decide whether an update must be sent for this sighting."""

    def _build_state(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> ObjectState:
        """Build the object state transmitted in an update.

        The default sends the raw sensor position; the map-based protocol
        overrides this to send the corrected (map-matched) position and the
        current link.
        """
        return ObjectState(
            time=time,
            position=position,
            velocity=velocity,
            speed=speed,
            uncertainty=self.sensor_uncertainty,
        )

    # ------------------------------------------------------------------ #
    # the common source loop
    # ------------------------------------------------------------------ #
    def observe(self, time: float, position: Vec2) -> Optional[UpdateMessage]:
        """Process one sensor sighting; return an update if one must be sent."""
        p = as_vec(position)
        velocity, speed = self.estimator.update(time, p)
        return self._decide(time, p, velocity, speed)

    def observe_precomputed(
        self, time: float, position: Vec2, velocity: np.ndarray, speed: float
    ) -> Optional[UpdateMessage]:
        """Process a sighting whose speed/heading estimate is already known.

        The simulation engine computes the sliding-window estimates for a
        whole trace in one vectorised pass
        (:func:`repro.traces.estimation.estimate_trace`, bitwise identical
        to the streaming estimator) and feeds them here, skipping the
        per-sighting estimator update.  The internal estimator window is
        *not* advanced by this path; do not mix it with :meth:`observe`
        within one trace.
        """
        return self._decide(time, as_vec(position), velocity, speed)

    def _decide(
        self, time: float, p: np.ndarray, velocity: np.ndarray, speed: float
    ) -> Optional[UpdateMessage]:
        """The shared decision core behind both observe paths."""
        self._pre_decision_hook(time, p, velocity, speed)
        if self._last_reported is None:
            reason: Optional[UpdateReason] = UpdateReason.INITIAL
        else:
            reason = self._should_update(time, p, velocity, speed)
        if reason is None:
            return None
        return self._emit_update(time, p, velocity, speed, reason)

    def _emit_update(
        self,
        time: float,
        p: np.ndarray,
        velocity: np.ndarray,
        speed: float,
        reason: UpdateReason,
    ) -> UpdateMessage:
        """Build, account and record one update message (shared by the
        sighting path and the timer path)."""
        state = self._build_state(time, p, velocity, speed)
        message = UpdateMessage(sequence=self._sequence, state=state, reason=reason)
        self._sequence += 1
        self._updates_sent += 1
        self._bytes_sent += message.size_bytes
        self._last_reported = state
        self._post_update_hook(message)
        return message

    # ------------------------------------------------------------------ #
    # event-kernel timer hooks
    # ------------------------------------------------------------------ #
    def next_deadline(self) -> Optional[float]:
        """The next instant at which this protocol's timer must fire.

        Protocols whose trigger involves wall-clock time (periodic
        reporting, disconnection timeouts) return the exact deadline; the
        event kernel schedules a timer event there and calls
        :meth:`on_timer` when it expires, so the protocol acts at the exact
        instant instead of at the first sighting that happens to be polled
        afterwards.  ``None`` (the default) means no timer is pending —
        the tick loop never consults these hooks and keeps polling.
        """
        return None

    def on_timer(self, time: float) -> Optional[UpdateMessage]:
        """Handle a timer expiry at exactly *time*.

        Returns an update message to transmit, or ``None``.  Called only by
        the event kernel, and only for deadlines announced via
        :meth:`next_deadline`; implementations must tolerate stale fires
        (a sighting processed at the same instant may already have serviced
        the deadline) by re-checking their trigger condition.  An
        implementation that declines a fire while leaving
        :meth:`next_deadline` unchanged is not re-fired at that instant
        (the kernel guards against spinning); that deadline value is
        treated as spent until the protocol moves it.
        """
        return None

    def _pre_decision_hook(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> None:
        """Hook run before the update decision (map matching lives here)."""

    def _post_update_hook(self, message: UpdateMessage) -> None:
        """Hook run after an update has been recorded."""

    # ------------------------------------------------------------------ #
    # helpers available to subclasses
    # ------------------------------------------------------------------ #
    @property
    def last_reported(self) -> Optional[ObjectState]:
        """The last state transmitted to the server (``or`` in the paper)."""
        return self._last_reported

    def predicted_position(self, time: float) -> Optional[np.ndarray]:
        """Where the server currently believes the object to be."""
        if self._last_reported is None:
            return None
        return self.prediction_function().predict(self._last_reported, time)

    def deviation(self, time: float, position: Vec2) -> float:
        """Distance between the actual position and the server's prediction."""
        predicted = self.predicted_position(time)
        if predicted is None:
            return float("inf")
        return distance(as_vec(position), predicted)

    def _threshold_exceeded(self, time: float, position: np.ndarray) -> bool:
        """The paper's trigger: ``Distance(pos, pred(or, t)) + up > us``."""
        return self.deviation(time, position) + self.sensor_uncertainty > self.accuracy

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def updates_sent(self) -> int:
        """Number of updates transmitted so far."""
        return self._updates_sent

    @property
    def bytes_sent(self) -> int:
        """Total payload bytes transmitted so far."""
        return self._bytes_sent

    def reset(self) -> None:
        """Restore the protocol to its initial state (new trace)."""
        self.estimator.reset()
        self._last_reported = None
        self._sequence = 0
        self._updates_sent = 0
        self._bytes_sent = 0

    def clone_for(self, accuracy: Optional[float] = None) -> "UpdateProtocol":
        """A fresh-state copy of this protocol, optionally with a new accuracy.

        This is the sweep-reuse hook: expensive shared structure (road map,
        routes, prediction geometry) is shared by reference, while the
        mutable per-run components are replaced with fresh ones
        (:meth:`_detach_clone_state`), so cloning never disturbs the
        prototype — its estimator window, matcher state and statistics stay
        exactly as they were.
        """
        import copy

        if accuracy is not None and accuracy <= 0:
            raise ValueError("accuracy (us) must be positive")
        clone = copy.copy(self)
        if accuracy is not None:
            clone.accuracy = float(accuracy)
        clone._detach_clone_state()
        clone.reset()
        return clone

    def _detach_clone_state(self) -> None:
        """Replace mutable components that ``copy.copy`` left shared.

        Called on the clone before its reset so that neither the reset nor
        the clone's subsequent run can touch the prototype's state.
        Subclasses with extra mutable members (matchers, deques) extend
        this; genuinely shared immutable structure stays by reference.
        """
        self.estimator = StateEstimator(window=self.estimator.window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(us={self.accuracy:.0f} m)"
