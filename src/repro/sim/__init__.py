"""Simulation engine: coupling traces, protocols, channel and server.

This is the equivalent of the paper's simulator (Sec. 4): "we have simulated
the movements of a mobile object and in our simulator provided the
functionality for transmitting the location information between a source and
a server.  Different variants of update protocols can be plugged into the
simulator and be compared according to the number of updates transmitted and
the resulting accuracy on the server."
"""

from repro.sim.metrics import AccuracyMetrics, SimulationResult
from repro.sim.engine import ProtocolSimulation, run_simulation
from repro.sim.sweep import SweepPoint, run_accuracy_sweep
from repro.sim.config import SimulationConfig

__all__ = [
    "AccuracyMetrics",
    "SimulationResult",
    "ProtocolSimulation",
    "run_simulation",
    "SweepPoint",
    "run_accuracy_sweep",
    "SimulationConfig",
]
