"""Location-service substrate.

The paper's system model (Fig. 1) has a *source* co-located with the mobile
object's positioning sensor and a *location server* that stores the reported
object state, applies the shared prediction function and answers position
queries from applications.  This package provides those two components plus
the message channel between them and the query API applications use
("find the nearest taxi cab", "address all users inside an area",
paper Sec. 1).
"""

from repro.service.channel import ChannelStats, MessageChannel
from repro.service.server import LocationServer, TrackedObject
from repro.service.source import LocationSource
from repro.service.queries import (
    PositionQueryResult,
    position_query,
    range_query,
    nearest_object_query,
)

__all__ = [
    "MessageChannel",
    "ChannelStats",
    "LocationServer",
    "TrackedObject",
    "LocationSource",
    "PositionQueryResult",
    "position_query",
    "range_query",
    "nearest_object_query",
]
