"""Streaming tiled ingestion: store layout, lazy loading, graph identity.

Two contracts matter here:

1. **Tiling is invisible to the graph** — a routing graph streamed from a
   tile store (`routing_links`) is element-for-element identical to the
   one built from the merged :class:`RoadMap`, and the contraction
   hierarchy on a tile-merged map still answers bit-identically to
   Dijkstra.
2. **Tiles load lazily and deterministically** — bbox queries touch only
   overlapping tiles, the LRU keeps residency bounded, re-imports hit the
   content-hash cache, and the synthetic region generator is byte-stable.
"""

import random

import pytest

from repro.geo.bbox import BoundingBox
from repro.ingest.tiles import (
    TileStore,
    import_tiles,
    stream_osm_to_tiles,
    tile_cache_dir,
    write_region_tiles,
)
from repro.roadmap.hierarchy import ContractionHierarchy, RoutingGraph, dijkstra_path

MINIVILLE = "tests/data/miniville.osm"


@pytest.fixture(scope="module")
def miniville_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("tiles")
    return stream_osm_to_tiles(MINIVILLE, root / "miniville", tile_size_m=500.0)


class TestStreamingImport:
    def test_store_facts(self, miniville_store):
        store = miniville_store
        assert store.kind == "osm"
        assert store.num_segments > 0
        assert store.num_nodes > 0
        assert len(store.tile_keys()) > 1  # the fixture spans several tiles

    def test_streamed_graph_identical_to_merged_roadmap(self, miniville_store):
        roadmap = miniville_store.to_roadmap()
        streamed = RoutingGraph.from_links(
            "length", list(miniville_store.routing_links("length"))
        )
        merged = RoutingGraph.from_roadmap(roadmap, "length")
        assert streamed.node_ids == merged.node_ids
        assert streamed.num_edges() == merged.num_edges()
        for u in range(merged.num_nodes()):
            assert streamed.out_edges[u] == merged.out_edges[u]

    def test_segments_survive_round_trip(self, miniville_store):
        # Re-tiling the merged segments reproduces counts exactly.
        total = sum(1 for _ in miniville_store.iter_segments())
        assert total == miniville_store.num_segments

    def test_import_tiles_hits_content_hash_cache(self, tmp_path):
        _, cached_first = import_tiles(MINIVILLE, tmp_path, tile_size_m=500.0)
        _, cached_second = import_tiles(MINIVILLE, tmp_path, tile_size_m=500.0)
        assert not cached_first and cached_second

    def test_tiling_options_key_the_cache(self, tmp_path):
        a = tile_cache_dir(MINIVILLE, tmp_path, tile_size_m=500.0)
        b = tile_cache_dir(MINIVILLE, tmp_path, tile_size_m=1000.0)
        assert a != b


class TestLazyLoading:
    def test_bbox_touches_only_overlapping_tiles(self, tmp_path):
        store = stream_osm_to_tiles(MINIVILLE, tmp_path / "mv", tile_size_m=500.0)
        box = BoundingBox(-200.0, -200.0, 200.0, 200.0)
        keys = store.tiles_in_box(box)
        assert 0 < len(keys) < len(store.tile_keys())
        segments = store.segments_in_box(box)
        assert segments
        assert store.tiles_loaded == len(keys)

    def test_lru_bounds_residency(self, tmp_path):
        store = TileStore(
            stream_osm_to_tiles(MINIVILLE, tmp_path / "mv", tile_size_m=300.0).root,
            max_loaded_tiles=2,
        )
        keys = store.tile_keys()
        assert len(keys) > 2
        for tx, ty in keys:
            store.load_tile(tx, ty)
        assert len(store._cache) == 2
        # Re-loading a resident tile is a cache hit, not a re-read.
        loads = store.tiles_loaded
        store.load_tile(*keys[-1])
        assert store.tiles_loaded == loads

    def test_roadmap_for_box_is_usable(self, miniville_store):
        box = BoundingBox(-300.0, -300.0, 300.0, 300.0)
        roadmap = miniville_store.roadmap_for_box(box)
        assert roadmap.num_intersections() > 0
        assert roadmap.metadata["clip"] == box.as_tuple()


class TestCHAfterTileMerge:
    @pytest.mark.parametrize("weight", ["length", "travel_time"])
    def test_ch_equals_dijkstra_on_tile_merged_map(self, miniville_store, weight):
        roadmap = miniville_store.to_roadmap()
        graph = RoutingGraph.from_roadmap(roadmap, weight)
        hierarchy = ContractionHierarchy.build(graph)
        rng = random.Random(17)
        ids = graph.node_ids
        for _ in range(120):
            source, target = rng.choice(ids), rng.choice(ids)
            reference = dijkstra_path(graph, source, target)
            candidate = hierarchy.query(source, target)
            assert (reference is None) == (candidate is None)
            if reference is not None:
                assert candidate.cost == reference.cost
                assert candidate.links == reference.links


class TestSyntheticRegion:
    def test_region_is_deterministic(self, tmp_path):
        first = write_region_tiles(tmp_path / "a", 20, 24, tile_nodes=8)
        second = write_region_tiles(tmp_path / "b", 20, 24, tile_nodes=8)
        assert first.index["tiles"].keys() == second.index["tiles"].keys()
        assert first.num_segments == second.num_segments
        for tx, ty in first.tile_keys():
            name = first.index["tiles"][f"{tx},{ty}"]["file"]
            assert (first.root / name).read_bytes() == (second.root / name).read_bytes()

    def test_region_shape(self, tmp_path):
        store = write_region_tiles(tmp_path / "r", 20, 24, tile_nodes=8)
        assert store.kind == "synthetic-region"
        assert store.num_nodes == 20 * 24
        # Two-way grid: one segment per adjacent pair.
        assert store.num_segments == 19 * 24 + 20 * 23
        assert store.index["region"]["nrows"] == 20

    def test_region_graph_routes_correctly(self, tmp_path):
        store = write_region_tiles(tmp_path / "r", 16, 16, tile_nodes=8)
        graph = RoutingGraph.from_links(
            "travel_time", list(store.routing_links("travel_time"))
        )
        hierarchy = ContractionHierarchy.build(graph)
        rng = random.Random(23)
        ids = graph.node_ids
        for _ in range(60):
            source, target = rng.choice(ids), rng.choice(ids)
            reference = dijkstra_path(graph, source, target)
            candidate = hierarchy.query(source, target)
            assert reference is not None  # the grid is connected
            assert candidate.cost == reference.cost
            assert candidate.links == reference.links

    def test_tiny_region_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_region_tiles(tmp_path / "r", 1, 5)
