"""Turn-probability tables for the map-based-with-probabilities variant.

The paper (Sec. 2) proposes enhancing map links with probability information
describing how likely an object is to follow each outgoing link after an
intersection, either aggregated over all users (*user-independent*) or per
object (*user-specific*).  The prediction function then picks the most
probable outgoing link instead of the geometrically straightest one.

:class:`TurnProbabilityTable` stores transition counts ``(from_link ->
to_link)`` and converts them to probabilities on demand; it can be populated
from observed routes or traces, which is exactly how a deployment would
bootstrap the statistics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.roadmap.elements import Link
from repro.roadmap.graph import RoadMap
from repro.roadmap.routing import Route


class TurnProbabilityTable:
    """Link-to-link transition statistics over a road map.

    Parameters
    ----------
    roadmap:
        The map the statistics refer to.
    laplace_smoothing:
        Pseudo-count added to every legal transition when converting counts
        to probabilities, so that unseen turns retain a small probability.
    """

    def __init__(self, roadmap: RoadMap, laplace_smoothing: float = 0.0):
        if laplace_smoothing < 0:
            raise ValueError("laplace_smoothing must be non-negative")
        self.roadmap = roadmap
        self.laplace_smoothing = float(laplace_smoothing)
        self._counts: Dict[int, Dict[int, float]] = defaultdict(lambda: defaultdict(float))

    # ------------------------------------------------------------------ #
    # recording observations
    # ------------------------------------------------------------------ #
    def record_transition(self, from_link_id: int, to_link_id: int, weight: float = 1.0) -> None:
        """Record that *to_link_id* was taken after *from_link_id*."""
        if not self.roadmap.has_link(from_link_id):
            raise KeyError(f"unknown link id {from_link_id}")
        if not self.roadmap.has_link(to_link_id):
            raise KeyError(f"unknown link id {to_link_id}")
        self._counts[from_link_id][to_link_id] += float(weight)

    def record_route(self, route: Route, weight: float = 1.0) -> None:
        """Record every consecutive link pair of *route*."""
        for a, b in zip(route.links, route.links[1:]):
            self.record_transition(a.id, b.id, weight)

    def record_link_sequence(self, link_ids: Sequence[int], weight: float = 1.0) -> None:
        """Record transitions from an explicit link-id sequence."""
        for a, b in zip(link_ids, link_ids[1:]):
            if a is None or b is None:
                continue
            self.record_transition(a, b, weight)

    def merge(self, other: "TurnProbabilityTable") -> None:
        """Add the counts of *other* into this table (user-independent pooling)."""
        for from_id, row in other._counts.items():
            for to_id, count in row.items():
                self._counts[from_id][to_id] += count

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def transition_count(self, from_link_id: int, to_link_id: int) -> float:
        """Raw observation count for a transition."""
        return self._counts.get(from_link_id, {}).get(to_link_id, 0.0)

    def transition_probabilities(self, from_link: Link) -> Dict[int, float]:
        """Probability of each legal successor of *from_link*.

        Legal successors are taken from the road map (U-turns excluded); the
        probabilities always sum to 1 over that set, even when no
        observations exist (uniform distribution in that case).
        """
        successors = self.roadmap.successors(from_link)
        if not successors:
            return {}
        counts = self._counts.get(from_link.id, {})
        scores = {
            s.id: counts.get(s.id, 0.0) + self.laplace_smoothing for s in successors
        }
        total = sum(scores.values())
        if total <= 0.0:
            uniform = 1.0 / len(successors)
            return {s.id: uniform for s in successors}
        return {link_id: score / total for link_id, score in scores.items()}

    def most_probable_successor(self, from_link: Link) -> Optional[Link]:
        """The successor with the highest probability, or ``None`` at dead ends.

        Ties are broken deterministically by link id so that source and
        server make the same choice — a requirement of the protocol.
        """
        probabilities = self.transition_probabilities(from_link)
        if not probabilities:
            return None
        best_id = min(
            probabilities, key=lambda link_id: (-probabilities[link_id], link_id)
        )
        return self.roadmap.link(best_id)

    def observed_transitions(self) -> Iterable[Tuple[int, int, float]]:
        """Iterate over ``(from_link_id, to_link_id, count)`` triples."""
        for from_id, row in self._counts.items():
            for to_id, count in row.items():
                yield from_id, to_id, count

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serialisable representation of the counts."""
        return {
            "laplace_smoothing": self.laplace_smoothing,
            "transitions": [
                {"from": f, "to": t, "count": c} for f, t, c in self.observed_transitions()
            ],
        }

    @classmethod
    def from_dict(cls, roadmap: RoadMap, data: Mapping) -> "TurnProbabilityTable":
        """Rebuild a table from :meth:`to_dict` output."""
        table = cls(roadmap, laplace_smoothing=float(data.get("laplace_smoothing", 0.0)))
        for entry in data.get("transitions", []):
            table.record_transition(int(entry["from"]), int(entry["to"]), float(entry["count"]))
        return table
