"""Longitudinal driver kinematics.

The movement characteristics that matter for dead-reckoning update rates are
speed level, speed variability (acceleration / braking / stops) and the
curvature of the driven geometry.  :class:`SpeedController` produces a
physically plausible speed profile along a route:

* it respects the link speed limits (scaled by a driver-specific factor),
* it slows down for curves using a lateral-acceleration comfort limit,
* it brakes to a stop at intersections that are "red" (a per-intersection
  random event whose probability is part of the driver profile, modelling
  traffic lights, stop signs and congestion), and
* it accelerates and brakes with bounded longitudinal acceleration.

The controller is deliberately simple — an IDM-style car-following model
would add nothing here because the object drives alone — but it produces the
stop-and-go city profile and the steady freeway profile the paper's traces
exhibit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.geo.angles import angle_difference
from repro.roadmap.routing import Route


@dataclass(frozen=True)
class DriverProfile:
    """Parameters describing driving style and traffic conditions.

    Attributes
    ----------
    speed_factor:
        Multiplier applied to link speed limits to obtain the desired cruise
        speed (0.9 = slightly below the limit, 1.05 = slightly above).
    max_acceleration:
        Maximum longitudinal acceleration in m/s^2.
    max_deceleration:
        Maximum (comfortable) braking deceleration in m/s^2 (positive value).
    lateral_acceleration:
        Comfort limit for lateral acceleration in curves, m/s^2; lower values
        mean stronger slow-down in curves.
    stop_probability:
        Probability of having to stop at an intersection (traffic light /
        stop sign / congestion).
    stop_duration_range:
        ``(min, max)`` stop duration in seconds, drawn uniformly.
    speed_noise_sigma:
        Standard deviation of a slowly varying multiplicative perturbation of
        the desired speed, modelling traffic-induced speed fluctuation.
    speed_cap:
        Absolute ceiling on the assumed legal speed in m/s, applied *before*
        ``speed_factor``.  Agents whose pace is physical rather than legal
        (pedestrians) use it so that a high link speed limit — a street of
        an imported real map — does not translate into running at car
        speed.  ``None`` (the default) leaves link limits untouched.
    """

    speed_factor: float = 0.95
    max_acceleration: float = 1.8
    max_deceleration: float = 2.5
    lateral_acceleration: float = 2.0
    stop_probability: float = 0.0
    stop_duration_range: tuple[float, float] = (5.0, 45.0)
    speed_noise_sigma: float = 0.03
    speed_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if self.speed_cap is not None and self.speed_cap <= 0:
            raise ValueError("speed_cap must be positive")
        if self.max_acceleration <= 0 or self.max_deceleration <= 0:
            raise ValueError("accelerations must be positive")
        if self.lateral_acceleration <= 0:
            raise ValueError("lateral_acceleration must be positive")
        if not (0.0 <= self.stop_probability <= 1.0):
            raise ValueError("stop_probability must be in [0, 1]")


#: Profiles roughly matching the paper's four movement patterns.
FREEWAY_DRIVER = DriverProfile(
    speed_factor=0.93,
    max_acceleration=1.5,
    max_deceleration=2.0,
    lateral_acceleration=3.5,
    stop_probability=0.0,
    speed_noise_sigma=0.05,
)
INTERURBAN_DRIVER = DriverProfile(
    speed_factor=0.88,
    max_acceleration=1.6,
    max_deceleration=2.2,
    lateral_acceleration=2.5,
    stop_probability=0.12,
    stop_duration_range=(5.0, 30.0),
    speed_noise_sigma=0.06,
)
CITY_DRIVER = DriverProfile(
    speed_factor=0.9,
    max_acceleration=1.8,
    max_deceleration=2.5,
    lateral_acceleration=2.0,
    stop_probability=0.35,
    stop_duration_range=(8.0, 50.0),
    speed_noise_sigma=0.08,
)


class SpeedController:
    """Computes a speed profile along a route for a given driver profile.

    The controller works on a discretised route (samples every ``ds`` metres
    of arc length): it first computes a per-sample *target* speed from the
    speed limit, the local curvature and the planned stops, and then enforces
    acceleration limits with a forward pass (acceleration) and a backward
    pass (braking), the standard technique for generating feasible speed
    profiles.
    """

    def __init__(
        self,
        route: Route,
        profile: DriverProfile,
        ds: float = 10.0,
        rng: Optional[random.Random] = None,
    ):
        if ds <= 0:
            raise ValueError("ds must be positive")
        self.route = route
        self.profile = profile
        self.ds = float(ds)
        self.rng = rng or random.Random()
        self._offsets = np.arange(0.0, route.length + ds, ds)
        self._offsets[-1] = route.length
        self._target = self._compute_target_speeds()
        self._feasible = self._enforce_acceleration_limits(self._target)
        self._stops = self._plan_stops()

    # ------------------------------------------------------------------ #
    # target speed construction
    # ------------------------------------------------------------------ #
    def _curvature_at(self, offset: float, probe: float = 25.0) -> float:
        """Approximate path curvature (1/m) at a route offset.

        Estimated from the heading change between two probes ``probe`` metres
        before and after the offset.
        """
        before = max(0.0, offset - probe)
        after = min(self.route.length, offset + probe)
        if after - before < 1e-6:
            return 0.0
        bearing_before = self.route.bearing_at(before)
        bearing_after = self.route.bearing_at(after)
        return angle_difference(bearing_after, bearing_before) / (after - before)

    def _compute_target_speeds(self) -> np.ndarray:
        profile = self.profile
        targets = np.empty(len(self._offsets))
        noise = 1.0
        for i, offset in enumerate(self._offsets):
            limit = self.route.speed_limit_at(offset)
            if profile.speed_cap is not None:
                limit = min(limit, profile.speed_cap)
            legal = limit * profile.speed_factor
            curvature = self._curvature_at(offset)
            if curvature > 1e-9:
                curve_speed = math.sqrt(profile.lateral_acceleration / curvature)
            else:
                curve_speed = float("inf")
            # Slowly varying traffic noise (random walk clamped to +-3 sigma).
            noise += self.rng.gauss(0.0, profile.speed_noise_sigma * 0.1)
            noise = min(1.0 + 3 * profile.speed_noise_sigma,
                        max(1.0 - 3 * profile.speed_noise_sigma, noise))
            targets[i] = max(1.0, min(legal, curve_speed) * noise)
        return targets

    def _plan_stops(self) -> List[tuple[float, float]]:
        """Choose the intersections where the vehicle stops: (offset, duration)."""
        stops: List[tuple[float, float]] = []
        if self.profile.stop_probability <= 0.0:
            return stops
        for index in range(len(self.route.links) - 1):
            if self.rng.random() < self.profile.stop_probability:
                offset = self.route.link_start_offset(index + 1)
                duration = self.rng.uniform(*self.profile.stop_duration_range)
                stops.append((offset, duration))
        return stops

    def _enforce_acceleration_limits(self, targets: np.ndarray) -> np.ndarray:
        """Limit speed changes using v' <= sqrt(v^2 + 2*a*ds) passes."""
        profile = self.profile
        ds = np.diff(self._offsets, prepend=self._offsets[0])
        ds[0] = 0.0
        feasible = targets.copy()
        # forward pass: acceleration limit
        for i in range(1, len(feasible)):
            vmax = math.sqrt(
                feasible[i - 1] ** 2 + 2.0 * profile.max_acceleration * ds[i]
            )
            feasible[i] = min(feasible[i], vmax)
        # backward pass: braking limit
        for i in range(len(feasible) - 2, -1, -1):
            vmax = math.sqrt(
                feasible[i + 1] ** 2 + 2.0 * profile.max_deceleration * ds[i + 1]
            )
            feasible[i] = min(feasible[i], vmax)
        return feasible

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def stops(self) -> List[tuple[float, float]]:
        """Planned stops as ``(route_offset, duration_s)`` pairs."""
        return list(self._stops)

    def speed_at(self, offset: float) -> float:
        """Feasible speed (m/s) at a route offset (linear interpolation)."""
        return float(np.interp(offset, self._offsets, self._feasible))

    def target_speed_at(self, offset: float) -> float:
        """Target (pre-limit) speed at a route offset."""
        return float(np.interp(offset, self._offsets, self._target))

    def estimated_travel_time(self) -> float:
        """Approximate travel time along the route including stops, in seconds."""
        ds = np.diff(self._offsets)
        mid_speeds = 0.5 * (self._feasible[:-1] + self._feasible[1:])
        moving = float(np.sum(ds / np.maximum(mid_speeds, 0.1)))
        stopped = sum(duration for _, duration in self._stops)
        return moving + stopped
