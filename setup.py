"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that the package can also be installed in environments whose tooling lacks
PEP-660 editable-install support (e.g. offline machines without the
``wheel`` package), via ``pip install -e . --no-use-pep517`` or
``python setup.py develop``.
"""

from setuptools import setup

setup()
