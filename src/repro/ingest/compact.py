"""Graph conditioning: clip, connect, prune and contract an imported network.

An OSM extract is not a simulation-ready road network.  This module turns
the projected node/way soup into a clean
:class:`~repro.roadmap.graph.RoadMap` in four deterministic passes over a
flat list of :class:`Segment` (one per consecutive node pair of a way):

1. **clip** — drop segments outside a geodesic bounding box (tile imports),
2. **largest component** — drop disconnected fragments (ferry islands,
   clipped-off suburbs) that no route could ever reach,
3. **stub pruning** — iteratively remove dead-end chains shorter than a
   threshold (driveway stumps left over from clipping),
4. **degree-2 contraction** — merge chains of degree-2 nodes with identical
   attributes into single polyline segments, so the graph the router, the
   map matcher and the prediction function traverse has a node only where a
   real decision can be made.  The merged geometry keeps every original
   vertex as a shape point: contraction changes the *graph*, never the
   *road geometry*.

Contraction is what makes imported maps fast: OSM models a road as a bead
chain of short segments, and every bead is a graph node that shortest-path
search must pop and the incremental matcher must forward-track through.
``benchmarks/bench_ingest.py`` measures the effect and asserts that the
protocol metrics on the contracted graph are bit-identical to the raw one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.ingest.osm import ProjectedNetwork
from repro.roadmap.builder import RoadMapBuilder
from repro.roadmap.elements import RoadClass
from repro.roadmap.graph import RoadMap


@dataclass
class Segment:
    """One undirected-ish piece of road between two graph nodes.

    ``points`` runs from node ``a`` to node ``b`` (endpoints included).
    ``oneway`` means travel is only possible ``a → b``; otherwise the
    segment stands for both directed links.
    """

    a: int
    b: int
    points: np.ndarray
    road_class: RoadClass
    speed_limit: Optional[float]
    oneway: bool
    name: str = ""

    @property
    def length(self) -> float:
        """Arc length in metres."""
        deltas = np.diff(self.points, axis=0)
        return float(np.sum(np.hypot(deltas[:, 0], deltas[:, 1])))

    def attrs(self) -> Tuple:
        """The attribute tuple that must match for two segments to merge."""
        return (self.road_class, self.speed_limit, self.oneway, self.name)

    def reversed(self) -> "Segment":
        """The same road traversed ``b → a`` (two-way segments only)."""
        return Segment(
            a=self.b,
            b=self.a,
            points=self.points[::-1].copy(),
            road_class=self.road_class,
            speed_limit=self.speed_limit,
            oneway=self.oneway,
            name=self.name,
        )


@dataclass
class ConditioningReport:
    """What each conditioning pass did, for logs and the compiled-map cache."""

    input_nodes: int = 0
    input_segments: int = 0
    clipped_segments: int = 0
    components_dropped: int = 0
    component_segments_dropped: int = 0
    stub_segments_pruned: int = 0
    nodes_contracted: int = 0
    output_intersections: int = 0
    output_links: int = 0
    total_length_km: float = 0.0
    contracted: bool = True

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class CompiledMap:
    """The result of the full pipeline: the map plus its provenance."""

    roadmap: RoadMap
    report: ConditioningReport
    origin: Tuple[float, float]
    parse_stats: Dict[str, int] = field(default_factory=dict)
    cached: bool = False
    timings: Dict[str, float] = field(default_factory=dict)
    cache_path: str = ""


# --------------------------------------------------------------------------- #
# segment extraction
# --------------------------------------------------------------------------- #
def network_segments(projected: ProjectedNetwork) -> List[Segment]:
    """Split every way into per-node-pair segments (the rawest graph).

    Every OSM node becomes a graph node here; contraction later removes the
    pass-through ones.  Keeping this stage maximally fine-grained makes the
    conditioning passes trivially correct: they never have to split
    geometry, only drop or merge whole segments.
    """
    positions = projected.positions
    segments: List[Segment] = []
    for way in projected.network.ways:
        for a, b in zip(way.nodes, way.nodes[1:]):
            pa, pb = positions[a], positions[b]
            if float(np.hypot(*(pb - pa))) <= 1e-9:
                continue
            segments.append(
                Segment(
                    a=a,
                    b=b,
                    points=np.vstack((pa, pb)),
                    road_class=way.road_class,
                    speed_limit=way.speed_limit,
                    oneway=way.oneway == "forward",
                    name=way.name,
                )
            )
    return segments


# --------------------------------------------------------------------------- #
# pass 1: bounding-box clip
# --------------------------------------------------------------------------- #
def clip_segments(
    segments: Sequence[Segment],
    projected: ProjectedNetwork,
    bbox: Tuple[float, float, float, float],
) -> Tuple[List[Segment], int]:
    """Keep segments whose both endpoints lie inside the geodesic bbox.

    ``bbox`` is ``(min_lat, min_lon, max_lat, max_lon)``.  Clipping at
    segment granularity (before contraction) means partially covered ways
    survive up to the boundary instead of vanishing wholesale.
    """
    min_lat, min_lon, max_lat, max_lon = bbox
    if min_lat > max_lat or min_lon > max_lon:
        raise ValueError("bbox must be (min_lat, min_lon, max_lat, max_lon)")
    nodes = projected.network.nodes

    def inside(node_id: int) -> bool:
        node = nodes[node_id]
        return min_lat <= node.lat <= max_lat and min_lon <= node.lon <= max_lon

    kept = [s for s in segments if inside(s.a) and inside(s.b)]
    return kept, len(segments) - len(kept)


# --------------------------------------------------------------------------- #
# pass 2: largest connected component
# --------------------------------------------------------------------------- #
def _adjacency(segments: Sequence[Segment]) -> Dict[int, List[int]]:
    """Node id -> indices of incident segments (undirected view)."""
    adjacency: Dict[int, List[int]] = {}
    for idx, segment in enumerate(segments):
        adjacency.setdefault(segment.a, []).append(idx)
        adjacency.setdefault(segment.b, []).append(idx)
    return adjacency


def largest_component(
    segments: Sequence[Segment],
) -> Tuple[List[Segment], int, int]:
    """Keep the connected component with the greatest total length.

    Connectivity is undirected — a one-way loop is one component even
    though it is not strongly connected.  Returns ``(kept, components
    dropped, segments dropped)``.
    """
    if not segments:
        return [], 0, 0
    adjacency = _adjacency(segments)
    segment_component = [-1] * len(segments)
    component_lengths: List[float] = []
    for start in range(len(segments)):
        if segment_component[start] != -1:
            continue
        component = len(component_lengths)
        stack = [start]
        segment_component[start] = component
        total = 0.0
        while stack:
            idx = stack.pop()
            total += segments[idx].length
            for node in (segments[idx].a, segments[idx].b):
                for neighbour in adjacency[node]:
                    if segment_component[neighbour] == -1:
                        segment_component[neighbour] = component
                        stack.append(neighbour)
        component_lengths.append(total)
    best = int(np.argmax(component_lengths))
    kept = [s for s, c in zip(segments, segment_component) if c == best]
    return kept, len(component_lengths) - 1, len(segments) - len(kept)


# --------------------------------------------------------------------------- #
# pass 3: stub pruning
# --------------------------------------------------------------------------- #
def prune_stubs(
    segments: Sequence[Segment], min_length_m: float = 40.0
) -> Tuple[List[Segment], int]:
    """Iteratively remove dead-end chains shorter than *min_length_m*.

    A stub is a chain of segments hanging off the network at a degree-1
    node; clipping and sliced extracts produce thousands of them.  Genuine
    cul-de-sacs longer than the threshold survive.  Runs to a fixpoint, so
    a stub of several short segments disappears entirely.
    """
    if min_length_m <= 0:
        return list(segments), 0
    alive: List[Segment] = list(segments)
    pruned = 0
    while True:
        adjacency = _adjacency(alive)
        dead: Set[int] = set()
        for node, incident in adjacency.items():
            if len(incident) != 1:
                continue
            # Walk inward from the dead end through degree-2 nodes.
            chain: List[int] = []
            length = 0.0
            current_node = node
            current_idx = incident[0]
            while True:
                if current_idx in dead:
                    break
                chain.append(current_idx)
                length += alive[current_idx].length
                segment = alive[current_idx]
                next_node = segment.b if segment.a == current_node else segment.a
                next_incident = [i for i in adjacency[next_node] if i != current_idx]
                if len(next_incident) != 1 or length >= min_length_m:
                    break
                current_node = next_node
                current_idx = next_incident[0]
            if length < min_length_m:
                dead.update(chain)
        if not dead:
            return alive, pruned
        pruned += len(dead)
        alive = [s for i, s in enumerate(alive) if i not in dead]


# --------------------------------------------------------------------------- #
# pass 4: degree-2 contraction
# --------------------------------------------------------------------------- #
def _merge_points(chain: List[Segment]) -> np.ndarray:
    """Concatenate oriented segment geometries, dropping duplicated joints."""
    parts = [chain[0].points]
    for segment in chain[1:]:
        parts.append(segment.points[1:])
    return np.vstack(parts)


def _oriented(segment: Segment, from_node: int) -> Segment:
    """The segment oriented to start at *from_node* (flips two-way only)."""
    if segment.a == from_node:
        return segment
    assert not segment.oneway, "one-way segments are never flipped"
    return segment.reversed()


def contract_chains(segments: Sequence[Segment]) -> Tuple[List[Segment], int]:
    """Merge chains of pass-through nodes into single polyline segments.

    A node is contracted away when exactly two segments meet there with
    identical attributes (class, speed limit, one-way-ness, name) and —
    for one-way roads — a consistent direction of travel through the node.
    Everything else (junctions, attribute changes, direction flips,
    self-loops) stays a graph node.  Returns ``(merged segments, nodes
    contracted)``.
    """
    segments = list(segments)
    adjacency = _adjacency(segments)

    def contractible(node: int) -> bool:
        incident = adjacency[node]
        if len(incident) != 2 or incident[0] == incident[1]:
            return False  # junction, dead end, or a self-loop counted twice
        s, t = segments[incident[0]], segments[incident[1]]
        if s.attrs() != t.attrs():
            return False
        other_s = s.b if s.a == node else s.a
        other_t = t.b if t.a == node else t.a
        if other_s == other_t or other_s == node or other_t == node:
            return False  # contraction would create a self-loop
        if s.oneway:
            # Flow must pass straight through: one segment ends here, the
            # other starts here.
            return (s.b == node and t.a == node) or (t.b == node and s.a == node)
        return True

    pass_through = {node for node in adjacency if contractible(node)}
    visited: Set[int] = set()
    merged: List[Segment] = []

    def walk(start_node: int, first_idx: int) -> Segment:
        """Collect the maximal chain leaving *start_node* via *first_idx*."""
        chain: List[Segment] = []
        node, idx = start_node, first_idx
        while True:
            visited.add(idx)
            segment = segments[idx]
            if segment.oneway and segment.b == node:
                # The whole chain flows against our walk; walk it as-is and
                # flip once at the end (one-way geometry is never reversed
                # piecemeal).
                chain.append(segment)
                next_node = segment.a
            else:
                oriented = _oriented(segment, node)
                chain.append(oriented)
                next_node = oriented.b
            if next_node not in pass_through or next_node == start_node:
                break
            other = [i for i in adjacency[next_node] if i != idx]
            node, idx = next_node, other[0]
        if chain[0].oneway and chain[0].b == start_node:
            # The chain flows against the walk; reverse the walk order so
            # the merged one-way segment runs along its direction of travel
            # (one-way geometry is never flipped, so the pieces are already
            # oriented along the flow).
            chain = list(reversed(chain))
        if len(chain) == 1:
            return chain[0]
        first = chain[0]
        return Segment(
            a=first.a,
            b=chain[-1].b,
            points=_merge_points(chain),
            road_class=first.road_class,
            speed_limit=first.speed_limit,
            oneway=first.oneway,
            name=first.name,
        )

    # Deterministic order: start every chain from its smallest junction
    # node, walking each incident segment once.
    for node in sorted(adjacency):
        if node in pass_through:
            continue
        for idx in adjacency[node]:
            if idx not in visited:
                merged.append(walk(node, idx))
    # Pure cycles (every node pass-through) have no junction to start from;
    # break each at its smallest node, producing one closed segment.
    for idx in range(len(segments)):
        if idx not in visited:
            cycle_nodes = []
            probe, node = idx, segments[idx].a
            while True:
                segment = segments[probe]
                cycle_nodes.append(node)
                node = segment.b if segment.a == node else segment.a
                nxt = [i for i in adjacency[node] if i != probe]
                probe = nxt[0]
                if node == segments[idx].a:
                    break
            anchor = min(cycle_nodes)
            start_idx = [i for i in adjacency[anchor] if i not in visited][0]
            merged.append(walk(anchor, start_idx))
    surviving = {s.a for s in merged} | {s.b for s in merged}
    return merged, len(adjacency) - len(surviving)


# --------------------------------------------------------------------------- #
# assembly
# --------------------------------------------------------------------------- #
def segments_to_roadmap(
    segments: Sequence[Segment],
    metadata: Optional[Dict[str, object]] = None,
    index_cell_size: float = 250.0,
) -> RoadMap:
    """Build the immutable :class:`RoadMap` from conditioned segments.

    Intersection ids are the surviving OSM node ids; link ids are assigned
    in segment order (deterministic for a given extract and options).
    Two-way segments emit one link per direction, reverse geometry shared.
    """
    builder = RoadMapBuilder(index_cell_size=index_cell_size)
    seen: Set[int] = set()
    for segment in segments:
        for node, position in ((segment.a, segment.points[0]), (segment.b, segment.points[-1])):
            if node not in seen:
                builder.add_intersection(position, node_id=node)
                seen.add(node)
    for segment in segments:
        shape = [p for p in segment.points[1:-1]]
        builder.add_link(
            segment.a,
            segment.b,
            shape_points=shape,
            road_class=segment.road_class,
            speed_limit=segment.speed_limit,
            name=segment.name,
        )
        if not segment.oneway:
            builder.add_link(
                segment.b,
                segment.a,
                shape_points=list(reversed(shape)),
                road_class=segment.road_class,
                speed_limit=segment.speed_limit,
                name=segment.name,
            )
    return builder.build(metadata=metadata)


def compile_roadmap(
    projected: ProjectedNetwork,
    bbox: Optional[Tuple[float, float, float, float]] = None,
    contract: bool = True,
    min_stub_m: float = 40.0,
    index_cell_size: float = 250.0,
    source: str = "",
) -> CompiledMap:
    """Run the full conditioning pipeline and assemble the road map.

    ``contract=False`` skips the degree-2 contraction — only useful for the
    benchmark and the property tests that compare the two graphs.
    """
    report = ConditioningReport(contracted=contract)
    segments = network_segments(projected)
    report.input_nodes = len(projected.network.nodes)
    report.input_segments = len(segments)
    if bbox is not None:
        segments, report.clipped_segments = clip_segments(segments, projected, bbox)
    segments, report.components_dropped, report.component_segments_dropped = (
        largest_component(segments)
    )
    segments, report.stub_segments_pruned = prune_stubs(segments, min_stub_m)
    if contract:
        segments, report.nodes_contracted = contract_chains(segments)
    if not segments:
        raise ValueError(
            "conditioning removed the entire network; check the bbox and the "
            "extract's highway coverage"
        )
    origin = projected.origin
    metadata = {
        "source": source,
        "origin": {"lat": origin[0], "lon": origin[1]},
        "ingest": {
            "parse": projected.network.stats.as_dict(),
            "conditioning": report.as_dict(),
        },
    }
    roadmap = segments_to_roadmap(segments, metadata, index_cell_size)
    report.output_intersections = roadmap.num_intersections()
    report.output_links = roadmap.num_links()
    report.total_length_km = roadmap.total_length() / 1000.0
    # The metadata dict is shared with the road map; refresh the report copy.
    metadata["ingest"]["conditioning"] = report.as_dict()
    return CompiledMap(
        roadmap=roadmap,
        report=report,
        origin=origin,
        parse_stats=projected.network.stats.as_dict(),
    )
