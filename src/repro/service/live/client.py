"""Async client for the live location server.

One :class:`LiveClient` owns one TCP connection and issues strictly
request/response traffic over it (the protocol has no server push, so a
connection is a simple in-order pipeline).  Concurrency in the load
generator comes from many clients, not from multiplexing one.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Tuple

from repro.geo.bbox import BoundingBox
from repro.protocols.base import UpdateMessage
from repro.service.live.protocol import (
    decode_answer,
    encode_message,
    read_frame,
    write_frame,
)
from repro.sim.workload import QueryCall, QueryWorkload


class LiveRequestError(RuntimeError):
    """The server answered ``ok: false``.

    The response payload is kept on :attr:`response` so callers can
    distinguish a backpressure rejection (``rejected: true``) from a
    genuine error.
    """

    def __init__(self, response: Dict[str, object]):
        super().__init__(str(response.get("error", "request failed")))
        self.response = response


class LiveClient:
    """A connected request/response client."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "LiveClient":
        """Open a TCP connection to a running :class:`LiveLocationServer`."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "LiveClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # raw request plumbing
    # ------------------------------------------------------------------ #
    async def request(
        self, payload: Dict[str, object], check: bool = True
    ) -> Dict[str, object]:
        """Send one frame, await the response frame.

        With *check* (the default) an ``ok: false`` response raises
        :class:`LiveRequestError`; pass ``check=False`` to inspect
        rejections (backpressure tests) without exception handling.
        """
        await write_frame(self._writer, payload)
        response = await read_frame(self._reader)
        if response is None:
            raise ConnectionError("server closed the connection")
        if check and not response.get("ok", False):
            raise LiveRequestError(response)
        return response

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    async def ping(self) -> int:
        """Round-trip; returns the server's ``applied_seq``."""
        response = await self.request({"op": "ping"})
        return int(response["applied_seq"])

    async def register(self, objects: List[Dict[str, object]]) -> List[str]:
        """Register objects (``{"id", "prediction", "accuracy"}`` specs)."""
        response = await self.request({"op": "register", "objects": objects})
        return [str(object_id) for object_id in response["registered"]]

    async def ingest(
        self,
        time: float,
        batch: List[Tuple[str, UpdateMessage]],
        wait: bool = True,
        check: bool = True,
    ) -> Dict[str, object]:
        """Submit one update batch; the response carries its ``seq``."""
        payload = {
            "op": "ingest",
            "t": time,
            "updates": [encode_message(object_id, message) for object_id, message in batch],
        }
        if not wait:
            payload["wait"] = False
        return await self.request(payload, check=check)

    async def range_query(
        self,
        area: BoundingBox,
        time: float,
        margin: float = 0.0,
        min_seq: int = 0,
    ) -> Tuple[List[str], int]:
        """Range query; returns ``(sorted ids, at_seq)``."""
        response = await self.request(
            {
                "op": "range",
                "t": time,
                "box": [area.min_x, area.min_y, area.max_x, area.max_y],
                "margin": margin,
                "min_seq": min_seq,
            }
        )
        return decode_answer("range", response["answer"]), int(response["at_seq"])

    async def nearest_objects(
        self,
        point: Tuple[float, float],
        time: float,
        k: int = 1,
        min_seq: int = 0,
    ) -> Tuple[List[Tuple[str, float]], int]:
        """k-nearest query; returns ``([(id, distance)], at_seq)``."""
        response = await self.request(
            {
                "op": "nearest",
                "t": time,
                "point": [point[0], point[1]],
                "k": k,
                "min_seq": min_seq,
            }
        )
        return decode_answer("nearest", response["answer"]), int(response["at_seq"])

    async def geofence_query(
        self,
        point: Tuple[float, float],
        radius: float,
        time: float,
        min_seq: int = 0,
    ) -> Tuple[List[Tuple[str, float]], int]:
        """Geofence query; returns ``([(id, distance)], at_seq)``."""
        response = await self.request(
            {
                "op": "geofence",
                "t": time,
                "point": [point[0], point[1]],
                "radius": radius,
                "min_seq": min_seq,
            }
        )
        return decode_answer("geofence", response["answer"]), int(response["at_seq"])

    async def query_call(
        self,
        workload: QueryWorkload,
        call: QueryCall,
        min_seq: int = 0,
    ) -> Tuple[object, int]:
        """Issue one :class:`QueryCall` exactly as the workload executor would.

        The concrete parameters (range box from the centre, k, radius,
        margin) are derived here from the workload's knobs with the same
        arithmetic as :func:`repro.sim.workload.execute_call`, so the
        server-side facade sees bit-identical arguments.
        """
        if call.kind == "range":
            half = workload.range_extent_m / 2.0
            area = BoundingBox(
                call.cx - half, call.cy - half, call.cx + half, call.cy + half
            )
            answer, at_seq = await self.range_query(
                area, call.time, margin=workload.margin, min_seq=min_seq
            )
        elif call.kind == "nearest":
            answer, at_seq = await self.nearest_objects(
                (call.cx, call.cy), call.time, k=workload.k, min_seq=min_seq
            )
        else:
            answer, at_seq = await self.geofence_query(
                (call.cx, call.cy),
                workload.geofence_radius_m,
                call.time,
                min_seq=min_seq,
            )
        return answer, at_seq

    async def stats(self) -> Dict[str, object]:
        """Server + service statistics."""
        return await self.request({"op": "stats"})

    async def shutdown(self) -> None:
        """Ask the server to shut down (it finishes in-flight work first)."""
        await self.request({"op": "shutdown"})
