"""E7 — Figure 10: walking person.

Same protocol comparison for the pedestrian scenario, with the requested
accuracy swept from 20 m to 250 m.  The paper notes that this is the one
case where the linear protocol can need fewer updates than the map-based
one (at the smallest requested uncertainty) and that the relative advantage
of dead reckoning shrinks as the uncertainty grows.
"""

from repro.experiments.figures import figure10

from conftest import run_once
from figure_common import assert_figure_shape, print_figure


def test_figure10_walking(benchmark, scale):
    figure = run_once(benchmark, figure10, scale=scale)
    print_figure(figure, "Fig. 10 — walking person")
    assert_figure_shape(figure, map_should_win=False)
    # Dead reckoning still helps at tight accuracies...
    linear_rel = figure.series["linear"].relative_to(figure.baseline)
    assert linear_rel[0] < 90.0
    # ...but the advantage fades towards the loose end of the sweep, where
    # the update rates of all protocols are within a factor of ~2.
    assert linear_rel[-1] > 45.0
