"""Parameter sweeps over the requested accuracy.

The paper's figures plot updates per hour against the accuracy requested at
the server (20-500 m for cars, 20-250 m for a walking person), one curve per
protocol.  :func:`run_accuracy_sweep` produces exactly those curves for one
scenario and one protocol configuration.

Both functions are thin wrappers over :class:`~repro.sim.runner.SweepRunner`
(the shared execution layer with caching, parallel executors and artifact
output); pass a configured runner to parallelise or to reuse its caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.mobility.scenarios import Scenario
from repro.protocols.base import UpdateProtocol
from repro.sim.metrics import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.sim.runner import SweepRunner


@dataclass(frozen=True)
class SweepPoint:
    """One point of a protocol's curve: a requested accuracy and its result."""

    accuracy: float
    result: SimulationResult

    @property
    def updates_per_hour(self) -> float:
        """Shortcut to the headline metric."""
        return self.result.updates_per_hour


def _default_runner(runner: Optional["SweepRunner"]) -> "SweepRunner":
    if runner is not None:
        return runner
    from repro.sim.runner import SweepRunner

    return SweepRunner()


def run_accuracy_sweep(
    scenario: Scenario,
    protocol_factory: Callable[[float], UpdateProtocol],
    accuracies: Optional[Sequence[float]] = None,
    runner: Optional["SweepRunner"] = None,
) -> List[SweepPoint]:
    """Run *protocol_factory* over every requested accuracy of the scenario.

    Parameters
    ----------
    scenario:
        The movement scenario (provides sensor/truth traces and the default
        accuracy sweep).
    protocol_factory:
        Callable mapping a requested accuracy ``us`` to a fresh protocol
        instance.  A fresh instance per point is required because protocols
        are stateful (see :meth:`~repro.protocols.base.UpdateProtocol.clone_for`
        for the cheap way to produce one).
    accuracies:
        Override of the accuracy values; defaults to the scenario's sweep.
    runner:
        The :class:`~repro.sim.runner.SweepRunner` to execute on; a default
        serial runner is used when omitted.
    """
    return _default_runner(runner).run_factory_sweep(scenario, protocol_factory, accuracies)


def run_config_sweep(
    scenario: Scenario,
    protocol_id: str,
    accuracies: Optional[Sequence[float]] = None,
    runner: Optional["SweepRunner"] = None,
    **config_kwargs,
) -> List[SweepPoint]:
    """Sweep a protocol identified by its :class:`SimulationConfig` id."""
    return _default_runner(runner).run_config_sweep(
        scenario, protocol_id, accuracies, **config_kwargs
    )
