"""The bench-regression guard over committed ``BENCH_*.json`` artifacts."""

from __future__ import annotations

import importlib.util
import json
import os
import shutil

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_guard():
    path = os.path.join(_REPO_ROOT, "benchmarks", "check_bench_floors.py")
    spec = importlib.util.spec_from_file_location("check_bench_floors", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


guard = _load_guard()


def _copy_artifacts(tmp_path):
    for name in guard._SPECS:
        shutil.copy(os.path.join(_REPO_ROOT, name), tmp_path / name)


def _rewrite(tmp_path, name, mutate):
    path = tmp_path / name
    record = json.loads(path.read_text())
    mutate(record)
    path.write_text(json.dumps(record))


def test_committed_artifacts_meet_their_floors():
    """The repository's own committed artifacts are healthy."""
    assert guard.check_all(_REPO_ROOT) == []


def test_main_exit_codes(tmp_path, capsys):
    _copy_artifacts(tmp_path)
    assert guard.main([str(tmp_path)]) == 0
    _rewrite(
        tmp_path,
        "BENCH_event_kernel.json",
        lambda r: r.__setitem__("speedup", r["required_speedup"] / 2),
    )
    assert guard.main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "BENCH_event_kernel.json" in out and "below the recorded floor" in out


def test_floor_regression_detected(tmp_path):
    _copy_artifacts(tmp_path)
    _rewrite(
        tmp_path,
        "BENCH_megafleet.json",
        lambda r: r.__setitem__("realtime_factor_largest", 0.5),
    )
    failures = guard.check_all(str(tmp_path))
    assert any(
        "BENCH_megafleet.json" in f and "realtime_factor_largest" in f
        for f in failures
    )


def test_nested_floor_regression_detected(tmp_path):
    _copy_artifacts(tmp_path)
    _rewrite(
        tmp_path,
        "BENCH_ingest.json",
        lambda r: r["routing"].__setitem__("speedup", 0.1),
    )
    failures = guard.check_all(str(tmp_path))
    assert any("routing.speedup" in f for f in failures)


def test_false_identity_flag_detected(tmp_path):
    _copy_artifacts(tmp_path)
    _rewrite(
        tmp_path,
        "BENCH_megafleet.json",
        lambda r: r.__setitem__("multiprocess_identical", False),
    )
    failures = guard.check_all(str(tmp_path))
    assert any("multiprocess_identical" in f for f in failures)


def test_missing_artifact_detected(tmp_path):
    _copy_artifacts(tmp_path)
    os.remove(tmp_path / "BENCH_query_engine.json")
    failures = guard.check_all(str(tmp_path))
    assert any(
        "BENCH_query_engine.json" in f and "missing" in f for f in failures
    )


def test_unregistered_artifact_detected(tmp_path):
    _copy_artifacts(tmp_path)
    (tmp_path / "BENCH_mystery.json").write_text("{}")
    failures = guard.check_all(str(tmp_path))
    assert any("BENCH_mystery.json" in f and "no floor spec" in f for f in failures)


def test_missing_keys_detected(tmp_path):
    _copy_artifacts(tmp_path)
    _rewrite(tmp_path, "BENCH_sweep_runner.json", lambda r: r.pop("speedup"))
    failures = guard.check_all(str(tmp_path))
    assert any("BENCH_sweep_runner.json" in f and "speedup" in f for f in failures)
