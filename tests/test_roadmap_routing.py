"""Unit tests for repro.roadmap.routing."""

import random

import networkx as nx
import numpy as np
import pytest

from repro.roadmap.generators import city_grid_map
from repro.roadmap.routing import Route, RoutePlanner


@pytest.fixture(scope="module")
def city():
    return city_grid_map(rows=6, cols=6, spacing_m=200.0, jitter_m=0.0, seed=0)


@pytest.fixture(scope="module")
def planner(city):
    return RoutePlanner(city)


class TestRoute:
    def test_route_requires_links(self, city):
        with pytest.raises(ValueError):
            Route(city, [])

    def test_route_requires_connected_links(self, city, planner):
        route = planner.random_route(min_length=1000.0, rng=random.Random(0))
        links = [route.links[0], route.links[-1]]
        if links[0].to_node != links[1].from_node:
            with pytest.raises(ValueError):
                Route(city, links)

    def test_length_is_sum_of_links(self, planner):
        route = planner.random_route(min_length=1500.0, rng=random.Random(1))
        assert route.length == pytest.approx(sum(l.length for l in route.links))

    def test_point_at_endpoints(self, planner):
        route = planner.random_route(min_length=1500.0, rng=random.Random(2))
        np.testing.assert_allclose(route.point_at(0.0), route.start)
        np.testing.assert_allclose(route.point_at(route.length), route.end)

    def test_link_at_boundaries(self, planner):
        route = planner.random_route(min_length=1500.0, rng=random.Random(3))
        first_link, offset = route.link_at(0.0)
        assert first_link.id == route.links[0].id
        assert offset == 0.0
        last_link, offset = route.link_at(route.length)
        assert last_link.id == route.links[-1].id
        assert offset == pytest.approx(last_link.length)

    def test_link_index_monotone(self, planner):
        route = planner.random_route(min_length=2000.0, rng=random.Random(4))
        offsets = np.linspace(0.0, route.length, 50)
        indices = [route.link_index_at(o) for o in offsets]
        assert indices == sorted(indices)

    def test_node_sequence_consistent(self, planner):
        route = planner.random_route(min_length=1500.0, rng=random.Random(5))
        nodes = route.node_sequence()
        assert len(nodes) == len(route.links) + 1
        for link, a, b in zip(route.links, nodes, nodes[1:]):
            assert link.from_node == a
            assert link.to_node == b

    def test_distance_to_next_node(self, planner):
        route = planner.random_route(min_length=1500.0, rng=random.Random(6))
        d = route.distance_to_next_node(10.0)
        assert 0.0 < d <= route.links[0].length

    def test_speed_limit_at(self, planner):
        route = planner.random_route(min_length=1000.0, rng=random.Random(7))
        assert route.speed_limit_at(0.0) > 0

    def test_project_roundtrip(self, planner):
        route = planner.random_route(min_length=1500.0, rng=random.Random(8))
        target = route.point_at(route.length / 3.0)
        projected, offset, dist = route.project(target)
        assert dist < 1e-6
        np.testing.assert_allclose(route.point_at(offset), target, atol=1e-6)


class TestRoutePlanner:
    def test_invalid_weight(self, city):
        with pytest.raises(ValueError):
            RoutePlanner(city, weight="bananas")

    def test_shortest_route_grid_distance(self, city, planner):
        # Corner to corner on a 6x6 grid with 200 m spacing: 5+5 edges = 2000 m.
        corner_a, _ = city.nearest_intersection((0.0, 0.0))
        corner_b, _ = city.nearest_intersection((1000.0, 1000.0))
        route = planner.shortest_route(corner_a.id, corner_b.id)
        assert route.length == pytest.approx(2000.0, rel=1e-6)
        assert route.node_sequence()[0] == corner_a.id
        assert route.node_sequence()[-1] == corner_b.id

    def test_route_from_nodes_requires_adjacency(self, city, planner):
        corner_a, _ = city.nearest_intersection((0.0, 0.0))
        corner_b, _ = city.nearest_intersection((1000.0, 1000.0))
        with pytest.raises(ValueError):
            planner.route_from_nodes([corner_a.id, corner_b.id])

    def test_route_from_nodes_too_short(self, planner):
        with pytest.raises(ValueError):
            planner.route_from_nodes([0])

    def test_route_from_links(self, city, planner):
        route = planner.random_route(min_length=800.0, rng=random.Random(9))
        rebuilt = planner.route_from_links([l.id for l in route.links])
        assert rebuilt.length == pytest.approx(route.length)

    def test_random_route_min_length(self, planner):
        route = planner.random_route(min_length=3000.0, rng=random.Random(10))
        assert route.length >= 3000.0

    def test_random_route_is_connected(self, planner):
        route = planner.random_route(min_length=2500.0, rng=random.Random(11))
        for a, b in zip(route.links, route.links[1:]):
            assert a.to_node == b.from_node

    def test_random_route_straight_bias_reduces_turns(self, city):
        planner = RoutePlanner(city)

        def count_turns(route):
            turns = 0
            for a, b in zip(route.links, route.links[1:]):
                da = a.direction_at(a.length)
                db = b.direction_at(0.0)
                if float(da @ db) < 0.9:
                    turns += 1
            return turns / max(1, len(route.links) - 1)

        wiggly = planner.random_route(min_length=4000.0, rng=random.Random(12), straight_bias=0.0)
        straight = planner.random_route(
            min_length=4000.0, rng=random.Random(12), straight_bias=0.9
        )
        assert count_turns(straight) < count_turns(wiggly)

    def test_random_route_invalid_bias(self, planner):
        with pytest.raises(ValueError):
            planner.random_route(min_length=100.0, straight_bias=1.5)

    def test_unreachable_raises(self, city, planner):
        corner_a, _ = city.nearest_intersection((0.0, 0.0))
        with pytest.raises(nx.NetworkXException):
            planner.shortest_route(corner_a.id, 10_000)


class TestDeterministicTieBreak:
    """Equal-cost shortest paths must resolve identically on every engine.

    The jitter-free city grid is maximally tie-rich: every monotone
    staircase between two corners has the same length.  The canonical path
    (lexicographically smallest under the per-link tie keys) is pinned
    literally — any change to the tie-breaking scheme, in either engine,
    shows up here before it can break CH==Dijkstra path identity.
    """

    def _nodes(self, route):
        return [route.links[0].from_node] + [link.to_node for link in route.links]

    def test_corner_to_corner_path_pinned(self, city, planner):
        route = planner.shortest_route(0, 35)
        assert self._nodes(route) == [0, 1, 2, 3, 4, 10, 16, 22, 28, 34, 35]

    def test_interior_path_pinned(self, city, planner):
        route = planner.shortest_route(2, 33)
        assert self._nodes(route) == [2, 8, 14, 20, 26, 27, 33]

    def test_replanning_is_stable(self, city):
        first = RoutePlanner(city).shortest_route(0, 35)
        second = RoutePlanner(city).shortest_route(0, 35)
        assert [l.id for l in first.links] == [l.id for l in second.links]

    def test_ch_returns_the_same_canonical_path(self, city, planner):
        ch_planner = RoutePlanner(city, algo="ch")
        for source, target in ((0, 35), (2, 33), (30, 5), (0, 7)):
            expected = planner.shortest_route(source, target)
            actual = ch_planner.shortest_route(source, target)
            assert [l.id for l in actual.links] == [l.id for l in expected.links]
