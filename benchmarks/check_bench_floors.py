"""Regression guard over the committed ``BENCH_*.json`` artifacts.

Every benchmark records the floor it asserts (``required_speedup`` /
``required_realtime``) *inside* its committed artifact, next to the number
it achieved — the artifacts are self-describing.  This guard re-reads the
committed files and fails when

* an achieved number sits below the floor recorded beside it (a perf
  regression was committed),
* an achieved number sits above the ceiling recorded beside it (overhead
  budgets, e.g. ``BENCH_obs.json``),
* a recorded identity/equivalence flag is ``False`` (a correctness
  regression was committed),
* an expected artifact is missing, or
* a ``BENCH_*.json`` appears at the repository root without a floor spec
  here (new benchmarks must register their guard).

Run it directly (CI does, before regenerating any artifact)::

    python benchmarks/check_bench_floors.py

or programmatically via :func:`check_all`, which returns the list of
failure messages (empty when the committed artifacts are healthy).
"""

from __future__ import annotations

import glob
import json
import os
import sys
from typing import List

#: Per-artifact guard spec: ``floors`` maps an achieved metric (dotted
#: path) to the recorded floor it must meet (dotted path into the same
#: file); ``ceilings`` maps an achieved metric to the recorded maximum it
#: must stay at or below; ``flags`` lists recorded booleans that must be
#: true.
_SPECS = {
    "BENCH_event_kernel.json": {
        "floors": {"speedup": "required_speedup"},
        "flags": ["results_identical", "stats_identical_modulo_queue_delay"],
    },
    "BENCH_sweep_runner.json": {
        "floors": {"speedup": "required_speedup"},
        "flags": ["updates_per_hour_identical"],
    },
    "BENCH_query_engine.json": {
        "floors": {
            "speedup": "required_speedup",
            "speedup_vs_linear": "required_speedup_vs_linear",
        },
        "ceilings": {"load_imbalance": "max_load_imbalance"},
        "flags": ["answers_identical"],
    },
    "BENCH_ingest.json": {
        "floors": {
            "routing.speedup": "routing.required_speedup",
            "cache_speedup": "required_cache_speedup",
        },
        "flags": [],
    },
    "BENCH_bigmap.json": {
        "floors": {"reference.speedup": "reference.required_speedup"},
        "flags": [
            "reference.costs_identical",
            "reference.paths_identical",
            "query.sub_ms_p50",
        ],
    },
    "BENCH_megafleet.json": {
        "floors": {"realtime_factor_largest": "required_realtime"},
        "flags": ["columnar_identical_to_event", "multiprocess_identical"],
    },
    "BENCH_serve.json": {
        "floors": {
            "runs.clients_1.throughput_rps": "required_throughput_rps",
            "runs.clients_4.throughput_rps": "required_throughput_rps",
        },
        "flags": ["answers_identical", "p99_nonzero"],
    },
    "BENCH_obs.json": {
        "floors": {},
        "ceilings": {"overhead_pct": "max_overhead_pct"},
        "flags": ["results_identical", "metrics_consistent"],
    },
}


def _lookup(record: dict, dotted: str):
    value = record
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            raise KeyError(dotted)
        value = value[part]
    return value


def check_artifact(path: str, spec: dict) -> List[str]:
    """Failure messages for one committed artifact (empty = healthy)."""
    name = os.path.basename(path)
    try:
        with open(path, encoding="utf-8") as fh:
            record = json.load(fh)
    except FileNotFoundError:
        return [f"{name}: missing (expected a committed benchmark artifact)"]
    except json.JSONDecodeError as exc:
        return [f"{name}: unreadable JSON ({exc})"]
    failures = []
    for achieved_path, floor_path in spec.get("floors", {}).items():
        try:
            achieved = _lookup(record, achieved_path)
            floor = _lookup(record, floor_path)
        except KeyError as exc:
            failures.append(f"{name}: missing key {exc.args[0]}")
            continue
        if achieved is None or achieved < floor:
            failures.append(
                f"{name}: {achieved_path} = {achieved} is below the recorded "
                f"floor {floor_path} = {floor}"
            )
    for achieved_path, ceiling_path in spec.get("ceilings", {}).items():
        try:
            achieved = _lookup(record, achieved_path)
            ceiling = _lookup(record, ceiling_path)
        except KeyError as exc:
            failures.append(f"{name}: missing key {exc.args[0]}")
            continue
        if achieved is None or achieved > ceiling:
            failures.append(
                f"{name}: {achieved_path} = {achieved} is above the recorded "
                f"ceiling {ceiling_path} = {ceiling}"
            )
    for flag in spec["flags"]:
        try:
            value = _lookup(record, flag)
        except KeyError:
            failures.append(f"{name}: missing key {flag}")
            continue
        if value is not True:
            failures.append(f"{name}: {flag} is {value!r}, expected true")
    return failures


def check_all(root: str) -> List[str]:
    """Check every specced artifact under *root*; returns failure messages."""
    failures = []
    for name, spec in _SPECS.items():
        failures.extend(check_artifact(os.path.join(root, name), spec))
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        if os.path.basename(path) not in _SPECS:
            failures.append(
                f"{os.path.basename(path)}: no floor spec registered in "
                "benchmarks/check_bench_floors.py"
            )
    return failures


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    root = args[0] if args else os.path.join(os.path.dirname(__file__), "..")
    failures = check_all(root)
    if failures:
        print("benchmark floor regressions:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"all {len(_SPECS)} committed benchmark artifacts meet their floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
