"""Property-based tests for the spatial indexes (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geo.bbox import BoundingBox
from repro.geo.segment import Segment
from repro.spatial.grid import GridIndex
from repro.spatial.index import IndexedItem, brute_force_nearest
from repro.spatial.rtree import STRtree

coordinate = st.floats(min_value=-10_000.0, max_value=10_000.0, allow_nan=False)
point = st.tuples(coordinate, coordinate)


def build_items(segments):
    items = []
    for i, (a, b) in enumerate(segments):
        seg = Segment(a, b)
        items.append(
            IndexedItem(key=i, bounds=BoundingBox(*seg.bounds()), distance=seg.distance_to)
        )
    return items


@settings(max_examples=50, deadline=None)
@given(
    segments=st.lists(st.tuples(point, point), min_size=1, max_size=30),
    query=point,
)
def test_grid_nearest_matches_brute_force(segments, query):
    items = build_items(segments)
    index = GridIndex(cell_size=500.0, items=items)
    expected = brute_force_nearest(items, query)
    got = index.nearest(query)
    assert got is not None and expected is not None
    assert np.isclose(got[1], expected[1], atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    segments=st.lists(st.tuples(point, point), min_size=1, max_size=30),
    query=point,
)
def test_rtree_nearest_matches_brute_force(segments, query):
    items = build_items(segments)
    tree = STRtree(items, node_capacity=4)
    expected = brute_force_nearest(items, query)
    got = tree.nearest(query)
    assert got is not None and expected is not None
    assert np.isclose(got[1], expected[1], atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    segments=st.lists(st.tuples(point, point), min_size=1, max_size=25),
    query=point,
    radius=st.floats(min_value=1.0, max_value=5_000.0),
)
def test_query_radius_is_exact(segments, query, radius):
    items = build_items(segments)
    index = GridIndex(cell_size=700.0, items=items)
    hits = {item.key for item in index.query_radius(query, radius)}
    expected = {item.key for item in items if item.distance(np.asarray(query)) <= radius}
    assert hits == expected


@settings(max_examples=50, deadline=None)
@given(segments=st.lists(st.tuples(point, point), min_size=1, max_size=25))
def test_grid_and_rtree_agree_on_bbox_queries(segments):
    items = build_items(segments)
    grid = GridIndex(cell_size=800.0, items=items)
    tree = STRtree(items, node_capacity=4)
    box = BoundingBox(-2_000.0, -2_000.0, 2_000.0, 2_000.0)
    assert {i.key for i in grid.query_bbox(box)} == {i.key for i in tree.query_bbox(box)}
