"""Unit tests for repro.roadmap.io."""

import json

import numpy as np
import pytest

from repro.roadmap.generators import city_grid_map, freeway_map
from repro.roadmap.io import (
    FORMAT_VERSION,
    load_roadmap,
    roadmap_from_dict,
    roadmap_to_dict,
    save_roadmap,
)


class TestDictRoundtrip:
    def test_roundtrip_preserves_counts(self):
        original = city_grid_map(rows=4, cols=4, seed=0)
        rebuilt = roadmap_from_dict(roadmap_to_dict(original))
        assert rebuilt.num_intersections() == original.num_intersections()
        assert rebuilt.num_links() == original.num_links()
        assert rebuilt.total_length() == pytest.approx(original.total_length())

    def test_roundtrip_preserves_geometry(self):
        original = freeway_map(length_km=15.0, seed=1)
        rebuilt = roadmap_from_dict(roadmap_to_dict(original))
        for link_id, link in original.links.items():
            twin = rebuilt.link(link_id)
            np.testing.assert_allclose(twin.geometry.points, link.geometry.points)
            assert twin.road_class == link.road_class
            assert twin.speed_limit == pytest.approx(link.speed_limit)

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            roadmap_from_dict({"format": "something-else", "version": FORMAT_VERSION})

    def test_rejects_wrong_version(self):
        data = roadmap_to_dict(city_grid_map(rows=3, cols=3, seed=2))
        data["version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError):
            roadmap_from_dict(data)

    def test_dict_is_json_serialisable(self):
        data = roadmap_to_dict(city_grid_map(rows=3, cols=3, seed=3))
        text = json.dumps(data)
        assert json.loads(text)["format"] == "repro-roadmap"


class TestFileRoundtrip:
    def test_save_and_load(self, tmp_path):
        original = city_grid_map(rows=4, cols=3, seed=4)
        path = tmp_path / "map.json"
        save_roadmap(original, path)
        assert path.exists()
        rebuilt = load_roadmap(path)
        assert rebuilt.num_links() == original.num_links()
        stats_a = original.statistics()
        stats_b = rebuilt.statistics()
        assert stats_a["total_length_km"] == pytest.approx(stats_b["total_length_km"])
