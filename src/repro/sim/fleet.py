"""Fleet-scale simulation: many objects through one time-ordered loop.

:class:`FleetSimulation` is the simulation core every experiment entry point
ultimately runs on.  It steps any number of *lanes* — one (object, protocol,
trace) combination each — through a single merged, time-ordered event loop
against one shared :class:`~repro.service.server.LocationServer` and one (or
several) :class:`~repro.service.channel.MessageChannel`\\ s, and collects one
:class:`~repro.sim.metrics.SimulationResult` per object plus aggregates.

Design properties the rest of the stack relies on:

* **Equivalence** — because objects only interact through their own channel
  and server record, a fleet run of N lanes produces exactly the same
  per-object updates and error samples as N independent single-object runs
  (for deterministic channels; a *shared* lossy channel draws its losses
  from one RNG stream and therefore differs from N per-run RNGs).
  :class:`~repro.sim.engine.ProtocolSimulation` delegates here with a single
  lane, so the equivalence is structural, not coincidental.
* **Vectorised hot path** — speed/heading estimates for each sensor trace
  are precomputed in one batched pass
  (:func:`repro.traces.estimation.estimate_trace`, bitwise identical to the
  streaming estimator), server queries go through the batch
  :meth:`~repro.service.server.LocationServer.predict_positions` API once
  per timestep, and error samples are accumulated into
  :class:`~repro.sim.metrics.AccuracyMetrics` as one array per lane.
* **Two kernels, one semantics** — the fleet runs either on the classic
  time-stepped loop (``kernel="tick"``) or on the discrete-event scheduler
  of :mod:`repro.sim.kernel` (``kernel="event"``).  The tick loop is the
  degenerate schedule of the event kernel: when every lane shares the tick
  rate, channel latency is a tick multiple, and no protocol timer fires
  off the sampling grid (threshold protocols announce no timers; periodic
  reporting stays on-grid when its interval is a tick multiple), both
  produce bit-identical updates, metrics and service statistics (asserted
  by the test-suite over the whole scenario library).  Off-grid timer
  deadlines are the event kernel's *intended* divergence: a periodic
  report fires at exactly ``t0 + k·interval`` instead of at the next
  polled sighting.  The event kernel additionally delivers channel
  messages at their exact instants, supports Poisson query arrivals, and
  skips the per-tick queue scans — which is what makes sparse mixed-rate
  fleets cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.vec import distance
from repro.obs import Observability
from repro.obs.metrics import publish_service_stats
from repro.protocols.base import UpdateProtocol
from repro.service.channel import ChannelStats, MessageChannel, delivery_order
from repro.service.server import LocationServer
from repro.service.sharding import GridHashPolicy
from repro.service.source import LocationSource
from repro.sim.kernel import (
    DELIVERY,
    HANDOFF,
    KIND_NAMES,
    QUERY,
    SAMPLE,
    TIMER,
    EventKernel,
    validate_kernel,
)
from repro.sim.metrics import AccuracyMetrics, SimulationResult
from repro.sim.workload import QueryWorkload, WorkloadExecutor, WorkloadReport
from repro.traces.estimation import estimate_trace
from repro.traces.trace import Trace


@dataclass(slots=True)
class FleetLane:
    """One (object, protocol, trace) combination stepped by the fleet loop.

    Parameters
    ----------
    object_id:
        Identifier under which the object is registered at the server.
    protocol:
        The source-side update protocol; every lane needs its own instance
        (protocols are stateful).
    sensor_trace:
        What the positioning sensor reports (noisy positions).
    truth_trace:
        Ground truth for the error measurement; the sensor trace doubles as
        truth when omitted.  Must share the sensor trace's timestamps.
    channel:
        Source-to-server channel for this lane; lanes without one share the
        fleet's default channel.
    """

    object_id: str
    protocol: UpdateProtocol
    sensor_trace: Trace
    truth_trace: Optional[Trace] = None
    channel: Optional[MessageChannel] = None


@dataclass
class FleetResult:
    """Outcome of one fleet run: per-object results plus aggregates.

    ``service_stats`` carries the serving tier's per-shard load and query
    counters when the fleet ran against a
    :class:`~repro.service.facade.LocationService` backend (empty for the
    plain single server); ``workload`` is the replayed query workload's
    report, when one was attached.
    """

    results: Dict[str, SimulationResult]
    service_stats: Dict[str, object] = field(default_factory=dict)
    workload: Optional[WorkloadReport] = None

    @property
    def object_ids(self) -> List[str]:
        """Tracked object ids, in lane order."""
        return list(self.results)

    @property
    def total_updates(self) -> int:
        """Update messages summed over the whole fleet."""
        return sum(r.updates for r in self.results.values())

    @property
    def total_bytes_sent(self) -> int:
        """Update payload bytes summed over the whole fleet."""
        return sum(r.bytes_sent for r in self.results.values())

    @property
    def object_hours(self) -> float:
        """Total simulated object-hours (sum of lane durations)."""
        return sum(r.duration_h for r in self.results.values())

    @property
    def updates_per_object_hour(self) -> float:
        """Fleet-level headline metric: updates per simulated object-hour."""
        hours = self.object_hours
        return self.total_updates / hours if hours > 0 else 0.0

    def aggregate_metrics(self) -> AccuracyMetrics:
        """Error metrics pooled over every object of the fleet."""
        pooled = AccuracyMetrics()
        for result in self.results.values():
            pooled.merge(result.metrics)
        return pooled

    def as_rows(self) -> List[Dict[str, object]]:
        """One flat dictionary per object (report / artifact form)."""
        return [
            {"object": object_id, **result.as_dict()}
            for object_id, result in self.results.items()
        ]


class _LaneState:
    """Run-time state of one lane inside the fleet loop."""

    __slots__ = (
        "lane", "channel", "source", "metrics", "reasons", "times",
        "sensor_positions", "truth_positions", "velocities", "speeds",
        "errors",
    )

    def __init__(self, lane: FleetLane, channel: MessageChannel):
        truth = lane.truth_trace if lane.truth_trace is not None else lane.sensor_trace
        if len(truth) != len(lane.sensor_trace):
            raise ValueError("sensor and truth traces must have the same length")
        if not np.allclose(truth.times, lane.sensor_trace.times):
            raise ValueError("sensor and truth traces must share their timestamps")
        self.lane = lane
        self.channel = channel
        self.source = LocationSource(lane.object_id, lane.protocol, channel)
        self.metrics = AccuracyMetrics()
        self.metrics.set_bound(lane.protocol.accuracy)
        self.reasons: Dict[str, int] = {}
        self.times = lane.sensor_trace.times
        self.sensor_positions = lane.sensor_trace.positions
        self.truth_positions = truth.positions
        self.velocities, self.speeds = estimate_trace(
            self.times, self.sensor_positions, lane.protocol.estimator.window
        )
        self.errors: List[float] = []

    def process_sighting(self, i: int, t: float) -> None:
        """Feed sample *i* to the protocol; transmit any resulting update."""
        message = self.source.process_estimated(
            t, self.sensor_positions[i], self.velocities[i], float(self.speeds[i])
        )
        if message is not None:
            key = message.reason.value
            self.reasons[key] = self.reasons.get(key, 0) + 1

    def process_timer(self, t: float) -> None:
        """Fire the protocol's timer at *t*; transmit any resulting update.

        The event kernel's counterpart of :meth:`process_sighting`, sharing
        its per-update bookkeeping.
        """
        message = self.source.process_timer(t)
        if message is not None:
            key = message.reason.value
            self.reasons[key] = self.reasons.get(key, 0) + 1

    def record_error(self, i: int, predicted: Optional[np.ndarray]) -> None:
        """Measure the server's error against ground truth at sample *i*."""
        if predicted is not None:
            self.errors.append(distance(predicted, self.truth_positions[i]))

    def finish(self, count_initial_update: bool) -> SimulationResult:
        """Materialise this lane's :class:`SimulationResult`."""
        self.metrics.record_batch(self.errors)
        protocol = self.lane.protocol
        updates = self.source.updates_sent
        if not count_initial_update and updates > 0:
            updates -= 1
        matcher_stats = {}
        matching_statistics = getattr(protocol, "matching_statistics", None)
        if callable(matching_statistics):
            matcher_stats = matching_statistics()
        return SimulationResult(
            protocol_name=protocol.name,
            accuracy=protocol.accuracy,
            duration_h=self.lane.sensor_trace.duration / 3600.0,
            updates=updates,
            bytes_sent=protocol.bytes_sent,
            metrics=self.metrics,
            update_reasons=self.reasons,
            matcher_stats=matcher_stats,
        )


class FleetSimulation:
    """Step many (object, protocol, trace) lanes through one merged loop.

    Parameters
    ----------
    lanes:
        The fleet's lanes.  Object ids must be unique and protocol instances
        must not be shared between lanes.
    channel:
        Default channel shared by every lane that does not bring its own;
        loss-free and instantaneous when omitted.
    server:
        The service backend — a plain
        :class:`~repro.service.server.LocationServer` (fresh one when
        omitted) or a sharded
        :class:`~repro.service.facade.LocationService`.  Backends exposing
        ``ingest_batch`` receive each tick's delivered updates as one batch;
        with one shard the results are bit-identical to the single server.
    count_initial_update:
        Whether each object's bootstrap update counts towards its update
        total (the paper counts transmitted messages, so the default is
        ``True``).
    query_workload:
        Optional :class:`~repro.sim.workload.QueryWorkload` replayed against
        the backend at every simulation tick (or, with an
        ``arrival_rate_per_s`` under the event kernel, at Poisson arrival
        instants); its report lands on :attr:`FleetResult.workload`.
        Queries are read-only, so attaching a workload never changes the
        simulation results.
    record_query_answers:
        Keep every workload query's answer on
        ``self.workload_executor.answers`` (tests / benchmarks only).
    kernel:
        ``"tick"`` (the classic time-stepped loop) or ``"event"`` (the
        discrete-event scheduler of :mod:`repro.sim.kernel`).  With uniform
        sampling, tick-aligned latency and on-grid (or absent) protocol
        timer deadlines the two are bit-identical; the event kernel
        additionally gives exact channel delivery instants, exact protocol
        timers (off-grid deadlines fire at their exact instants — a
        deliberate divergence from the polled tick loop), Poisson query
        arrivals and cheap sparse mixed-rate fleets.
    handoff_interval:
        Event-kernel only: schedule a shard-boundary maintenance event
        every this many simulated seconds (the backend must expose
        ``rebalance``, i.e. be a
        :class:`~repro.service.facade.LocationService`), so drifting
        objects are handed between shards even while no query forces a
        prepare pass.  ``None`` (default) schedules no handoff events.
    processes:
        Number of worker processes.  With ``processes > 1`` the fleet is
        partitioned into spatial shards (a :class:`GridHashPolicy` over the
        lanes' starting positions) and each shard runs its own event
        kernel in a worker process against a replica of the (empty) server
        backend and channels; the parent merges the per-object results,
        channel counters and service statistics commutatively.  Because
        objects interact only through their own channel messages and server
        record — and seeded lossy channels draw each message's loss from
        ``(seed, object_id, sequence)``, not from a stream consumed in send
        order — the merged outcome is **bit-identical** to the
        single-process run: same updates, error samples, channel stats and
        service stats (asserted by the test-suite over the scenario
        library, on both kernels).  Multi-process runs reject the fleet
        shapes whose results genuinely depend on cross-object interleaving:
        unseeded lossy channels, query workloads (one global RNG stream),
        and tick-kernel latency over mixed sampling grids (a delivery tick
        is the first tick of the *merged* grid).
    obs:
        Optional :class:`~repro.obs.Observability` bundle.  When attached,
        the run records per-event-kind counts, agenda depth, phase spans
        and per-lane work into it (workers of a multi-process run record
        into their own bundle; the parent merges the registries back
        commutatively).  The instruments only watch: results, goldens and
        bit-identity are unchanged whether ``obs`` is attached or not.
    """

    def __init__(
        self,
        lanes: Sequence[FleetLane],
        channel: Optional[MessageChannel] = None,
        server: Optional[LocationServer] = None,
        count_initial_update: bool = True,
        query_workload: Optional[QueryWorkload] = None,
        record_query_answers: bool = False,
        kernel: str = "tick",
        handoff_interval: Optional[float] = None,
        processes: int = 1,
        obs: Optional[Observability] = None,
    ):
        lanes = list(lanes)
        if not lanes:
            raise ValueError("a fleet needs at least one lane")
        ids = [lane.object_id for lane in lanes]
        if len(set(ids)) != len(ids):
            raise ValueError("lane object ids must be unique")
        protocols = {id(lane.protocol) for lane in lanes}
        if len(protocols) != len(lanes):
            raise ValueError("each lane needs its own protocol instance")
        self.lanes = lanes
        self.server = server if server is not None else LocationServer()
        self.shared_channel = channel if channel is not None else MessageChannel()
        self.count_initial_update = bool(count_initial_update)
        self.query_workload = query_workload
        self.record_query_answers = bool(record_query_answers)
        self.kernel = validate_kernel(kernel)
        if (
            query_workload is not None
            and query_workload.arrival_rate_per_s is not None
            and self.kernel != "event"
        ):
            raise ValueError(
                "Poisson query arrivals (arrival_rate_per_s) require kernel='event'"
            )
        if handoff_interval is not None:
            if handoff_interval <= 0:
                raise ValueError("handoff_interval must be positive")
            if self.kernel != "event":
                raise ValueError("handoff events require kernel='event'")
            if not callable(getattr(self.server, "rebalance", None)):
                raise ValueError(
                    "handoff_interval needs a sharded service backend (rebalance())"
                )
        self.handoff_interval = handoff_interval
        self.processes = int(processes)
        if self.processes < 1:
            raise ValueError("processes must be at least 1")
        if self.processes > 1:
            self._validate_multiprocess()
        self.obs = obs
        # Set by _ShardTask: worker runs record lane/kernel metrics into
        # their own registry but must not publish their *partial* service
        # stats — only the parent publishes, after the proven stats merge.
        self._obs_worker = False
        # Worker-shard clock overrides: a shard task runs a lane *subset*,
        # but handoff instants and the delivery horizon must be computed
        # from the whole fleet's clock for the merge to be bit-identical.
        self._clock_start: Optional[float] = None
        self._horizon: Optional[float] = None
        #: The executor of the last run's query workload (``None`` without one).
        self.workload_executor: Optional[WorkloadExecutor] = None

    def _validate_multiprocess(self) -> None:
        """Reject fleet shapes whose results depend on cross-object order."""
        if self.query_workload is not None:
            raise ValueError(
                "query workloads draw from one global RNG stream; "
                "processes > 1 cannot reproduce it — run the workload "
                "single-process"
            )
        channels: List[MessageChannel] = []
        for lane in self.lanes:
            ch = lane.channel if lane.channel is not None else self.shared_channel
            if ch not in channels:
                channels.append(ch)
        for ch in channels:
            if ch.loss_probability > 0.0 and ch._seed is None:
                raise ValueError(
                    "unseeded lossy channels draw losses from a shared RNG "
                    "stream in send order; seed the channel for "
                    "reproducible multi-process runs"
                )
        if self.kernel == "tick" and any(ch.latency > 0.0 for ch in channels):
            grid = self.lanes[0].sensor_trace.times
            if not all(
                np.array_equal(lane.sensor_trace.times, grid) for lane in self.lanes
            ):
                raise ValueError(
                    "tick-kernel channel latency quantises deliveries to the "
                    "fleet's *merged* sampling grid, which a lane partition "
                    "cannot reproduce; use kernel='event' for multi-process "
                    "runs with latency over mixed sampling grids"
                )

    def run(self) -> FleetResult:
        """Execute the fleet simulation and return per-object results.

        ``run()`` is one-shot: it registers every lane's object with the
        server, so calling it again (or running a second fleet against the
        same long-lived server with overlapping ids) is rejected here,
        before any state is mutated.
        """
        if self.processes > 1:
            return self._run_multiprocess()
        server = self.server
        already = [lane.object_id for lane in self.lanes if server.is_registered(lane.object_id)]
        if already:
            raise ValueError(
                f"object ids already registered at the server: {already}; "
                "FleetSimulation.run() is one-shot — build a new fleet (and "
                "use unique ids) for another run"
            )
        # Build every lane state first: _LaneState validates the traces, so
        # a bad lane raises before any lane has been registered or any
        # channel drained.
        states: List[_LaneState] = []
        channels: List[MessageChannel] = []
        for lane in self.lanes:
            channel = lane.channel if lane.channel is not None else self.shared_channel
            states.append(_LaneState(lane, channel))
            if channel not in channels:
                channels.append(channel)
        for state in states:
            server.register_object(
                state.lane.object_id,
                prediction=state.lane.protocol.prediction_function(),
                accuracy=state.lane.protocol.accuracy,
            )
        # A caller-supplied channel may still carry undelivered messages
        # from a previous run; drain everything before the clock starts.
        for channel in channels:
            channel.reset()

        executor: Optional[WorkloadExecutor] = None
        if self.query_workload is not None:
            executor = WorkloadExecutor(
                self.query_workload,
                server,
                self._fleet_area(states),
                record_answers=self.record_query_answers,
            )
        self.workload_executor = executor

        obs = self.obs
        if obs is not None and getattr(server, "obs", False) is None:
            # Backends with an obs seam (the sharded facade) inherit the
            # fleet's bundle unless the caller attached their own.
            server.obs = obs
        loop_span = None if obs is None else obs.span(
            f"fleet.{self.kernel}_loop", cat="sim", args={"lanes": len(states)}
        )
        try:
            if self.kernel == "event":
                self._run_event(states, channels, executor)
            elif len(states) == 1:
                self._run_single(states[0], executor)
            else:
                self._run_merged(states, executor)
        finally:
            if loop_span is not None:
                loop_span.close()

        results = {
            state.lane.object_id: state.finish(self.count_initial_update)
            for state in states
        }
        home_shard = getattr(server, "home_shard", None)
        if callable(home_shard):
            for object_id, result in results.items():
                result.service_stats = {"shard": home_shard(object_id)}
        service_stats = getattr(server, "service_stats", None)
        stats = service_stats() if callable(service_stats) else {}
        if obs is not None:
            self._record_lane_metrics(obs, states)
            if stats and not self._obs_worker:
                publish_service_stats(obs.registry, stats)
        return FleetResult(
            results=results,
            service_stats=stats,
            workload=executor.report if executor is not None else None,
        )

    @staticmethod
    def _record_lane_metrics(obs: Observability, states: List["_LaneState"]) -> None:
        """Record per-run lane aggregates — all partition-invariant.

        Samples, updates, bytes and error samples are per-lane sums, so a
        worker partition records exactly its share and the merged registry
        matches the single-process run bit for bit (the counters stay
        integers, exact under addition).
        """
        registry = obs.registry
        registry.counter("sim.lanes").inc(len(states))
        registry.counter("sim.samples").inc(sum(len(s.times) for s in states))
        registry.counter("sim.updates_sent").inc(
            sum(s.source.updates_sent for s in states)
        )
        registry.counter("sim.bytes_sent").inc(
            sum(s.lane.protocol.bytes_sent for s in states)
        )
        registry.counter("sim.error_samples").inc(sum(len(s.errors) for s in states))
        reasons: Dict[str, int] = {}
        for state in states:
            for reason, count in state.reasons.items():
                reasons[reason] = reasons.get(reason, 0) + count
        for reason in sorted(reasons):
            registry.counter(f"sim.update_reason.{reason}").inc(reasons[reason])

    @staticmethod
    def _fleet_area(states: List["_LaneState"]) -> BoundingBox:
        """Bounding box of every lane's truth trace (query-centre domain)."""
        mins = np.min([state.truth_positions.min(axis=0) for state in states], axis=0)
        maxs = np.max([state.truth_positions.max(axis=0) for state in states], axis=0)
        return BoundingBox(float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    # ------------------------------------------------------------------ #
    # loop variants
    # ------------------------------------------------------------------ #
    def _run_single(
        self, state: _LaneState, executor: Optional[WorkloadExecutor] = None
    ) -> None:
        """Plain per-sample loop for a single lane (no merge overhead)."""
        server = self.server
        ingest = getattr(server, "ingest_batch", None)
        channel = state.channel
        object_id = state.lane.object_id
        for i, t in enumerate(state.times.tolist()):
            state.process_sighting(i, t)
            delivered = channel.deliver_due(t)
            if delivered:
                if ingest is not None:
                    ingest(delivered, t)
                else:
                    for obj_id, message in delivered:
                        server.receive_update(obj_id, message, t)
            state.record_error(i, server.predict_position(object_id, t))
            if executor is not None:
                executor.on_tick(t)

    def _run_merged(
        self, states: List[_LaneState], executor: Optional[WorkloadExecutor] = None
    ) -> None:
        """Time-ordered merge of every lane's samples.

        Events at the same timestamp are processed as one batch: all
        sightings first, then all due channel deliveries (ingested as one
        per-tick batch when the backend supports it), then one batched
        position query for the objects sampled at that instant.  Per lane
        this preserves exactly the single-run order (sight, deliver,
        predict), which is what makes fleet results identical to
        independent runs.
        """
        server = self.server
        times_all = np.concatenate([state.times for state in states])
        lane_ix = np.concatenate(
            [np.full(len(state.times), n, dtype=np.intp) for n, state in enumerate(states)]
        )
        sample_ix = np.concatenate(
            [np.arange(len(state.times), dtype=np.intp) for state in states]
        )
        order = np.lexsort((lane_ix, times_all))
        t_sorted = times_all[order]
        lane_sorted = lane_ix[order].tolist()
        sample_sorted = sample_ix[order].tolist()
        t_list = t_sorted.tolist()
        # Boundaries of runs of identical timestamps.
        starts = np.flatnonzero(np.r_[True, t_sorted[1:] != t_sorted[:-1]]).tolist()
        starts.append(len(t_list))

        ingest = getattr(server, "ingest_batch", None)
        for g in range(len(starts) - 1):
            lo, hi = starts[g], starts[g + 1]
            t = t_list[lo]
            batch = [(states[lane_sorted[e]], sample_sorted[e]) for e in range(lo, hi)]
            seen_channels: List[MessageChannel] = []
            for state, i in batch:
                state.process_sighting(i, t)
                if state.channel not in seen_channels:
                    seen_channels.append(state.channel)
            delivered: List = []
            for channel in seen_channels:
                delivered.extend(channel.deliver_due(t))
            if delivered:
                if ingest is not None:
                    ingest(delivered, t)
                else:
                    for obj_id, message in delivered:
                        server.receive_update(obj_id, message, t)
            predicted = server.predict_positions(
                [state.lane.object_id for state, _ in batch], t
            )
            for (state, i), position in zip(batch, predicted):
                state.record_error(i, position)
            if executor is not None:
                executor.on_tick(t)

    def _run_event(
        self,
        states: List[_LaneState],
        channels: List[MessageChannel],
        executor: Optional[WorkloadExecutor] = None,
    ) -> None:
        """Discrete-event schedule over the same lane states.

        Every happening is an agenda entry of :class:`EventKernel`: lane
        sightings (``SAMPLE``), protocol deadline expiries (``TIMER``),
        exact-instant channel deliveries (``DELIVERY``), periodic shard
        maintenance (``HANDOFF``) and workload query arrivals (``QUERY``).
        All events at one instant are drained together and applied in the
        tick loop's per-timestep order — sightings and timers first, then
        one delivery batch (per channel, sorted like
        :meth:`~repro.service.channel.MessageChannel.deliver_due`), then
        the batched error measurement, then queries — which is what makes
        the degenerate schedule bit-identical to the tick loop.
        """
        server = self.server
        ingest = getattr(server, "ingest_batch", None)
        obs = self.obs
        if obs is None:
            kern = EventKernel()
            depth_hist = None
            event_counts = None
        else:
            # One list-index increment + one ring append per event; the
            # counts land in the registry after the loop.  SAMPLE/TIMER/
            # DELIVERY events are scheduled per lane (partition-invariant,
            # hence deterministic); HANDOFF/QUERY are per kernel instance.
            event_counts = [0] * len(KIND_NAMES)
            flight_note = obs.flight.note

            def _on_pop(t, prio, seq, _counts=event_counts, _note=flight_note):
                _counts[prio] += 1
                _note(t, prio, seq)

            kern = EventKernel(on_pop=_on_pop)
            depth_hist = obs.histogram(
                "kernel.agenda_depth",
                bounds=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384),
            )
        times_per_lane = [state.times.tolist() for state in states]
        lane_samples = [len(t) for t in times_per_lane]
        lane_end = [t[-1] for t in times_per_lane]
        end_time = max(lane_end) if self._horizon is None else self._horizon
        next_sample = [0] * len(states)
        # Lanes whose protocol never announces deadlines (the base-class
        # hook) skip timer arming entirely — it is pure overhead on the
        # per-sample hot path of threshold-style protocols.
        uses_timer = [
            type(state.lane.protocol).next_deadline is not UpdateProtocol.next_deadline
            for state in states
        ]
        channel_index = {channel: n for n, channel in enumerate(channels)}
        #: Deadline currently scheduled per lane; superseded entries stay on
        #: the agenda and are ignored as stale when they pop.
        armed: List[Optional[float]] = [None] * len(states)

        def arm_timer(n: int) -> None:
            deadline = states[n].lane.protocol.next_deadline()
            if deadline is None or deadline == armed[n] or deadline > lane_end[n]:
                return
            kern.schedule(deadline, TIMER, (n, deadline))
            armed[n] = deadline

        def delivery_scheduler(channel):
            # The simulation clock stops at the last sighting (exactly like
            # the tick loop): a message due past the horizon stays
            # undelivered rather than extending the run.
            def schedule(deliver_at, oid, msg, _ch=channel):
                if deliver_at <= end_time:
                    kern.schedule(deliver_at, DELIVERY, (_ch, oid, msg))
            return schedule

        # Bind inside the try: if any bind raises, the finally below still
        # unbinds whatever was bound so far (unbinding an unbound channel is
        # a no-op), leaving every channel usable for another run.
        try:
            for channel in channels:
                channel.bind_scheduler(delivery_scheduler(channel))
            for n, t_list in enumerate(times_per_lane):
                kern.schedule(t_list[0], SAMPLE, n)
            start_time = (
                min(t_list[0] for t_list in times_per_lane)
                if self._clock_start is None
                else self._clock_start
            )
            poisson = executor is not None and executor.poisson_rate is not None
            if poisson:
                first = executor.next_arrival(start_time)
                if first <= end_time:
                    kern.schedule(first, QUERY, None)
            if self.handoff_interval is not None:
                first = start_time + self.handoff_interval
                if first <= end_time:
                    kern.schedule(first, HANDOFF, None)
            schedule = kern.schedule
            n_instants = 0
            while kern:
                if depth_hist is not None:
                    depth_hist.observe(len(kern))
                    n_instants += 1
                t = kern.next_time()
                sampled: List = []
                deliveries: Dict[MessageChannel, List] = {}
                n_queries = 0
                run_handoff = False
                for _t, prio, _seq, payload in kern.drain_instant():
                    if prio == SAMPLE:
                        n = payload
                        state = states[n]
                        i = next_sample[n]
                        next_sample[n] = i + 1
                        state.process_sighting(i, t)
                        sampled.append((state, i))
                        if i + 1 < lane_samples[n]:
                            schedule(times_per_lane[n][i + 1], SAMPLE, n)
                        if uses_timer[n]:
                            arm_timer(n)
                    elif prio == TIMER:
                        n, deadline = payload
                        state = states[n]
                        if armed[n] == deadline:
                            armed[n] = None
                        # Fire only if the deadline is still current; a
                        # sighting at this same instant may already have
                        # serviced it (degenerate-schedule case).
                        if state.lane.protocol.next_deadline() == deadline:
                            state.process_timer(t)
                            if state.lane.protocol.next_deadline() == deadline:
                                # Progress guard: the protocol declined the
                                # fire and left its deadline unchanged —
                                # re-arming it at this same instant would
                                # spin forever.  Mark it armed-but-spent;
                                # arming resumes the moment the protocol
                                # moves its deadline.
                                armed[n] = deadline
                                continue
                        arm_timer(n)
                    elif prio == DELIVERY:
                        ch, oid, msg = payload
                        deliveries.setdefault(ch, []).append((t, oid, msg))
                    elif prio == HANDOFF:
                        run_handoff = True
                    else:
                        n_queries += 1
                if deliveries:
                    delivered: List = []
                    # Only the channels that actually delivered, in the
                    # fleet's canonical channel order (the tick loop's
                    # seen-channel order in the degenerate case).
                    ordered = (
                        sorted(deliveries, key=channel_index.__getitem__)
                        if len(deliveries) > 1
                        else deliveries
                    )
                    for channel in ordered:
                        entries = deliveries[channel]
                        entries.sort(key=delivery_order)
                        batch = [(oid, msg) for _, oid, msg in entries]
                        channel.record_scheduled_delivery(batch)
                        delivered.extend(batch)
                    if ingest is not None:
                        ingest(delivered, t)
                    else:
                        for oid, msg in delivered:
                            server.receive_update(oid, msg, t)
                if run_handoff:
                    server.rebalance(t)
                    nxt = t + self.handoff_interval
                    if nxt <= end_time:
                        kern.schedule(nxt, HANDOFF, None)
                if sampled:
                    if len(sampled) == 1:
                        # Sparse fleets mostly see one sighting per instant;
                        # skip the batch plumbing for that case.
                        state, i = sampled[0]
                        state.record_error(
                            i, server.predict_position(state.lane.object_id, t)
                        )
                    else:
                        predicted = server.predict_positions(
                            [state.lane.object_id for state, _ in sampled], t
                        )
                        for (state, i), position in zip(sampled, predicted):
                            state.record_error(i, position)
                    if executor is not None:
                        if poisson:
                            executor.note_tick()
                        else:
                            executor.on_tick(t)
                for _ in range(n_queries):
                    executor.run_query(t)
                    nxt = executor.next_arrival(t)
                    if nxt <= end_time:
                        kern.schedule(nxt, QUERY, None)
            if obs is not None:
                for kind, name in KIND_NAMES.items():
                    if event_counts[kind]:
                        obs.counter(
                            f"kernel.events.{name}",
                            deterministic=kind in (SAMPLE, TIMER, DELIVERY),
                        ).inc(event_counts[kind])
                obs.counter("kernel.instants", deterministic=False).inc(n_instants)
        except BaseException:
            # The flight recorder earns its keep here: the last events the
            # kernel handed out, in order, right before the failure.
            if obs is not None:
                obs.dump_flight(reason="fleet event loop died")
            raise
        finally:
            for channel in channels:
                channel.unbind_scheduler()

    # ------------------------------------------------------------------ #
    # multi-process execution
    # ------------------------------------------------------------------ #
    def _run_multiprocess(self) -> FleetResult:
        """Partition the fleet into spatial shards and run them in workers.

        Each worker receives one pickled :class:`_ShardTask`: its lane
        subset, a replica of the shared channel and of the (empty) server
        backend, and the whole fleet's clock bounds.  Within one task
        payload the pickle memo preserves object identity (lanes sharing a
        channel keep sharing its replica), while separate tasks get
        independent replicas — which is exactly the isolation the merge
        assumes.  Results are merged commutatively: per-lane results in
        lane order, channel counters summed into the parent's channel
        objects, and service statistics reconstructed (the one global
        counter, ``batches_ingested``, is the cardinality of the union of
        the workers' non-empty ingest instants).
        """
        server = self.server
        if server.object_ids():
            raise ValueError(
                "processes > 1 replicates the server backend into workers, "
                "which requires an empty (freshly constructed) backend; "
                f"this one already tracks {len(server.object_ids())} objects"
            )
        # Canonical channel slots: 0 is the fleet's shared channel, further
        # slots are per-lane channels in first-use order.
        channel_order: List[MessageChannel] = [self.shared_channel]
        lane_slots: List[int] = []
        for lane in self.lanes:
            if lane.channel is None or lane.channel is self.shared_channel:
                lane_slots.append(0)
                continue
            if lane.channel not in channel_order:
                channel_order.append(lane.channel)
            lane_slots.append(channel_order.index(lane.channel))
        from repro.sim.runner import auto_region_size

        obs = self.obs
        partition_span = None if obs is None else obs.span(
            "fleet.partition", cat="sim", args={"processes": self.processes}
        )
        policy = GridHashPolicy(
            self.processes, region_size=auto_region_size(self.lanes, self.processes)
        )
        groups: Dict[int, List[int]] = {}
        for n, lane in enumerate(self.lanes):
            shard = policy.shard_for_point(lane.sensor_trace.positions[0])
            groups.setdefault(shard, []).append(n)
        clock_start = min(float(lane.sensor_trace.times[0]) for lane in self.lanes)
        horizon = max(float(lane.sensor_trace.times[-1]) for lane in self.lanes)
        tasks = [
            _ShardTask(
                lanes=[self.lanes[i] for i in groups[shard]],
                lane_slots=[lane_slots[i] for i in groups[shard]],
                shared_channel=self.shared_channel,
                server=server,
                count_initial_update=self.count_initial_update,
                kernel=self.kernel,
                handoff_interval=self.handoff_interval,
                clock_start=clock_start,
                horizon=horizon,
                obs_enabled=obs is not None,
            )
            for shard in sorted(groups)
        ]
        if partition_span is not None:
            partition_span.args["tasks"] = len(tasks)
            partition_span.close()
        execute_span = None if obs is None else obs.span(
            "fleet.execute_shards", cat="sim", args={"tasks": len(tasks)}
        )
        outcomes = _execute_shard_tasks(tasks, self.processes)
        if execute_span is not None:
            execute_span.close()
        merge_span = None if obs is None else obs.span("fleet.merge", cat="sim")

        # Per-lane results, in lane order (the single-process dict order).
        by_object: Dict[str, SimulationResult] = {}
        for outcome in outcomes:
            by_object.update(outcome["results"])
        results = {lane.object_id: by_object[lane.object_id] for lane in self.lanes}

        # Channel counters: reset the parent channels the single-process
        # run would have reset, then write the summed worker counters back.
        used_channels: List[MessageChannel] = []
        for lane in self.lanes:
            ch = lane.channel if lane.channel is not None else self.shared_channel
            if ch not in used_channels:
                used_channels.append(ch)
        for ch in used_channels:
            ch.reset()
        merged: Dict[int, ChannelStats] = {}
        for outcome in outcomes:
            for slot, stats in outcome["channel_stats"].items():
                agg = merged.setdefault(slot, ChannelStats())
                agg.messages_sent += stats.messages_sent
                agg.messages_delivered += stats.messages_delivered
                agg.messages_lost += stats.messages_lost
                agg.bytes_sent += stats.bytes_sent
                agg.bytes_delivered += stats.bytes_delivered
                agg.max_queue_delay = max(agg.max_queue_delay, stats.max_queue_delay)
        for slot, agg in merged.items():
            channel_order[slot].stats = agg

        service_stats = self._merge_service_stats(outcomes)

        if obs is not None:
            # Fold every worker's registry back (commutative, so worker
            # completion order cannot matter) and adopt its spans under a
            # per-shard pid for the Perfetto view.  The merged service
            # stats are published here — and only here — so the counters
            # match a single-process run of the same fleet exactly.
            for k, outcome in enumerate(outcomes):
                worker_registry = outcome.get("obs_registry")
                if worker_registry is not None:
                    obs.registry.merge(worker_registry)
                worker_events = outcome.get("obs_trace")
                if worker_events:
                    obs.tracer.adopt(worker_events, pid=k + 1, name=f"shard-{k}")
            if service_stats:
                publish_service_stats(obs.registry, service_stats)
            if merge_span is not None:
                merge_span.close()

        # Register the lanes with the parent backend so the one-shot
        # protection (and any later lookups) behave as after a local run.
        for lane in self.lanes:
            server.register_object(
                lane.object_id,
                prediction=lane.protocol.prediction_function(),
                accuracy=lane.protocol.accuracy,
            )
        self.workload_executor = None
        return FleetResult(results=results, service_stats=service_stats)

    @staticmethod
    def _merge_service_stats(outcomes: List[Dict[str, object]]) -> Dict[str, object]:
        """Reconstruct the sharded service's statistics from worker stats.

        Every service counter is either per-object (so the worker values
        sum), derived (recomputed from the sums), or a per-instant global
        — ``batches_ingested`` counts instants at which *any* update batch
        arrived, reconstructed as the union of the workers' non-empty
        ingest instants.  Query counters are identically zero: workloads
        are rejected for multi-process runs.
        """
        partials = [o["service_stats"] for o in outcomes if o["service_stats"]]
        if not partials:
            return {}
        row_keys = (
            "objects", "updates", "handoffs_in", "handoffs_out",
            "engine_queries", "engine_syncs", "engine_moves",
        )
        n_shards = int(partials[0]["shards"])
        rows: List[Dict[str, object]] = [
            {"shard": s, **{k: 0 for k in row_keys}} for s in range(n_shards)
        ]
        for partial in partials:
            for row in partial["per_shard"]:
                target = rows[int(row["shard"])]
                for key in row_keys:
                    target[key] += row[key]
        instants: set = set()
        for outcome in outcomes:
            instants.update(outcome["ingest_instants"])
        objects = [int(row["objects"]) for row in rows]
        mean_objects = sum(objects) / len(objects) if objects else 0.0
        return {
            "shards": n_shards,
            "objects": sum(int(p["objects"]) for p in partials),
            "updates_ingested": sum(int(p["updates_ingested"]) for p in partials),
            "batches_ingested": len(instants),
            "handoffs": sum(int(p["handoffs"]) for p in partials),
            "prepare_passes": sum(int(p["prepare_passes"]) for p in partials),
            "range_queries": 0,
            "nearest_queries": 0,
            "geofence_queries": 0,
            "queries": 0,
            "query_seconds": 0.0,
            "mean_query_seconds": 0.0,
            "load_imbalance": (max(objects) / mean_objects) if mean_objects else 0.0,
            "per_shard": rows,
        }


@dataclass
class _ShardTask:
    """One worker's share of a multi-process fleet run (picklable)."""

    lanes: List[FleetLane]
    lane_slots: List[int]
    shared_channel: MessageChannel
    server: LocationServer
    count_initial_update: bool
    kernel: str
    handoff_interval: Optional[float]
    clock_start: float
    horizon: float
    obs_enabled: bool = False

    def run(self) -> Dict[str, object]:
        """Run this shard's lanes and package the mergeable outcome."""
        # A worker builds its own fresh bundle (never the parent's pickled
        # copy, which would duplicate whatever the parent already counted)
        # and ships the registry + spans back in the outcome.
        obs = Observability() if self.obs_enabled else None
        fleet = FleetSimulation(
            self.lanes,
            channel=self.shared_channel,
            server=self.server,
            count_initial_update=self.count_initial_update,
            kernel=self.kernel,
            handoff_interval=self.handoff_interval,
            obs=obs,
        )
        fleet._obs_worker = True
        fleet._clock_start = self.clock_start
        fleet._horizon = self.horizon
        # Record the instants at which this worker's backend ingested a
        # non-empty batch: the parent reconstructs the global
        # ``batches_ingested`` counter as the union across workers.
        instants: List[float] = []
        ingest = getattr(fleet.server, "ingest_batch", None)
        if ingest is not None:
            def recording(messages, time, _ingest=ingest):
                if messages:
                    instants.append(float(time))
                _ingest(messages, time)

            fleet.server.ingest_batch = recording
        outcome = fleet.run()
        channel_stats: Dict[int, ChannelStats] = {}
        reported: List[MessageChannel] = []
        for lane, slot in zip(self.lanes, self.lane_slots):
            ch = lane.channel if lane.channel is not None else self.shared_channel
            if ch in reported:
                continue
            reported.append(ch)
            channel_stats[slot] = ch.stats
        return {
            "results": outcome.results,
            "channel_stats": channel_stats,
            "ingest_instants": instants,
            "service_stats": outcome.service_stats or None,
            "obs_registry": obs.registry if obs is not None else None,
            "obs_trace": obs.tracer.events() if obs is not None else None,
        }


def _run_shard_task(task: _ShardTask) -> Dict[str, object]:
    """Module-level trampoline so shard tasks can cross process boundaries."""
    return task.run()


def _execute_shard_tasks(
    tasks: List[_ShardTask], processes: int
) -> List[Dict[str, object]]:
    """Run shard tasks and return their outcomes in task order.

    The merge is commutative and keyed by task order, so worker scheduling
    cannot influence the result (asserted by the test-suite, which also
    monkeypatches this seam to permute completion order).  A single task
    runs inline — the partition put every lane in one spatial shard, and a
    worker round-trip would only add pickling cost.
    """
    if len(tasks) == 1 or processes <= 1:
        # Inline execution still round-trips each task through pickle: the
        # run must mutate worker *replicas*, never the parent's lanes,
        # channels or server template — same isolation as a real worker.
        import pickle

        return [_run_shard_task(pickle.loads(pickle.dumps(task))) for task in tasks]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(processes, len(tasks))) as pool:
        futures = [pool.submit(_run_shard_task, task) for task in tasks]
        return [future.result() for future in futures]


def run_fleet(
    lanes: Sequence[FleetLane],
    channel: Optional[MessageChannel] = None,
    server: Optional[LocationServer] = None,
) -> FleetResult:
    """Convenience wrapper around :class:`FleetSimulation`."""
    return FleetSimulation(lanes, channel=channel, server=server).run()
