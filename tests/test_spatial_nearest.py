"""Regression tests for SpatialIndex.nearest's expansion and fallback logic."""

import numpy as np
import pytest

from repro.geo.bbox import BoundingBox
from repro.geo.vec import as_vec, distance
from repro.spatial.grid import GridIndex
from repro.spatial.index import IndexedItem, brute_force_nearest
from repro.spatial.rtree import STRtree


def _point_item(key, x, y):
    p = np.array([x, y])
    return IndexedItem(
        key=key,
        bounds=BoundingBox(x, y, x, y),
        distance=lambda q, _p=p: distance(as_vec(q), _p),
    )


def _indexes(items):
    grid = GridIndex(cell_size=100.0, items=items)
    tree = STRtree(items)
    return [grid, tree]


class TestNearestExpansion:
    def test_far_item_found_without_limit(self):
        """A single item far beyond the initial radius must still be found."""
        items = [_point_item("far", 250_000.0, 0.0)]
        for index in _indexes(items):
            result = index.nearest((0.0, 0.0))
            assert result is not None
            assert result[0].key == "far"
            assert result[1] == pytest.approx(250_000.0)

    def test_exhaustive_fallback_beyond_growth_cap(self):
        """Items farther than the 1e9 growth cap are found by the full scan."""
        items = [_point_item("absurd", 5e9, 0.0)]
        for index in _indexes(items):
            result = index.nearest((0.0, 0.0))
            assert result is not None
            assert result[0].key == "absurd"

    def test_closer_item_outside_first_box_wins(self):
        """The expansion may not stop at the first hit if a closer item
        could still lie outside the searched box."""
        items = [_point_item("near", 60.0, 0.0), _point_item("nearer", 0.0, 55.0)]
        for index in _indexes(items):
            result = index.nearest((0.0, 0.0))
            assert result is not None
            assert result[0].key == "nearer"

    def test_matches_brute_force_on_random_points(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(-5000.0, 5000.0, size=(60, 2))
        items = [_point_item(i, x, y) for i, (x, y) in enumerate(pts)]
        queries = rng.uniform(-6000.0, 6000.0, size=(20, 2))
        for index in _indexes(items):
            for q in queries:
                expected = brute_force_nearest(items, q)
                got = index.nearest(q)
                assert got is not None and expected is not None
                assert got[1] == pytest.approx(expected[1])


class TestNearestLimits:
    def test_max_distance_excludes_everything(self):
        items = [_point_item("far", 1000.0, 0.0)]
        for index in _indexes(items):
            assert index.nearest((0.0, 0.0), max_distance=10.0) is None

    def test_max_distance_includes_item(self):
        items = [_point_item("a", 30.0, 0.0), _point_item("b", 90.0, 0.0)]
        for index in _indexes(items):
            result = index.nearest((0.0, 0.0), max_distance=50.0)
            assert result is not None
            assert result[0].key == "a"

    def test_nonpositive_max_distance(self):
        items = [_point_item("a", 0.0, 0.0)]
        for index in _indexes(items):
            assert index.nearest((0.0, 0.0), max_distance=0.0) is None

    def test_empty_index(self):
        for index in _indexes([]):
            assert index.nearest((0.0, 0.0)) is None


class TestItems:
    def test_items_returns_everything(self):
        items = [_point_item(i, float(i), 0.0) for i in range(5)]
        for index in _indexes(items):
            assert sorted(item.key for item in index.items()) == list(range(5))
            assert len(index) == 5

    def test_brute_force_respects_limit(self):
        items = [_point_item("a", 100.0, 0.0)]
        assert brute_force_nearest(items, (0.0, 0.0), limit=50.0) is None
        hit = brute_force_nearest(items, (0.0, 0.0), limit=150.0)
        assert hit is not None and hit[0].key == "a"
