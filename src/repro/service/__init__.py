"""Location-service substrate.

The paper's system model (Fig. 1) has a *source* co-located with the mobile
object's positioning sensor and a *location server* that stores the reported
object state, applies the shared prediction function and answers position
queries from applications.  This package provides those two components plus
the message channel between them and the query API applications use
("find the nearest taxi cab", "address all users inside an area",
paper Sec. 1).

Beyond the paper's single server, the package also provides the sharded
serving tier the ROADMAP's fleet-scale north star needs:
:class:`LocationService` partitions tracked objects across N
:class:`LocationServer` shards by spatial region (pluggable
:class:`ShardingPolicy`), ingests updates in per-tick batches, hands
objects off across shard boundaries, and answers range / k-nearest /
geofence queries through one incremental :class:`QueryEngine` per shard.
"""

from repro.service.channel import ChannelStats, MessageChannel
from repro.service.server import LocationServer, TrackedObject
from repro.service.source import LocationSource
from repro.service.sharding import GridHashPolicy, ShardingPolicy
from repro.service.query_engine import QueryEngine
from repro.service.facade import LocationService, QueryCounters, ShardLoad
from repro.service.queries import (
    PositionQueryResult,
    geofence_query,
    position_query,
    range_query,
    nearest_object_query,
)

__all__ = [
    "MessageChannel",
    "ChannelStats",
    "LocationServer",
    "TrackedObject",
    "LocationSource",
    "LocationService",
    "QueryEngine",
    "QueryCounters",
    "ShardLoad",
    "ShardingPolicy",
    "GridHashPolicy",
    "PositionQueryResult",
    "position_query",
    "range_query",
    "nearest_object_query",
    "geofence_query",
]
