"""Protocol invariants over every generated scenario, plus seeded
property-based suites for the scenario generator itself.

These are the structural guarantees the regression net leans on:

* the dead-reckoning accuracy contract holds on every generated movement
  pattern (not just the paper's four),
* update counts respond monotonically to the requested accuracy,
* one merged fleet loop over all generated scenarios is bit-identical to
  independent single-object runs,
* generation is deterministic in (spec, seed, scale) and different seeds
  decorrelate the traces,
* degradation does exactly what it claims (dropouts remove paired samples,
  bursts only touch their windows).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.library import scenario_names
from repro.mobility.generator import (
    REGIMES,
    AgentSpec,
    Degradation,
    GeneratorSpec,
    Topology,
    generate_scenario,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import ProtocolSimulation
from repro.sim.fleet import FleetLane, FleetSimulation
from repro.sim.runner import ScenarioSpec

TEST_SCALE = 0.15
GENERATED_NAMES = scenario_names("generated")


def _scenario(name: str):
    """The shared, cached test-scale instance of a library scenario."""
    return ScenarioSpec(name=name, scale=TEST_SCALE).build()


def _protocol(scenario, protocol_id: str, accuracy: float):
    return SimulationConfig(protocol_id=protocol_id, accuracy=accuracy).build_protocol(scenario)


def _run(scenario, protocol_id: str, accuracy: float):
    return ProtocolSimulation(
        protocol=_protocol(scenario, protocol_id, accuracy),
        sensor_trace=scenario.sensor_trace,
        truth_trace=scenario.true_trace,
    ).run()


# --------------------------------------------------------------------------- #
# accuracy contract
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", GENERATED_NAMES)
@pytest.mark.parametrize("protocol_id", ["distance", "linear", "map"])
def test_error_bound_respected_on_generated_scenarios(name, protocol_id):
    """Server error never exceeds us + sensor offset + one-step movement.

    The protocol bounds its deviation from the *sensor* position at every
    sighting; translating to ground truth adds the worst sensor-vs-truth
    offset, and the discrete check cadence adds at most the movement
    between two consecutive sightings (which, on dropout scenarios,
    includes the tunnel gaps — computed from the actual trace).
    """
    scenario = _scenario(name)
    accuracy = 100.0
    result = _run(scenario, protocol_id, accuracy)
    sensor = scenario.sensor_trace.positions
    truth = scenario.true_trace.positions
    max_offset = float(np.hypot(*(sensor - truth).T).max())
    steps = np.diff(sensor, axis=0)
    max_step = float(np.hypot(steps[:, 0], steps[:, 1]).max())
    assert result.metrics.max_error <= accuracy + max_offset + max_step + 1e-6


@pytest.mark.parametrize("name", GENERATED_NAMES)
def test_update_count_monotone_in_accuracy(name):
    """Relaxing the requested accuracy never increases the update count."""
    scenario = _scenario(name)
    for protocol_id in ("distance", "linear", "map"):
        counts = [
            _run(scenario, protocol_id, us).updates for us in (50.0, 100.0, 200.0, 400.0)
        ]
        assert counts == sorted(counts, reverse=True) or all(
            a >= b for a, b in zip(counts, counts[1:])
        ), f"{protocol_id} updates not monotone on {name}: {counts}"


# --------------------------------------------------------------------------- #
# fleet == single equivalence
# --------------------------------------------------------------------------- #
def test_fleet_equals_single_on_every_generated_scenario():
    """One merged loop over all generated scenarios == independent runs."""
    lanes = []
    singles = {}
    for name in GENERATED_NAMES:
        scenario = _scenario(name)
        lanes.append(
            FleetLane(
                object_id=name,
                protocol=_protocol(scenario, "linear", 100.0),
                sensor_trace=scenario.sensor_trace,
                truth_trace=scenario.true_trace,
            )
        )
        singles[name] = _run(scenario, "linear", 100.0)
    fleet = FleetSimulation(lanes).run()
    assert fleet.object_ids == GENERATED_NAMES
    for name in GENERATED_NAMES:
        merged = fleet.results[name]
        single = singles[name]
        assert merged.updates == single.updates
        assert merged.bytes_sent == single.bytes_sent
        assert merged.update_reasons == single.update_reasons
        assert np.array_equal(merged.metrics.errors, single.metrics.errors)


def test_heterogeneous_hundred_object_fleet():
    """A 100+ object fleet mixing scenarios, agents and protocols runs in
    one loop and matches single-object runs on sampled lanes."""
    from repro.experiments.library import FleetMix, fleet_lanes

    mix = [
        FleetMix("rush_hour_city", "map", 100.0, count=30),
        FleetMix("delivery_rounds", "linear", 100.0, count=25),
        FleetMix("tunnel_freeway", "distance", 200.0, count=20),
        FleetMix("urban_canyon_walk", "linear", 50.0, count=15),
        FleetMix("radial_commute", "map", 150.0, count=15),
    ]
    lanes = fleet_lanes(mix, scale=TEST_SCALE)
    assert len(lanes) == 105
    fleet = FleetSimulation(lanes).run()
    assert len(fleet.results) == 105
    assert fleet.total_updates > 0
    assert fleet.object_hours > 0
    # Identical lanes of one slice produce identical results...
    first = fleet.results["rush_hour_city/map/100/0"]
    last = fleet.results["rush_hour_city/map/100/29"]
    assert first.updates == last.updates
    assert np.array_equal(first.metrics.errors, last.metrics.errors)
    # ...and each slice representative matches an independent single run.
    for m in mix:
        scenario = _scenario(m.scenario)
        single = _run(scenario, m.protocol_id, m.accuracy)
        merged = fleet.results[f"{m.scenario}/{m.protocol_id}/{m.accuracy:g}/0"]
        assert merged.updates == single.updates
        assert np.array_equal(merged.metrics.errors, single.metrics.errors)


# --------------------------------------------------------------------------- #
# seeded generator properties (hypothesis, derandomised for CI stability)
# --------------------------------------------------------------------------- #
_topologies = st.sampled_from([
    Topology(kind="grid", rows=6, cols=6, spacing_m=200.0),
    Topology(kind="radial", n_arms=5, n_rings=3, ring_spacing_m=300.0),
    Topology(kind="corridor", length_km=8.0),
    Topology(kind="footpath", rows=8, cols=8, spacing_m=90.0),
])
_regimes = st.sampled_from(sorted(REGIMES))
_agents = st.sampled_from([
    AgentSpec(kind="car", route_style="wander"),
    AgentSpec(kind="delivery", n_stops=3, dwell_range=(20.0, 60.0)),
    AgentSpec(kind="pedestrian", estimation_window=8),
])
_seeds = st.integers(min_value=0, max_value=2**16)

generator_settings = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _spec(topology, regime_name, agent, seed):
    agent_ok = agent
    if topology.kind == "footpath" and agent.kind != "pedestrian":
        agent_ok = AgentSpec(kind="pedestrian", estimation_window=8)
    if topology.kind == "corridor":
        agent_ok = AgentSpec(kind="car", route_style="corridor", estimation_window=2)
    return GeneratorSpec(
        name=f"prop-{topology.kind}-{regime_name}-{agent_ok.kind}",
        description="property-test composition",
        topology=topology,
        regime=REGIMES[regime_name],
        agent=agent_ok,
        route_length_m=4_000.0,
        default_seed=seed,
    )


@generator_settings
@given(topology=_topologies, regime_name=_regimes, agent=_agents, seed=_seeds)
def test_generation_is_deterministic(topology, regime_name, agent, seed):
    spec = _spec(topology, regime_name, agent, seed)
    a = generate_scenario(spec, scale=0.5)
    b = generate_scenario(spec, scale=0.5)
    assert np.array_equal(a.sensor_trace.times, b.sensor_trace.times)
    assert np.array_equal(a.sensor_trace.positions, b.sensor_trace.positions)
    assert np.array_equal(a.true_trace.positions, b.true_trace.positions)
    assert a.journey.link_ids == b.journey.link_ids


@generator_settings
@given(topology=_topologies, regime_name=_regimes, agent=_agents, seed=_seeds)
def test_generated_traces_are_wellformed(topology, regime_name, agent, seed):
    spec = _spec(topology, regime_name, agent, seed)
    scenario = generate_scenario(spec, scale=0.5)
    sensor, truth = scenario.sensor_trace, scenario.true_trace
    assert len(sensor) == len(truth) > 50
    assert np.array_equal(sensor.times, truth.times)
    assert np.all(np.diff(sensor.times) > 0)
    assert len(scenario.journey.link_ids) == len(truth)
    assert scenario.route.length > 0


@generator_settings
@given(topology=_topologies, regime_name=_regimes, agent=_agents, seed=_seeds)
def test_distinct_seeds_decorrelate_traces(topology, regime_name, agent, seed):
    spec = _spec(topology, regime_name, agent, seed)
    a = generate_scenario(spec, seed=seed, scale=0.5)
    b = generate_scenario(spec, seed=seed + 1, scale=0.5)
    same_shape = a.sensor_trace.positions.shape == b.sensor_trace.positions.shape
    assert not (
        same_shape and np.array_equal(a.sensor_trace.positions, b.sensor_trace.positions)
    )


# --------------------------------------------------------------------------- #
# degradation properties
# --------------------------------------------------------------------------- #
def _base_scenario_pair(degradation: Degradation, seed: int = 7):
    base = GeneratorSpec(
        name="prop-degradation",
        description="degradation property base",
        topology=Topology(kind="grid", rows=6, cols=6, spacing_m=200.0),
        regime=REGIMES["free_flow"],
        agent=AgentSpec(kind="car", route_style="wander"),
        route_length_m=4_000.0,
        default_seed=seed,
    )
    clean = generate_scenario(base, scale=1.0)
    degraded = generate_scenario(
        GeneratorSpec(
            name=base.name, description=base.description, topology=base.topology,
            regime=base.regime, agent=base.agent, degradation=degradation,
            route_length_m=base.route_length_m, default_seed=seed,
        ),
        scale=1.0,
    )
    return clean, degraded


@settings(max_examples=8, deadline=None, derandomize=True)
@given(
    fraction=st.floats(min_value=0.02, max_value=0.3),
    windows=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**10),
)
def test_dropout_removes_paired_samples(fraction, windows, seed):
    clean, degraded = _base_scenario_pair(
        Degradation(dropout_windows=windows, dropout_fraction=fraction), seed=seed
    )
    n = len(clean.sensor_trace)
    m = len(degraded.sensor_trace)
    dropped = n - m
    assert 0 < dropped <= int(round(n * fraction)) + windows
    # Sensor and truth stay paired sample-for-sample.
    assert len(degraded.true_trace) == m
    assert np.array_equal(degraded.sensor_trace.times, degraded.true_trace.times)
    # The first sample (protocol/server bootstrap) is never dropped.
    assert degraded.sensor_trace.times[0] == clean.sensor_trace.times[0]
    # Remaining samples are an exact subset of the clean run.
    kept = np.isin(clean.sensor_trace.times, degraded.sensor_trace.times)
    assert kept.sum() == m
    assert np.array_equal(clean.true_trace.positions[kept], degraded.true_trace.positions)


@settings(max_examples=8, deadline=None, derandomize=True)
@given(
    sigma=st.floats(min_value=5.0, max_value=40.0),
    windows=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**10),
)
def test_noise_bursts_touch_only_their_windows(sigma, windows, seed):
    fraction = 0.25
    clean, degraded = _base_scenario_pair(
        Degradation(burst_windows=windows, burst_sigma=sigma, burst_fraction=fraction),
        seed=seed,
    )
    n = len(clean.sensor_trace)
    assert len(degraded.sensor_trace) == n  # bursts never drop samples
    changed = ~np.all(
        clean.sensor_trace.positions == degraded.sensor_trace.positions, axis=1
    )
    assert 0 < changed.sum() <= int(round(n * fraction)) + windows
    assert not changed[0]  # bootstrap sample untouched
    # Ground truth is untouched by noise bursts.
    assert np.array_equal(clean.true_trace.positions, degraded.true_trace.positions)
