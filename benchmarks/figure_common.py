"""Shared helpers for the Figure 7-10 benchmarks."""

from __future__ import annotations

from repro.experiments.figures import FigureResult
from repro.experiments.report import format_series_chart, format_table


def print_figure(figure: FigureResult, title: str) -> None:
    """Print a figure's data as a table plus ASCII charts (left/right plots)."""
    print()
    print(format_table(figure.as_rows(), title=title))
    accuracies = figure.baseline.accuracies
    absolute = {s.label: s.updates_per_hour for s in figure.series.values()}
    print()
    print(format_series_chart(accuracies, absolute, y_label="updates/h"))
    relative = {
        figure.series[pid].label: values
        for pid, values in figure.relative_series().items()
        if pid != "distance"
    }
    print()
    print(
        format_series_chart(
            accuracies, relative, y_label="% of distance-based reporting"
        )
    )


def assert_figure_shape(figure: FigureResult, map_should_win: bool = True) -> None:
    """Assert the qualitative shape shared by Figures 7-10.

    * Every curve decreases (weakly) as the requested uncertainty grows.
    * Linear-prediction DR stays below the distance-based baseline.
    * When *map_should_win*, the map-based curve is not above the linear one
      over most of the sweep.
    """
    for series in figure.series.values():
        rates = series.updates_per_hour
        assert rates[0] >= rates[-1], f"{series.label} does not decrease with us"

    linear_rel = figure.series["linear"].relative_to(figure.baseline)
    assert min(linear_rel) < 100.0, "linear DR never beats distance-based reporting"

    if map_should_win:
        map_rates = figure.series["map"].updates_per_hour
        linear_rates = figure.series["linear"].updates_per_hour
        wins = sum(1 for m, l in zip(map_rates, linear_rates) if m <= l * 1.05)
        assert wins >= len(map_rates) / 2, "map-based DR loses to linear DR on most of the sweep"
