"""Unit tests for repro.traces.trace."""

import numpy as np
import pytest

from repro.traces.trace import Trace, TraceSample


class TestTraceSample:
    def test_coercion(self):
        s = TraceSample(time=3, position=(1.0, 2.0))
        assert s.time == 3.0
        assert isinstance(s.position, np.ndarray)


class TestConstruction:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            Trace([], np.zeros((0, 2)))

    def test_requires_matching_shapes(self):
        with pytest.raises(ValueError):
            Trace([0.0, 1.0], np.zeros((3, 2)))

    def test_requires_increasing_times(self):
        with pytest.raises(ValueError):
            Trace([0.0, 0.0], np.zeros((2, 2)))
        with pytest.raises(ValueError):
            Trace([1.0, 0.5], np.zeros((2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Trace([0.0, 1.0], np.array([[0.0, 0.0], [np.nan, 1.0]]))

    def test_from_samples(self):
        samples = [TraceSample(0.0, (0, 0)), TraceSample(1.0, (10, 0))]
        trace = Trace.from_samples(samples, name="two")
        assert len(trace) == 2
        assert trace.name == "two"

    def test_from_samples_empty(self):
        with pytest.raises(ValueError):
            Trace.from_samples([])

    def test_views_read_only(self, straight_trace):
        with pytest.raises(ValueError):
            straight_trace.times[0] = 5.0
        with pytest.raises(ValueError):
            straight_trace.positions[0, 0] = 5.0


class TestAccessors:
    def test_len_and_getitem(self, straight_trace):
        assert len(straight_trace) == 61
        sample = straight_trace[3]
        assert sample.time == 3.0
        assert sample.position.tolist() == [60.0, 0.0]

    def test_slice_returns_trace(self, straight_trace):
        sub = straight_trace[10:20]
        assert isinstance(sub, Trace)
        assert len(sub) == 10
        assert sub.times[0] == 10.0

    def test_iteration(self, straight_trace):
        samples = list(straight_trace)
        assert len(samples) == len(straight_trace)
        assert samples[0].time == 0.0

    def test_duration(self, straight_trace):
        assert straight_trace.duration == pytest.approx(60.0)

    def test_sampling_interval(self, straight_trace):
        assert straight_trace.sampling_interval == pytest.approx(1.0)

    def test_single_sample_interval(self):
        trace = Trace([0.0], np.array([[0.0, 0.0]]))
        assert trace.sampling_interval == 0.0
        assert trace.path_length() == 0.0
        assert trace.speeds().size == 0


class TestDerived:
    def test_path_length(self, straight_trace):
        assert straight_trace.path_length() == pytest.approx(1200.0)

    def test_speeds_constant(self, straight_trace):
        speeds = straight_trace.speeds()
        assert speeds.shape == (60,)
        np.testing.assert_allclose(speeds, 20.0)

    def test_bounds(self, l_shaped_trace):
        assert l_shaped_trace.bounds() == (0.0, 0.0, 1000.0, 1000.0)


class TestTransformations:
    def test_shifted_time(self, straight_trace):
        shifted = straight_trace.shifted(time_offset=100.0)
        assert shifted.times[0] == 100.0
        assert shifted.duration == straight_trace.duration

    def test_shifted_position(self, straight_trace):
        shifted = straight_trace.shifted(position_offset=(5.0, -5.0))
        assert shifted.positions[0].tolist() == [5.0, -5.0]

    def test_clipped(self, straight_trace):
        clipped = straight_trace.clipped(10.0, 20.0)
        assert clipped.times[0] == 10.0
        assert clipped.times[-1] == 20.0

    def test_clipped_empty_raises(self, straight_trace):
        with pytest.raises(ValueError):
            straight_trace.clipped(1000.0, 2000.0)

    def test_with_positions(self, straight_trace):
        new_positions = straight_trace.positions + 1.0
        replaced = straight_trace.with_positions(new_positions)
        assert replaced.positions[0].tolist() == [1.0, 1.0]
        assert replaced.times[0] == straight_trace.times[0]
