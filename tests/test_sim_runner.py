"""Tests for the sweep runner: executors, determinism, caching, artifacts."""

import csv
import json

import numpy as np
import pytest

from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.reporting import TimeBasedReporting
from repro.sim.config import SimulationConfig
from repro.sim.runner import ScenarioSpec, SweepRunner, SweepTask, read_artifact
from repro.sim.sweep import run_accuracy_sweep, run_config_sweep

FREEWAY = ScenarioSpec(name="freeway", scale=0.05, seed=0)
CITY = ScenarioSpec(name="city", scale=0.07, seed=2)
RADIAL = ScenarioSpec(name="radial_commute", scale=0.15)
ACCURACIES = [50.0, 100.0, 200.0]


def _assert_points_bit_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert a.accuracy == b.accuracy
        assert a.result.protocol_name == b.result.protocol_name
        assert a.result.updates == b.result.updates
        assert a.result.bytes_sent == b.result.bytes_sent
        assert a.result.update_reasons == b.result.update_reasons
        assert a.result.duration_h == b.result.duration_h
        assert a.updates_per_hour == b.updates_per_hour
        assert np.array_equal(a.result.metrics.errors, b.result.metrics.errors)


class TestScenarioSpec:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="atlantis")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="freeway", scale=0.0)

    def test_build_is_cached(self):
        assert FREEWAY.build() is FREEWAY.build()

    def test_spec_is_picklable(self):
        import pickle

        task = SweepTask(
            scenario=FREEWAY, config=SimulationConfig(protocol_id="linear", accuracy=100.0)
        )
        assert pickle.loads(pickle.dumps(task)) == task

    def test_generated_scenario_names_resolve(self):
        spec = ScenarioSpec(name="rush_hour_city", scale=0.15)
        assert spec.build().key == "rush_hour_city"


class TestCacheKeying:
    """Satellite: distinct seed/scale combinations must never alias."""

    def test_two_seeds_yield_different_traces(self):
        a = ScenarioSpec(name="city", scale=0.05, seed=11).build()
        b = ScenarioSpec(name="city", scale=0.05, seed=12).build()
        assert a is not b
        same_shape = a.sensor_trace.positions.shape == b.sensor_trace.positions.shape
        assert not (
            same_shape
            and np.array_equal(a.sensor_trace.positions, b.sensor_trace.positions)
        )

    def test_two_seeds_yield_different_generated_traces(self):
        a = ScenarioSpec(name="radial_commute", scale=0.15, seed=1).build()
        b = ScenarioSpec(name="radial_commute", scale=0.15, seed=2).build()
        same_shape = a.sensor_trace.positions.shape == b.sensor_trace.positions.shape
        assert not (
            same_shape
            and np.array_equal(a.sensor_trace.positions, b.sensor_trace.positions)
        )

    def test_two_scales_yield_different_cache_entries(self):
        a = ScenarioSpec(name="freeway", scale=0.04, seed=0).build()
        b = ScenarioSpec(name="freeway", scale=0.05, seed=0).build()
        assert a is not b
        assert len(a.sensor_trace) != len(b.sensor_trace)

    def test_default_seed_and_none_share_one_entry(self):
        # seed=None canonicalises to the scenario's default seed, so both
        # spellings hit the same cache entry instead of building twice.
        implicit = ScenarioSpec(name="freeway", scale=0.05)
        explicit = ScenarioSpec(name="freeway", scale=0.05, seed=0)
        assert implicit == explicit
        assert implicit.seed == 0
        assert implicit.build() is explicit.build()

    def test_numeric_types_canonicalised(self):
        # np.int64 / float-typed inputs must not create shadow cache keys.
        assert ScenarioSpec(name="freeway", scale=0.05, seed=np.int64(7)) == ScenarioSpec(
            name="freeway", scale=0.05, seed=7
        )
        assert ScenarioSpec(name="freeway", scale=np.float64(0.05), seed=7) == ScenarioSpec(
            name="freeway", scale=0.05, seed=7
        )
        assert isinstance(ScenarioSpec(name="freeway", seed=np.int64(7)).seed, int)
        assert isinstance(ScenarioSpec(name="freeway", scale=np.float64(0.5)).scale, float)


class TestExecutorEquivalence:
    """Satellite: jobs=1 and jobs=4 must produce bit-identical sequences."""

    @pytest.mark.parametrize(
        "spec", [FREEWAY, CITY, RADIAL], ids=["freeway", "city", "radial_commute"]
    )
    def test_serial_vs_parallel_identical(self, spec):
        serial = SweepRunner(jobs=1).run_config_sweep(spec, "linear", ACCURACIES)
        parallel = SweepRunner(jobs=4).run_config_sweep(spec, "linear", ACCURACIES)
        _assert_points_bit_identical(serial, parallel)

    @pytest.mark.parametrize("spec", [FREEWAY, CITY], ids=["freeway", "city"])
    def test_serial_vs_parallel_identical_map_protocol(self, spec):
        serial = SweepRunner(jobs=1).run_config_sweep(spec, "map", [100.0, 200.0])
        parallel = SweepRunner(jobs=4).run_config_sweep(spec, "map", [100.0, 200.0])
        _assert_points_bit_identical(serial, parallel)

    def test_thread_executor_identical(self):
        serial = SweepRunner(jobs=1).run_config_sweep(FREEWAY, "linear", ACCURACIES)
        threaded = SweepRunner(jobs=2, executor="thread").run_config_sweep(
            FREEWAY, "linear", ACCURACIES
        )
        _assert_points_bit_identical(serial, threaded)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=2, executor="quantum")

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestSweepWrappers:
    def test_config_sweep_wrapper_accepts_runner(self, tiny_freeway_scenario):
        points = run_config_sweep(
            tiny_freeway_scenario, "linear", ACCURACIES, runner=SweepRunner()
        )
        assert [p.accuracy for p in points] == ACCURACIES

    def test_factory_sweep_defaults_to_scenario_us_values(self, tiny_freeway_scenario):
        points = run_accuracy_sweep(
            tiny_freeway_scenario,
            lambda us: LinearPredictionProtocol(accuracy=us),
        )
        assert [p.accuracy for p in points] == tiny_freeway_scenario.us_values


class TestCloneForSweeps:
    """Satellite: the clone_for reuse hook must match fresh-instance sweeps."""

    def test_linear_clone_sweep_matches_fresh(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        runner = SweepRunner()
        fresh = runner.run_factory_sweep(
            scenario,
            lambda us: LinearPredictionProtocol(
                us, scenario.sensor_sigma, scenario.estimation_window
            ),
            ACCURACIES,
        )
        prototype = LinearPredictionProtocol(
            ACCURACIES[0], scenario.sensor_sigma, scenario.estimation_window
        )
        cloned = runner.run_protocol_sweep(scenario, prototype, ACCURACIES)
        _assert_points_bit_identical(fresh, cloned)

    def test_map_clone_sweep_matches_fresh(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        runner = SweepRunner()

        def fresh_protocol(us):
            return SimulationConfig(protocol_id="map", accuracy=us).build_protocol(scenario)

        fresh = runner.run_factory_sweep(scenario, fresh_protocol, ACCURACIES)
        cloned = runner.run_protocol_sweep(
            scenario, fresh_protocol(ACCURACIES[0]), ACCURACIES
        )
        _assert_points_bit_identical(fresh, cloned)

    def test_clone_for_rejects_bad_accuracy(self):
        with pytest.raises(ValueError):
            LinearPredictionProtocol(accuracy=100.0).clone_for(0.0)

    def test_clone_for_rescales_time_interval(self):
        prototype = TimeBasedReporting.for_speed(accuracy=100.0, expected_speed=20.0)
        clone = prototype.clone_for(200.0)
        assert clone.accuracy == 200.0
        assert clone.interval == pytest.approx(200.0 / 20.0)

    def test_map_clone_shares_heavy_structure(self, tiny_freeway_scenario):
        prototype = SimulationConfig(protocol_id="map", accuracy=100.0).build_protocol(
            tiny_freeway_scenario
        )
        clone = prototype.clone_for(250.0)
        # Heavy immutable structure is shared; per-run state is detached.
        assert clone.roadmap is prototype.roadmap
        assert clone.prediction_function() is prototype.prediction_function()
        assert clone.matcher is not prototype.matcher
        assert clone.estimator is not prototype.estimator
        assert clone.accuracy == 250.0
        assert prototype.accuracy == 100.0


class TestArtifacts:
    def test_json_and_csv_artifacts(self, tmp_path):
        runner = SweepRunner()
        points = runner.run_config_sweep(FREEWAY, "linear", ACCURACIES)
        written = runner.write_artifacts(
            points, "freeway_linear", out_dir=str(tmp_path), metadata={"scale": 0.05}
        )
        payload = json.loads((tmp_path / "freeway_linear.json").read_text())
        assert payload["name"] == "freeway_linear"
        assert payload["metadata"] == {"scale": 0.05}
        assert [row["us_m"] for row in payload["points"]] == ACCURACIES
        with open(written["csv"], newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(points)
        assert [float(row["us_m"]) for row in rows] == ACCURACIES

    def test_unknown_format_rejected(self, tmp_path):
        runner = SweepRunner()
        with pytest.raises(ValueError):
            runner.write_artifacts([], "x", out_dir=str(tmp_path), formats=("yaml",))


class TestArtifactRoundTrip:
    """Satellite: JSON/CSV artifacts parse back to the same point values."""

    SPECS = [
        ScenarioSpec(name="freeway", scale=0.05, seed=0),
        ScenarioSpec(name="rush_hour_city", scale=0.15),
        ScenarioSpec(name="tunnel_freeway", scale=0.15),
    ]

    @pytest.mark.parametrize("spec", SPECS, ids=[s.name for s in SPECS])
    def test_json_and_csv_round_trip(self, spec, tmp_path):
        runner = SweepRunner()
        points = runner.run_config_sweep(spec, "linear", [100.0, 200.0])
        name = f"roundtrip_{spec.name}"
        written = runner.write_artifacts(
            points, name, out_dir=str(tmp_path), metadata={"scenario": spec.name}
        )
        expected_rows = [point.result.as_dict() for point in points]
        json_payload = read_artifact(written["json"])
        assert json_payload["name"] == name
        assert json_payload["metadata"] == {"scenario": spec.name}
        assert json_payload["points"] == expected_rows
        csv_payload = read_artifact(written["csv"])
        assert csv_payload["name"] == name
        assert csv_payload["points"] == expected_rows
        # Both formats carry the identical rows, so they agree with each
        # other as well as with the in-memory sweep.
        assert csv_payload["points"] == json_payload["points"]
        assert [row["us_m"] for row in csv_payload["points"]] == [p.accuracy for p in points]

    def test_read_artifact_rejects_unknown_extension(self, tmp_path):
        path = tmp_path / "artifact.yaml"
        path.write_text("points: []\n")
        with pytest.raises(ValueError):
            read_artifact(str(path))

    def test_read_artifact_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text(json.dumps({"points": []}))
        with pytest.raises(ValueError):
            read_artifact(str(path))


class TestProtocolPrototypes:
    """Workers keep one compiled protocol prototype per (scenario, config)."""

    def _runner_module(self):
        import repro.sim.runner as runner_mod

        return runner_mod

    def test_map_sweep_reuses_one_prototype(self):
        runner_mod = self._runner_module()
        runner_mod.clear_scenario_cache()
        SweepRunner(jobs=1).run_config_sweep(FREEWAY, "map", [100.0, 200.0, 400.0])
        map_keys = [k for k in runner_mod._PROTOCOL_PROTOTYPES if k[1] == "map"]
        assert len(map_keys) == 1
        prototype = runner_mod._PROTOCOL_PROTOTYPES[map_keys[0]]
        # The prototype is cloned for every point, never run itself.
        assert prototype.updates_sent == 0
        assert prototype.bytes_sent == 0
        runner_mod.clear_scenario_cache()

    def test_warm_cache_is_bit_identical_to_cold(self):
        runner_mod = self._runner_module()
        runner_mod.clear_scenario_cache()
        cold = SweepRunner(jobs=1).run_config_sweep(FREEWAY, "map", [100.0, 200.0])
        assert runner_mod._PROTOCOL_PROTOTYPES
        warm = SweepRunner(jobs=1).run_config_sweep(FREEWAY, "map", [100.0, 200.0])
        _assert_points_bit_identical(cold, warm)
        runner_mod.clear_scenario_cache()

    def test_cheap_protocols_bypass_the_cache(self):
        runner_mod = self._runner_module()
        runner_mod.clear_scenario_cache()
        SweepRunner(jobs=1).run_config_sweep(FREEWAY, "linear", ACCURACIES)
        SweepRunner(jobs=1).run_config_sweep(FREEWAY, "time", [100.0])
        assert runner_mod._PROTOCOL_PROTOTYPES == {}

    def test_clear_scenario_cache_drops_prototypes(self):
        runner_mod = self._runner_module()
        SweepRunner(jobs=1).run_config_sweep(FREEWAY, "map", [100.0])
        assert runner_mod._PROTOCOL_PROTOTYPES
        runner_mod.clear_scenario_cache()
        assert runner_mod._PROTOCOL_PROTOTYPES == {}

    def test_artifacts_byte_identical_across_jobs(self, tmp_path):
        """jobs=1 and jobs=2 write byte-identical JSON and CSV artifacts."""
        dirs, names = [tmp_path / "serial", tmp_path / "parallel"], "map_sweep"
        for jobs, out_dir in zip((1, 2), dirs):
            with SweepRunner(jobs=jobs) as runner:
                points = runner.run_config_sweep(CITY, "map", [100.0, 200.0])
                runner.write_artifacts(points, names, out_dir=str(out_dir))
        for ext in ("json", "csv"):
            a = (dirs[0] / f"{names}.{ext}").read_bytes()
            b = (dirs[1] / f"{names}.{ext}").read_bytes()
            assert a == b, f"{ext} artifact differs between jobs=1 and jobs=2"
