"""Unit tests for repro.experiments.ablations (run at tiny scale)."""

import pytest

from repro.experiments import ablations
from repro.experiments.scenarios import clear_scenario_cache
from repro.mobility.scenarios import ScenarioName


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_scenario_cache()
    yield
    clear_scenario_cache()


SCALE = 0.05


class TestMatchingToleranceAblation:
    def test_rows_and_keys(self):
        rows = ablations.matching_tolerance_ablation(
            ScenarioName.FREEWAY, tolerances=(10.0, 30.0), accuracy=100.0, scale=SCALE
        )
        assert len(rows) == 2
        assert {"um [m]", "updates_per_hour", "match_accuracy", "off_map_events"} <= set(rows[0])

    def test_reasonable_tolerance_matches_well(self):
        rows = ablations.matching_tolerance_ablation(
            ScenarioName.FREEWAY, tolerances=(30.0,), accuracy=100.0, scale=SCALE
        )
        assert rows[0]["match_accuracy"] > 0.85


class TestEstimationWindowAblation:
    def test_rows(self):
        rows = ablations.estimation_window_ablation(
            ScenarioName.WALKING, windows=(2, 8), accuracy=80.0, scale=0.1
        )
        assert [row["window"] for row in rows] == [2.0, 8.0]
        assert all(row["updates_per_hour"] >= 0 for row in rows)


class TestTurnPolicyAblation:
    def test_policies_present_and_known_route_best(self):
        rows = ablations.turn_policy_ablation(
            ScenarioName.CITY, accuracy=100.0, scale=0.07
        )
        policies = {row["policy"] for row in rows}
        assert policies == {"smallest angle", "main road", "turn probabilities", "known route"}
        rates = {row["policy"]: row["updates_per_hour"] for row in rows}
        assert rates["known route"] <= rates["smallest angle"]


class TestAdaptiveComparison:
    def test_strategies_present(self):
        rows = ablations.adaptive_strategy_comparison(
            ScenarioName.FREEWAY, threshold=100.0, scale=SCALE
        )
        strategies = {row["strategy"] for row in rows}
        assert {"linear dr", "sdr", "adr", "dtdr", "higher-order dr"} == strategies
        rates = {row["strategy"]: row["updates_per_hour"] for row in rows}
        assert rates["sdr"] == rates["linear dr"]


class TestSpeedLimitAblation:
    def test_rows_include_paper_baseline(self):
        rows = ablations.speed_limit_prediction_ablation(
            ScenarioName.CITY, factors=(None, 1.0), accuracy=100.0, scale=0.07
        )
        labels = [row["speed_limit_factor"] for row in rows]
        assert labels[0] == "none (paper)"
        assert all(row["max_error_m"] <= 100.0 + 60.0 for row in rows)


class TestMessageLossRobustness:
    def test_rows_and_degradation(self):
        rows = ablations.message_loss_robustness(
            ScenarioName.FREEWAY,
            loss_probabilities=(0.0, 0.2),
            accuracy=100.0,
            scale=SCALE,
        )
        assert len(rows) == 4  # 2 loss levels x 2 protocols
        linear_clean = next(
            r for r in rows if r["protocol"] == "linear dr" and r["loss"] == 0.0
        )
        linear_lossy = next(
            r for r in rows if r["protocol"] == "linear dr" and r["loss"] == 0.2
        )
        assert linear_lossy["max_error_m"] >= linear_clean["max_error_m"]
