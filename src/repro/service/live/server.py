"""The live location server: an asyncio TCP front over one facade.

Design
------
One :class:`~repro.service.facade.LocationService` instance serves every
connection.  The two request classes meet it differently:

* **Ingestion is single-writer.**  ``ingest`` requests do not touch the
  facade from their connection handler; they enqueue the decoded batch on
  a **bounded** :class:`asyncio.Queue` and one writer task applies batches
  in queue order via :meth:`LocationService.ingest_batch`.  The bound is
  the backpressure mechanism: when the queue is full, a default request
  *waits* for a slot (the client's send loop slows down to the service's
  ingest rate instead of growing an unbounded backlog), and a request with
  ``"wait": false`` is *rejected* immediately with ``"rejected": true`` so
  open-loop clients can shed load.  Either way memory stays bounded.
* **Queries are read-only** and answered in coalesced batches on the event
  loop.  A query request parks on a future and schedules one flush
  callback; every query that arrived in the same loop iteration (e.g. a
  burst from many client connections) is answered inside that single
  synchronous callback against one ``applied_seq`` watermark — so a burst
  of queries at the same timestamp pays one facade ``prepare`` and the
  per-shard work runs as one vectorised pass per query instead of
  interleaving with ingest.  Because the flush never awaits and
  :meth:`ingest_batch` never awaits, a query can never observe a
  half-applied batch.

With a :class:`~repro.service.sharding.RebalancePolicy` attached the
writer additionally checks the per-shard skew after each applied batch and
re-homes hot routing cells when the threshold trips — load-adaptive
sharding under live traffic, with placement changes that provably never
alter query answers.

Every accepted ingest batch gets a monotonically increasing **sequence
number** which the writer publishes as ``applied_seq`` once the batch is
in the facade.  A query may carry ``min_seq``: the server defers the
answer until ``applied_seq >= min_seq`` (read-your-writes for a client
that just ingested), and every query response reports the ``at_seq`` it
was answered at — which is what lets the load generator replay the exact
same batch/query interleaving against a plain in-process facade and
assert the answers bit-identical.

The wire protocol is length-prefixed JSON
(:mod:`repro.service.live.protocol`).  Requests are JSON objects with an
``"op"`` key: ``ping``, ``register``, ``ingest``, ``range``, ``nearest``,
``geofence``, ``stats``, ``metrics``, ``shutdown``.  Responses carry
``"ok"`` plus op-specific fields, or ``"ok": false`` with an ``"error"``
message (the connection survives request errors; framing errors close it).

Observability
-------------
With an :class:`~repro.obs.Observability` bundle attached the server
records a per-op latency distribution, the ingest queue depth at each
accepted batch, the shed count and the watermark lag
(``enqueued_seq - at_seq``) observed by queries.  The ``metrics`` op
exposes the registry over the wire — as a JSON snapshot *and* as
Prometheus text exposition — and works without a bundle too (server
counters only, published as gauges at request time).  Shed-load
rejections additionally log a warning through the module logger.
"""

from __future__ import annotations

import asyncio
import logging
import time as _time
from typing import Dict, List, Optional, Tuple

from repro.geo.bbox import BoundingBox
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.protocols.prediction import LinearPrediction, StaticPrediction
from repro.service.facade import LocationService
from repro.service.sharding import RebalancePolicy
from repro.service.live.protocol import (
    FrameError,
    decode_message,
    encode_answer,
    read_frame,
    write_frame,
)

_logger = logging.getLogger(__name__)

#: Prediction functions a client may register over the wire.  Scenario
#: fleets with richer predictions (map-based, known-route) are registered
#: server-side at startup from the same lane specs the simulation uses —
#: those functions are not wire-serialisable.
WIRE_PREDICTIONS = {
    "static": StaticPrediction,
    "linear": LinearPrediction,
}

_STOP = object()


class LiveLocationServer:
    """Serve one :class:`LocationService` over TCP.

    Parameters
    ----------
    service:
        The facade to serve.  Objects may be pre-registered (the ``serve``
        CLI registers a whole scenario fleet before listening) and clients
        may register more via the ``register`` op.
    host / port:
        Listen address; port ``0`` picks a free port (tests, in-process
        load tests).
    ingest_queue_size:
        Bound of the ingest queue, in batches.  This is the backpressure
        knob: small values make waiting/rejection observable under load,
        large values absorb bigger bursts.
    obs:
        Optional :class:`~repro.obs.Observability` bundle.  When attached
        the server records per-op latencies, queue depth, shed counts and
        watermark lag (see the module docstring); when ``None`` the only
        instrumentation cost is one attribute check per request.
    rebalance:
        Optional :class:`~repro.service.sharding.RebalancePolicy`.  When
        attached, the writer checks the per-shard skew after every applied
        ingest batch and re-homes hot routing cells past the threshold.
    """

    def __init__(
        self,
        service: Optional[LocationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        ingest_queue_size: int = 64,
        obs: Optional[Observability] = None,
        rebalance: Optional[RebalancePolicy] = None,
    ):
        if ingest_queue_size < 1:
            raise ValueError("ingest_queue_size must be at least 1")
        self.service = service if service is not None else LocationService()
        self.host = host
        self.port = port
        self.obs = obs
        if obs is not None and getattr(self.service, "obs", False) is None:
            # Share the bundle with the facade so its ingest/query
            # instruments land in the same registry the metrics op serves.
            self.service.obs = obs
        self.ingest_queue_size = int(ingest_queue_size)
        self.rebalance_policy = rebalance
        #: Rebalance passes the writer actually ran (threshold trips).
        self.rebalance_passes = 0
        self._queue: Optional[asyncio.Queue] = None
        self._query_batch: List[Tuple[str, Dict[str, object], asyncio.Future]] = []
        self._flush_scheduled = False
        self._applied_cond: Optional[asyncio.Condition] = None
        self._writer_task: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set = set()
        self._stopping = False
        #: Sequence number of the last *accepted* (enqueued) ingest batch.
        self.enqueued_seq = 0
        #: Sequence number of the last batch the writer applied to the facade.
        self.applied_seq = 0
        #: ``ingest`` requests turned away because the queue was full.
        self.rejected_batches = 0
        #: Per-op request counters (monitoring / tests).
        self.op_counts: Dict[str, int] = {}
        #: Set by the ``shutdown`` op; :meth:`run_until_shutdown` awaits it.
        self.shutdown_requested = asyncio.Event()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start the writer; returns ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._queue = asyncio.Queue(maxsize=self.ingest_queue_size)
        self._applied_cond = asyncio.Condition()
        self._stopping = False
        self._writer_task = asyncio.create_task(self._drain_ingest_queue())
        self._server = await asyncio.start_server(self._on_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        _logger.info(
            "live server listening on %s:%d (ingest queue %d batches)",
            self.host,
            self.port,
            self.ingest_queue_size,
        )
        return self.host, self.port

    async def stop(self, grace: float = 5.0) -> None:
        """Shut down cleanly: stop accepting, finish in-flight work, drain.

        The listener closes first, so no new connections arrive.  Open
        connections get *grace* seconds to finish their in-flight requests
        and disconnect (a well-behaved client closes after its last
        response); stragglers are cancelled.  Every batch accepted before
        the connections ended is then applied — the writer drains the
        queue to its stop marker — so an acknowledged ingest is never
        lost by a clean shutdown.
        """
        if self._server is None:
            return
        self._stopping = True
        self._server.close()
        await self._server.wait_closed()
        if self._conn_tasks:
            _done, pending = await asyncio.wait(set(self._conn_tasks), timeout=grace)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await self._queue.put(_STOP)
        await self._writer_task
        self._server = None
        self._writer_task = None
        _logger.info(
            "live server stopped (applied %d batches, rejected %d)",
            self.applied_seq,
            self.rejected_batches,
        )

    async def run_until_shutdown(self) -> None:
        """Serve until a client sends the ``shutdown`` op, then stop."""
        if self._server is None:
            await self.start()
        await self.shutdown_requested.wait()
        await self.stop()

    @property
    def ingest_queue_depth(self) -> int:
        """Batches currently queued for the writer."""
        return self._queue.qsize() if self._queue is not None else 0

    # ------------------------------------------------------------------ #
    # single writer
    # ------------------------------------------------------------------ #
    async def _drain_ingest_queue(self) -> None:
        """The only code path that mutates the facade's records."""
        while True:
            item = await self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            seq, time, batch = item
            try:
                self.service.ingest_batch(batch, time)
                if self.rebalance_policy is not None:
                    self._maybe_rebalance(time)
            finally:
                self._queue.task_done()
                async with self._applied_cond:
                    self.applied_seq = seq
                    self._applied_cond.notify_all()

    def _maybe_rebalance(self, time: float) -> None:
        """Writer-side skew check (never awaits; placement only)."""
        report = self.rebalance_policy.maybe_rebalance(self.service, time)
        if report is None:
            return
        self.rebalance_passes += 1
        _logger.info(
            "rebalanced shard %d at t=%g: skew %.3f -> %.3f "
            "(%d cells, %d objects re-homed)",
            report.hot_shard,
            report.time,
            report.skew_before,
            report.skew_after,
            len(report.moves),
            report.handoffs,
        )
        if self.obs is not None:
            self.obs.counter("live.rebalance.passes", deterministic=False).inc()
            self.obs.counter("live.rebalance.cells", deterministic=False).inc(
                len(report.moves)
            )
            self.obs.counter("live.rebalance.objects", deterministic=False).inc(
                report.handoffs
            )
            self.obs.gauge("live.rebalance.skew_after", deterministic=False).set(
                report.skew_after
            )

    # ------------------------------------------------------------------ #
    # connections
    # ------------------------------------------------------------------ #
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except FrameError:
                    break
                if request is None:
                    break
                op = str(request.get("op", ""))
                self.op_counts[op] = self.op_counts.get(op, 0) + 1
                started = _time.perf_counter() if self.obs is not None else 0.0
                try:
                    response = await self._dispatch(op, request)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 — survive request errors
                    response = {"ok": False, "op": op, "error": f"{type(exc).__name__}: {exc}"}
                if self.obs is not None:
                    # Latency includes any watermark wait — that is the
                    # client-observed service time, which is the point.
                    self.obs.latency(f"live.op.{op}").record(
                        _time.perf_counter() - started
                    )
                await write_frame(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------ #
    # request dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch(self, op: str, request: Dict[str, object]) -> Dict[str, object]:
        if op == "ping":
            return {"ok": True, "op": "ping", "applied_seq": self.applied_seq}
        if op == "register":
            return self._handle_register(request)
        if op == "ingest":
            return await self._handle_ingest(request)
        if op in ("range", "nearest", "geofence"):
            return await self._handle_query(op, request)
        if op == "stats":
            return self._handle_stats()
        if op == "metrics":
            return self._handle_metrics()
        if op == "shutdown":
            self.shutdown_requested.set()
            return {"ok": True, "op": "shutdown"}
        return {"ok": False, "op": op, "error": f"unknown op {op!r}"}

    def _handle_register(self, request: Dict[str, object]) -> Dict[str, object]:
        objects = request.get("objects", [])
        if not isinstance(objects, list):
            return {"ok": False, "op": "register", "error": "objects must be a list"}
        for spec in objects:
            kind = str(spec.get("prediction", "static"))
            if kind not in WIRE_PREDICTIONS:
                return {
                    "ok": False,
                    "op": "register",
                    "error": (
                        f"prediction {kind!r} is not wire-registrable; "
                        f"choose one of {sorted(WIRE_PREDICTIONS)} or register "
                        "the fleet server-side at startup"
                    ),
                }
        registered = []
        for spec in objects:
            object_id = str(spec["id"])
            self.service.register_object(
                object_id,
                prediction=WIRE_PREDICTIONS[str(spec.get("prediction", "static"))](),
                accuracy=float(spec.get("accuracy", float("inf"))),
            )
            registered.append(object_id)
        return {"ok": True, "op": "register", "registered": registered}

    async def _handle_ingest(self, request: Dict[str, object]) -> Dict[str, object]:
        time = float(request["t"])
        batch = [decode_message(entry) for entry in request.get("updates", [])]
        for object_id, _message in batch:
            if not self.service.is_registered(object_id):
                return {
                    "ok": False,
                    "op": "ingest",
                    "error": f"object {object_id!r} is not registered",
                }
        if self._stopping:
            return {"ok": False, "op": "ingest", "error": "server is shutting down"}
        wait = bool(request.get("wait", True))
        if not wait and self._queue.full():
            self.rejected_batches += 1
            _logger.warning(
                "shed ingest batch of %d updates at t=%g: queue full "
                "(%d/%d batches, %d rejected so far)",
                len(batch),
                time,
                self._queue.qsize(),
                self.ingest_queue_size,
                self.rejected_batches,
            )
            if self.obs is not None:
                self.obs.counter("live.ingest.rejected", deterministic=False).inc()
            return {
                "ok": False,
                "op": "ingest",
                "rejected": True,
                "error": "ingest queue full",
                "queue_depth": self._queue.qsize(),
            }
        # Sequence assignment and enqueueing happen without an intervening
        # await (asyncio.Queue wakes blocked putters FIFO), so queue order
        # always equals sequence order.
        self.enqueued_seq += 1
        seq = self.enqueued_seq
        await self._queue.put((seq, time, batch))
        if self.obs is not None:
            self.obs.counter("live.ingest.accepted", deterministic=False).inc()
            self.obs.histogram(
                "live.ingest.queue_depth", bounds=(0, 1, 2, 4, 8, 16, 32, 64, 128)
            ).observe(self._queue.qsize())
        return {
            "ok": True,
            "op": "ingest",
            "seq": seq,
            "accepted": len(batch),
            "queue_depth": self._queue.qsize(),
        }

    async def _handle_query(self, op: str, request: Dict[str, object]) -> Dict[str, object]:
        float(request["t"])  # validate before parking on the batch
        min_seq = int(request.get("min_seq", 0))
        if min_seq > self.enqueued_seq:
            return {
                "ok": False,
                "op": op,
                "error": (
                    f"min_seq {min_seq} is ahead of the last accepted ingest "
                    f"batch ({self.enqueued_seq}); the watermark can never be reached"
                ),
            }
        if self.applied_seq < min_seq:
            async with self._applied_cond:
                await self._applied_cond.wait_for(lambda: self.applied_seq >= min_seq)
        # Park on the coalescing batch: every query that reaches this point
        # in the same loop iteration is answered by one flush callback.
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._query_batch.append((op, request, future))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush_query_batch)
        return await future

    def _flush_query_batch(self) -> None:
        """Answer every parked query in one synchronous vectorised pass.

        The callback never awaits, so the single ``applied_seq`` read below
        is exactly the ingestion state *every* answer in the batch was
        computed against (the writer cannot run mid-flush).  Queries are
        answered grouped by timestamp so a same-instant burst pays one
        facade ``prepare`` for the whole group.
        """
        batch, self._query_batch = self._query_batch, []
        self._flush_scheduled = False
        if not batch:
            return
        at_seq = self.applied_seq
        if self.obs is not None:
            self.obs.histogram(
                "live.query.batch_size", bounds=(1, 2, 4, 8, 16, 32, 64, 128)
            ).observe(len(batch))
            # How far the writer trails the accept path, as seen by queries.
            lag = self.enqueued_seq - at_seq
            lag_hist = self.obs.histogram(
                "live.query.watermark_lag", bounds=(0, 1, 2, 4, 8, 16, 32, 64, 128)
            )
            for _ in batch:
                lag_hist.observe(lag)
        order = sorted(range(len(batch)), key=lambda i: (float(batch[i][1]["t"]), i))
        for i in order:
            op, request, future = batch[i]
            if future.done():
                continue  # connection was cancelled while parked
            try:
                response = self._answer_query(op, request, at_seq)
            except Exception as exc:  # noqa: BLE001 — survive request errors
                response = {"ok": False, "op": op, "error": f"{type(exc).__name__}: {exc}"}
            future.set_result(response)

    def _answer_query(
        self, op: str, request: Dict[str, object], at_seq: int
    ) -> Dict[str, object]:
        time = float(request["t"])
        if op == "range":
            box = [float(v) for v in request["box"]]
            answer = self.service.range_query(
                BoundingBox(box[0], box[1], box[2], box[3]),
                time,
                margin=float(request.get("margin", 0.0)),
            )
        elif op == "nearest":
            x, y = (float(v) for v in request["point"])
            answer = self.service.nearest_objects((x, y), time, k=int(request.get("k", 1)))
        else:
            x, y = (float(v) for v in request["point"])
            answer = self.service.geofence_query((x, y), float(request["radius"]), time)
        return {"ok": True, "op": op, "answer": encode_answer(op, answer), "at_seq": at_seq}

    def _handle_stats(self) -> Dict[str, object]:
        stats = self.service.service_stats()
        return {
            "ok": True,
            "op": "stats",
            "service": stats,
            "server": {
                "enqueued_seq": self.enqueued_seq,
                "applied_seq": self.applied_seq,
                "ingest_queue_depth": self.ingest_queue_depth,
                "ingest_queue_size": self.ingest_queue_size,
                "rejected_batches": self.rejected_batches,
                "op_counts": dict(self.op_counts),
                "connections": len(self._conn_tasks),
                "rebalance_passes": self.rebalance_passes,
                "rebalance": (
                    self.rebalance_policy.last_report.as_dict()
                    if self.rebalance_policy is not None
                    and self.rebalance_policy.last_report is not None
                    else None
                ),
            },
        }

    def _handle_metrics(self) -> Dict[str, object]:
        """Expose the metrics registry over the wire.

        With an observability bundle attached this returns everything the
        server has recorded (latencies, queue depths, shed counts, plus
        whatever the facade contributed); without one it still answers
        usefully from a fresh registry.  Server counters are published as
        gauges at request time either way — seqs and op counts are
        monotone, so ``max``-mode gauges track their current value, and
        ``queue_depth``/``connections`` read as high watermarks.
        """
        registry = self.obs.registry if self.obs is not None else MetricsRegistry()
        registry.gauge("live.server.enqueued_seq").set(self.enqueued_seq)
        registry.gauge("live.server.applied_seq").set(self.applied_seq)
        registry.gauge("live.server.ingest_queue_depth").set(self.ingest_queue_depth)
        registry.gauge("live.server.ingest_queue_size").set(self.ingest_queue_size)
        registry.gauge("live.server.rejected_batches").set(self.rejected_batches)
        registry.gauge("live.server.connections").set(len(self._conn_tasks))
        for op, count in sorted(self.op_counts.items()):
            registry.gauge(f"live.server.op_count.{op}").set(count)
        return {
            "ok": True,
            "op": "metrics",
            "enabled": self.obs is not None,
            "metrics": registry.snapshot(),
            "prometheus": registry.to_prometheus(),
        }


def registrations_for_lanes(lanes) -> List[Tuple[str, object, float]]:
    """Capture ``(object_id, prediction, accuracy)`` for a lane list.

    Exactly what :class:`~repro.sim.fleet.FleetSimulation` registers before
    a run; captured *before* the lanes' protocols process any sighting so
    the server and any replay reference share identical registrations.
    """
    return [
        (
            lane.object_id,
            lane.protocol.prediction_function(),
            lane.protocol.accuracy,
        )
        for lane in lanes
    ]


def service_for_registrations(
    registrations: List[Tuple[str, object, float]],
    n_shards: int = 1,
    region_size: float = 2000.0,
    engine: str = "columnar",
) -> LocationService:
    """A fresh facade with *registrations* applied (server or reference side)."""
    service = LocationService(n_shards=n_shards, region_size=region_size, engine=engine)
    for object_id, prediction, accuracy in registrations:
        service.register_object(object_id, prediction=prediction, accuracy=accuracy)
    return service
