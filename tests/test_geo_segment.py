"""Unit tests for repro.geo.segment."""

import math

import pytest

from repro.geo.segment import Segment


@pytest.fixture()
def horizontal():
    return Segment((0.0, 0.0), (100.0, 0.0))


class TestBasicProperties:
    def test_length(self, horizontal):
        assert horizontal.length == pytest.approx(100.0)

    def test_direction(self, horizontal):
        assert horizontal.direction.tolist() == [1.0, 0.0]

    def test_bearing_east(self, horizontal):
        assert horizontal.bearing == pytest.approx(math.pi / 2)

    def test_midpoint(self, horizontal):
        assert horizontal.midpoint.tolist() == [50.0, 0.0]

    def test_reversed(self, horizontal):
        rev = horizontal.reversed()
        assert rev.start.tolist() == [100.0, 0.0]
        assert rev.end.tolist() == [0.0, 0.0]
        assert rev.length == pytest.approx(horizontal.length)

    def test_degenerate_segment_direction_is_zero(self):
        seg = Segment((5.0, 5.0), (5.0, 5.0))
        assert seg.length == 0.0
        assert seg.direction.tolist() == [0.0, 0.0]

    def test_bounds(self):
        seg = Segment((3.0, 8.0), (-2.0, 1.0))
        assert seg.bounds() == (-2.0, 1.0, 3.0, 8.0)


class TestPointAt:
    def test_start_and_end(self, horizontal):
        assert horizontal.point_at(0.0).tolist() == [0.0, 0.0]
        assert horizontal.point_at(100.0).tolist() == [100.0, 0.0]

    def test_interior(self, horizontal):
        assert horizontal.point_at(25.0).tolist() == [25.0, 0.0]

    def test_clamped_below(self, horizontal):
        assert horizontal.point_at(-10.0).tolist() == [0.0, 0.0]

    def test_clamped_above(self, horizontal):
        assert horizontal.point_at(150.0).tolist() == [100.0, 0.0]


class TestProjection:
    def test_projects_perpendicularly(self, horizontal):
        proj = horizontal.project((30.0, 40.0))
        assert proj.tolist() == [30.0, 0.0]

    def test_projection_clamped_to_start(self, horizontal):
        assert horizontal.project((-50.0, 10.0)).tolist() == [0.0, 0.0]

    def test_projection_clamped_to_end(self, horizontal):
        assert horizontal.project((200.0, 10.0)).tolist() == [100.0, 0.0]

    def test_distance_to_point_on_segment_is_zero(self, horizontal):
        assert horizontal.distance_to((42.0, 0.0)) == pytest.approx(0.0)

    def test_distance_perpendicular(self, horizontal):
        assert horizontal.distance_to((50.0, 30.0)) == pytest.approx(30.0)

    def test_distance_beyond_end_uses_endpoint(self, horizontal):
        assert horizontal.distance_to((103.0, 4.0)) == pytest.approx(5.0)

    def test_project_offset(self, horizontal):
        assert horizontal.project_offset((64.0, 10.0)) == pytest.approx(64.0)

    def test_project_parameter_degenerate(self):
        seg = Segment((1.0, 1.0), (1.0, 1.0))
        assert seg.project_parameter((5.0, 5.0)) == 0.0
        assert seg.distance_to((4.0, 5.0)) == pytest.approx(5.0)


class TestSideOf:
    def test_left(self, horizontal):
        assert horizontal.side_of((50.0, 1.0)) == 1

    def test_right(self, horizontal):
        assert horizontal.side_of((50.0, -1.0)) == -1

    def test_collinear(self, horizontal):
        assert horizontal.side_of((150.0, 0.0)) == 0
