"""Metrics collected by a protocol simulation.

The paper's primary metric is the number of update messages per hour for a
requested accuracy; the secondary one is the accuracy actually delivered at
the server.  :class:`AccuracyMetrics` accumulates both, plus bandwidth, in a
single pass (no per-sample Python objects are kept, only running sums and a
reservoir for the error distribution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


class AccuracyMetrics:
    """Streaming accumulator of server-side position error."""

    def __init__(self) -> None:
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0
        self._max = 0.0
        self._errors: List[float] = []
        self._violations = 0
        self._bound: Optional[float] = None

    def set_bound(self, bound: float) -> None:
        """Define the accuracy bound used to count violations (``us``)."""
        self._bound = float(bound)

    def record(self, error: float) -> None:
        """Record one server-vs-truth position error sample (metres)."""
        error = float(error)
        self._count += 1
        self._sum += error
        self._sum_sq += error * error
        if error > self._max:
            self._max = error
        self._errors.append(error)
        if self._bound is not None and error > self._bound:
            self._violations += 1

    # ------------------------------------------------------------------ #
    # summary statistics
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return self._count

    @property
    def mean_error(self) -> float:
        """Mean position error in metres."""
        return self._sum / self._count if self._count else 0.0

    @property
    def rms_error(self) -> float:
        """Root-mean-square position error in metres."""
        return math.sqrt(self._sum_sq / self._count) if self._count else 0.0

    @property
    def max_error(self) -> float:
        """Maximum position error in metres."""
        return self._max

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0-100) of the error distribution."""
        if not self._errors:
            return 0.0
        return float(np.percentile(np.array(self._errors), q))

    @property
    def violation_fraction(self) -> float:
        """Fraction of samples whose error exceeded the configured bound."""
        if self._count == 0 or self._bound is None:
            return 0.0
        return self._violations / self._count

    def as_dict(self) -> Dict[str, float]:
        """Summary dictionary used by reports."""
        return {
            "samples": float(self._count),
            "mean_error_m": self.mean_error,
            "rms_error_m": self.rms_error,
            "p95_error_m": self.percentile(95.0),
            "max_error_m": self.max_error,
            "violation_fraction": self.violation_fraction,
        }


@dataclass
class SimulationResult:
    """Outcome of running one protocol over one trace.

    Attributes
    ----------
    protocol_name:
        Human-readable protocol name.
    accuracy:
        The requested accuracy ``us`` in metres.
    duration_h:
        Simulated duration in hours.
    updates:
        Number of update messages counted by the evaluation (the initial
        update is included, as in the paper's counting of transmitted
        messages).
    bytes_sent:
        Total update payload bytes transmitted.
    metrics:
        Server-side accuracy metrics.
    update_reasons:
        Histogram of why updates were sent.
    matcher_stats:
        Map-matcher counters (empty for protocols without a matcher).
    """

    protocol_name: str
    accuracy: float
    duration_h: float
    updates: int
    bytes_sent: int
    metrics: AccuracyMetrics
    update_reasons: Dict[str, int] = field(default_factory=dict)
    matcher_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def updates_per_hour(self) -> float:
        """The paper's headline metric: update messages per hour."""
        if self.duration_h <= 0:
            return 0.0
        return self.updates / self.duration_h

    @property
    def bytes_per_hour(self) -> float:
        """Transmitted payload bytes per hour."""
        if self.duration_h <= 0:
            return 0.0
        return self.bytes_sent / self.duration_h

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary used by the report renderer and benchmarks."""
        out: Dict[str, object] = {
            "protocol": self.protocol_name,
            "us_m": self.accuracy,
            "updates": self.updates,
            "updates_per_hour": round(self.updates_per_hour, 2),
            "bytes_per_hour": round(self.bytes_per_hour, 1),
            "duration_h": round(self.duration_h, 3),
        }
        out.update({k: round(v, 2) for k, v in self.metrics.as_dict().items()})
        return out
