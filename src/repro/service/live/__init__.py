"""The live serving tier: an asyncio front over the :class:`LocationService`.

Everything else in the repository runs the location service as a batch
simulation; this package runs it as a long-lived network server:

* :mod:`repro.service.live.protocol` — the length-prefixed JSON wire
  protocol and the codecs that round-trip update messages and query
  answers bit-exactly.
* :mod:`repro.service.live.server` — :class:`LiveLocationServer`, a TCP
  server owning one :class:`~repro.service.facade.LocationService` with
  single-writer ingestion behind a bounded queue (backpressure) and
  watermark-consistent queries.
* :mod:`repro.service.live.client` — :class:`LiveClient`, the async
  request/response client used by the load generator, tests and CLI.
* :mod:`repro.service.live.stats` — :class:`LatencyRecorder`, the
  per-request wall-clock latency histogram (avg/p50/p95/p99).

The load generator that drives a server with replayed scenario traffic
lives one level up, in :mod:`repro.service.loadgen`.
"""

from repro.service.live.client import LiveClient, LiveRequestError
from repro.service.live.server import LiveLocationServer
from repro.service.live.stats import LatencyRecorder

__all__ = [
    "LiveClient",
    "LiveLocationServer",
    "LiveRequestError",
    "LatencyRecorder",
]
