#!/usr/bin/env python
"""Import an OpenStreetMap extract and run the protocol suite on it.

End-to-end tour of the real-map ingest layer:

1. obtain an OSM extract — here a deterministic synthetic town is written
   to disk so the example runs offline; point ``EXTRACT`` at any real
   ``.osm`` (XML) or Overpass ``[out:json]`` file to use a real city,
2. import it through the compiled-map cache (``repro.ingest.import_map``):
   streaming parse, tag normalisation, projection to local metres, graph
   conditioning (largest component, stub pruning, degree-2 contraction),
3. register the imported network as a library scenario and sweep the
   map-based protocol over it, exactly like any built-in scenario.

Run with::

    python examples/import_real_map.py
"""

import tempfile
from pathlib import Path

from repro.experiments.library import register_map_file_scenario
from repro.experiments.report import format_table
from repro.ingest import import_map, write_fixture_xml
from repro.sim.runner import ScenarioSpec, SweepRunner


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        extract = Path(tmp) / "example_town.osm"
        write_fixture_xml(extract, seed=21, rows=7, cols=7)
        cache_dir = Path(tmp) / "mapcache"

        # First import runs the full pipeline; the second is a cache hit.
        compiled = import_map(extract, cache_dir=cache_dir)
        report = compiled.report
        print(f"Imported {extract.name}: {compiled.roadmap}")
        print(
            f"  conditioning: {report.nodes_contracted} nodes contracted, "
            f"{report.stub_segments_pruned} stub segments pruned, "
            f"{report.components_dropped} disconnected component(s) dropped"
        )
        print(f"  timings: {dict((k, round(v, 4)) for k, v in compiled.timings.items())}")
        assert import_map(extract, cache_dir=cache_dir).cached
        print("  second import served from the compiled-map cache")
        print()

        # The imported map is a normal library scenario from here on.
        name = register_map_file_scenario(str(extract), cache_dir=str(cache_dir))
        spec = ScenarioSpec(name=name, scale=0.2)
        points = SweepRunner().run_config_sweep(spec, "map", [50.0, 100.0, 200.0])
        rows = [point.result.as_dict() for point in points]
        print(format_table(rows, title=f"map-based protocol on {name} (scale 0.2)"))


if __name__ == "__main__":
    main()
