"""Uniform-grid spatial hash.

Road-network geometry is spread roughly uniformly over the covered area, so
a fixed-cell-size grid gives excellent query performance with trivial code.
This is the default index used by :class:`repro.roadmap.graph.RoadMap`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple, TypeVar

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.spatial.index import IndexedItem, SpatialIndex

T = TypeVar("T", bound=Hashable)


class GridIndex(SpatialIndex[T]):
    """Spatial hash with square cells of a configurable size.

    Parameters
    ----------
    cell_size:
        Edge length of a grid cell in metres.  A good choice is slightly
        larger than the typical item extent; for road links the default of
        250 m works well across all the paper's scenarios.
    items:
        Optional initial items.
    """

    def __init__(
        self, cell_size: float = 250.0, items: Optional[Iterable[IndexedItem[T]]] = None
    ):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], List[IndexedItem[T]]] = defaultdict(list)
        # Items live in an insertion-ordered dict keyed by a serial so that
        # removal is O(covered cells) instead of O(n) list surgery.
        self._items: Dict[int, IndexedItem[T]] = {}
        self._serial = 0
        self._by_key: Dict[T, List[int]] = defaultdict(list)
        self._item_cells: Dict[int, List[Tuple[int, int]]] = {}
        self._occupied: Optional[Tuple[int, int, int, int]] = None
        if items is not None:
            for item in items:
                self.insert(item)

    # ------------------------------------------------------------------ #
    # SpatialIndex interface
    # ------------------------------------------------------------------ #
    def insert(self, item: IndexedItem[T]) -> None:
        """Register *item* with every grid cell its bounding box overlaps."""
        serial = self._serial
        self._serial += 1
        self._items[serial] = item
        self._by_key[item.key].append(serial)
        min_cx, min_cy = self._cell_of(item.bounds.min_x, item.bounds.min_y)
        max_cx, max_cy = self._cell_of(item.bounds.max_x, item.bounds.max_y)
        if self._occupied is None:
            self._occupied = (min_cx, min_cy, max_cx, max_cy)
        else:
            o = self._occupied
            self._occupied = (
                min(o[0], min_cx), min(o[1], min_cy), max(o[2], max_cx), max(o[3], max_cy)
            )
        # The occupied extent now covers the item, so the clamp in
        # _cells_for_box is an identity here.
        covered = list(self._cells_for_box(item.bounds))
        self._item_cells[serial] = covered
        for cell in covered:
            self._cells[cell].append(item)

    def rebuild(self, items: Iterable[IndexedItem[T]]) -> None:
        """Replace the whole index content with *items* in one bulk pass.

        Equivalent to clearing the index and calling :meth:`insert` once per
        item (same serials, same per-cell insertion order, so queries return
        identical results), but the occupied-cell extent is computed once
        over all items instead of being widened item by item, and the
        per-item work is reduced to cell assignment.  This is the path the
        columnar fleet store and the query engine's first big sync use: at
        100k objects the N× ``insert`` bookkeeping dominates index build
        time.
        """
        self._cells = defaultdict(list)
        self._items = {}
        self._serial = 0
        self._by_key = defaultdict(list)
        self._item_cells = {}
        self._occupied = None
        items = list(items)
        if not items:
            return
        size = self.cell_size
        bounds = np.array(
            [
                (item.bounds.min_x, item.bounds.min_y, item.bounds.max_x, item.bounds.max_y)
                for item in items
            ],
            dtype=float,
        )
        cells = np.floor(bounds / size).astype(np.int64)
        self._occupied = (
            int(cells[:, 0].min()),
            int(cells[:, 1].min()),
            int(cells[:, 2].max()),
            int(cells[:, 3].max()),
        )
        grid_cells = self._cells
        by_key = self._by_key
        item_cells = self._item_cells
        store = self._items
        cell_rows = cells.tolist()
        for serial, (item, (min_cx, min_cy, max_cx, max_cy)) in enumerate(
            zip(items, cell_rows)
        ):
            store[serial] = item
            by_key[item.key].append(serial)
            if min_cx == max_cx and min_cy == max_cy:
                # Point-like items (the moving-object index) cover one cell.
                cell = (min_cx, min_cy)
                item_cells[serial] = [cell]
                grid_cells[cell].append(item)
            else:
                covered = [
                    (cx, cy)
                    for cx in range(min_cx, max_cx + 1)
                    for cy in range(min_cy, max_cy + 1)
                ]
                item_cells[serial] = covered
                for cell in covered:
                    grid_cells[cell].append(item)
        self._serial = len(items)

    def remove(self, key: T) -> int:
        """Remove every item stored under *key*; returns the number removed.

        The occupied-cell extent is left untouched (it remains a valid,
        merely conservative clamp for :meth:`_cells_for_box`), so removal
        never has to rescan the surviving items.
        """
        serials = self._by_key.pop(key, None)
        if not serials:
            return 0
        for serial in serials:
            item = self._items.pop(serial)
            for cell in self._item_cells.pop(serial):
                bucket = self._cells.get(cell)
                if bucket is None:
                    continue
                bucket[:] = [other for other in bucket if other is not item]
                if not bucket:
                    del self._cells[cell]
        return len(serials)

    def query_bbox(self, box: BoundingBox) -> list[IndexedItem[T]]:
        """All items whose bounding boxes intersect *box*."""
        seen: Set[int] = set()
        out: List[IndexedItem[T]] = []
        for cell in self._query_cells(box):
            for item in self._cells.get(cell, ()):
                marker = id(item)
                if marker in seen:
                    continue
                seen.add(marker)
                if item.bounds.intersects(box):
                    out.append(item)
        return out

    def _query_cells(self, box: BoundingBox) -> Iterable[Tuple[int, int]]:
        """Cells to visit for *box*, in lexicographic (cx, cy) order.

        Large boxes over a sparse index (the expanding nearest-neighbour
        searches of a mostly-empty moving-object index) would enumerate far
        more empty cells than occupied ones; in that regime the occupied
        cells are filtered directly instead.  Both paths visit the same
        non-empty cells in the same order, so results are identical.
        """
        if self._occupied is None:
            return ()
        min_cx, min_cy = self._cell_of(box.min_x, box.min_y)
        max_cx, max_cy = self._cell_of(box.max_x, box.max_y)
        occ_min_cx, occ_min_cy, occ_max_cx, occ_max_cy = self._occupied
        min_cx, min_cy = max(min_cx, occ_min_cx), max(min_cy, occ_min_cy)
        max_cx, max_cy = min(max_cx, occ_max_cx), min(max_cy, occ_max_cy)
        if min_cx > max_cx or min_cy > max_cy:
            return ()
        n_cells = (max_cx - min_cx + 1) * (max_cy - min_cy + 1)
        if n_cells > len(self._cells):
            return sorted(
                cell
                for cell in self._cells
                if min_cx <= cell[0] <= max_cx and min_cy <= cell[1] <= max_cy
            )
        return (
            (cx, cy)
            for cx in range(min_cx, max_cx + 1)
            for cy in range(min_cy, max_cy + 1)
        )

    def items(self) -> List[IndexedItem[T]]:
        """Every stored item, in insertion order."""
        return list(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return (int(math.floor(x / self.cell_size)), int(math.floor(y / self.cell_size)))

    def _cells_for_box(self, box: BoundingBox) -> Iterable[Tuple[int, int]]:
        """Occupied-range-clamped cell coordinates covering *box*.

        Clamping to the occupied extent keeps arbitrarily large query boxes
        (e.g. an expanding nearest-neighbour search) from enumerating
        billions of empty cells.
        """
        if self._occupied is None:
            return
        min_cx, min_cy = self._cell_of(box.min_x, box.min_y)
        max_cx, max_cy = self._cell_of(box.max_x, box.max_y)
        occ_min_cx, occ_min_cy, occ_max_cx, occ_max_cy = self._occupied
        min_cx, min_cy = max(min_cx, occ_min_cx), max(min_cy, occ_min_cy)
        max_cx, max_cy = min(max_cx, occ_max_cx), min(max_cy, occ_max_cy)
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                yield (cx, cy)

    def _initial_radius(self) -> float:
        return self.cell_size

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def cell_statistics(self) -> dict:
        """Occupancy statistics, useful for choosing a cell size."""
        counts = [len(v) for v in self._cells.values()]
        if not counts:
            return {"cells": 0, "max_per_cell": 0, "mean_per_cell": 0.0}
        return {
            "cells": len(counts),
            "max_per_cell": max(counts),
            "mean_per_cell": sum(counts) / len(counts),
        }
