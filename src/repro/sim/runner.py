"""The shared sweep runner behind every experiment entry point.

A *sweep* is a list of independent simulation points (scenario × protocol ×
requested accuracy).  :class:`SweepRunner` executes those points through a
pluggable executor — serial by default, a
:class:`~concurrent.futures.ProcessPoolExecutor` with ``jobs > 1`` — while
guaranteeing that the result *sequence* is independent of the executor:
points are deterministic, self-contained and returned in submission order,
so ``jobs=1`` and ``jobs=N`` produce bit-identical results.

Scenario construction (map generation, routing, journey simulation) is by
far the most expensive part of a sweep, so scenarios are cached per process
and keyed by :class:`ScenarioSpec`; a sweep generates its scenario once per
process, not once per point.  Under the ``fork`` start method (the Linux
default) workers additionally inherit the parent's cache for free; under
``spawn`` each worker rebuilds its scenarios once from the spec.

The runner also writes machine-readable artifacts (JSON and CSV) so
figures, tables and ablations all leave greppable, diffable records behind.
"""

from __future__ import annotations

import ast
import csv
import json
import logging
import math
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.mobility.scenarios import Scenario
from repro.protocols.base import UpdateProtocol
from repro.service.channel import MessageChannel
from repro.service.facade import LocationService
from repro.sim.config import SimulationConfig
from repro.sim.engine import ProtocolSimulation
from repro.sim.fleet import FleetSimulation
from repro.sim.metrics import SimulationResult
from repro.obs.manifest import build_manifest
from repro.sim.sweep import SweepPoint
from repro.sim.workload import QueryWorkload, default_query_mix, default_query_rate

_logger = logging.getLogger(__name__)


def _artifact_provenance(config: Dict[str, object]) -> Dict[str, object]:
    """Run-invariant provenance for embedding inside artifacts.

    Artifacts must stay byte-identical across executor/job counts (a
    tier-1 contract), so the wall-clock ``created_unix`` stamp is dropped;
    the stable fields — git revision, config hash, interpreter and library
    versions — remain.
    """
    manifest = build_manifest(config=config)
    manifest.pop("created_unix", None)
    return manifest


# --------------------------------------------------------------------------- #
# scenario specification and per-process cache
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioSpec:
    """A picklable recipe for any scenario of the library.

    Names are resolved through :mod:`repro.experiments.library` (canonical
    *and* generated scenarios).  Workers rebuild (or, under ``fork``,
    inherit) the scenario from this spec instead of shipping the
    multi-megabyte scenario object itself.

    The spec doubles as the scenario cache key, so ``__post_init__``
    canonicalises every field: the name through the registry, ``scale`` to
    ``float``, ``seed`` to ``int`` — with ``None`` resolved to the
    scenario's default seed — and ``sample_interval`` to ``float`` (or
    ``None`` for the scenario's native sighting rate).  Distinct
    ``seed``/``scale``/``sample_interval`` combinations can therefore never
    alias one cache entry, and the default seed written explicitly shares
    its entry with ``seed=None``.

    ``sample_interval`` decimates the built scenario's sighting stream to
    one fix every that many seconds (see
    :func:`repro.mobility.generator.resample_scenario`) — the per-lane
    sampling-rate knob behind mixed-rate fleets.
    """

    name: str
    scale: float = 1.0
    seed: Optional[int] = None
    sample_interval: Optional[float] = None

    def __post_init__(self) -> None:
        # Runtime import: the library lives above the runner in the package
        # graph (it registers builders that the runner merely executes).
        from repro.experiments.library import get_entry

        entry = get_entry(self.name)
        object.__setattr__(self, "name", entry.name)
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(
            self, "seed", entry.default_seed if self.seed is None else int(self.seed)
        )
        if self.sample_interval is not None:
            object.__setattr__(self, "sample_interval", float(self.sample_interval))
            if self.sample_interval <= 0:
                raise ValueError("sample_interval must be positive")
        if not (0.0 < self.scale <= 1.0):
            raise ValueError("scale must be in (0, 1]")

    def build(self) -> Scenario:
        """The (per-process cached) scenario this spec describes."""
        return _cached_scenario(self)


_SCENARIO_CACHE: Dict[ScenarioSpec, Scenario] = {}


def _cached_scenario(spec: ScenarioSpec) -> Scenario:
    scenario = _SCENARIO_CACHE.get(spec)
    if scenario is None:
        if spec.sample_interval is not None:
            # Decimated variants share the (cached) base build: sweeping
            # several sighting rates over one scenario generates it once,
            # and a no-op interval aliases the very same object.
            from repro.mobility.generator import resample_scenario

            base = _cached_scenario(
                ScenarioSpec(name=spec.name, scale=spec.scale, seed=spec.seed)
            )
            scenario = resample_scenario(base, spec.sample_interval)
        else:
            from repro.experiments.library import build_library_scenario

            scenario = build_library_scenario(
                spec.name, seed=spec.seed, scale=spec.scale
            )
        _SCENARIO_CACHE[spec] = scenario
    return scenario


def clear_scenario_cache() -> None:
    """Drop the per-process caches (tests needing fresh randomness).

    Clears the scenario cache and, with it, the protocol prototypes (they
    hold references into the cached scenarios' maps and routes).
    """
    _SCENARIO_CACHE.clear()
    _PROTOCOL_PROTOTYPES.clear()


# --------------------------------------------------------------------------- #
# per-process protocol prototypes
# --------------------------------------------------------------------------- #
#: Protocol ids whose construction compiles expensive shared structure (map
#: matcher geometry, route projections) worth keeping worker-resident.  The
#: cheap threshold protocols are excluded (a cache lookup costs as much as
#: building one), and so is time-based reporting, whose default interval is
#: *derived from the accuracy* — cloning across accuracies would not
#: reproduce a fresh build.
_PROTOTYPE_PROTOCOL_IDS = ("map", "known_route")

_PROTOCOL_PROTOTYPES: Dict[tuple, UpdateProtocol] = {}


def _build_protocol_cached(
    spec: "ScenarioSpec", config: SimulationConfig, scenario: Scenario
) -> UpdateProtocol:
    """Build *config*'s protocol, reusing a worker-resident prototype.

    An accuracy sweep of a map-based protocol rebuilds the same matcher
    over the same road map once per point; here each worker process builds
    it once per (scenario, non-accuracy config) and serves every point a
    fresh :meth:`~repro.protocols.base.UpdateProtocol.clone_for` — shared
    structure by reference, per-run state detached, results bit-identical
    to a fresh build (asserted by the test-suite).  The prototype itself is
    never run: even the first point gets a clone.
    """
    if config.protocol_id not in _PROTOTYPE_PROTOCOL_IDS:
        return config.build_protocol(scenario)
    try:
        key = (
            spec,
            config.protocol_id,
            config.use_sensor_uncertainty,
            config.estimation_window,
            config.matching_tolerance,
            tuple(sorted(config.extra.items())),
        )
    except TypeError:
        # Unhashable extra parameters: fall back to a per-point build.
        return config.build_protocol(scenario)
    prototype = _PROTOCOL_PROTOTYPES.get(key)
    if prototype is None:
        prototype = config.build_protocol(scenario)
        _PROTOCOL_PROTOTYPES[key] = prototype
    return prototype.clone_for(config.accuracy)


# --------------------------------------------------------------------------- #
# the unit of work
# --------------------------------------------------------------------------- #
def _simulate(
    scenario: Scenario,
    protocol: UpdateProtocol,
    channel: Optional[MessageChannel] = None,
    kernel: str = "tick",
) -> SimulationResult:
    """The one engine invocation every runner entry point funnels through."""
    return ProtocolSimulation(
        protocol=protocol,
        sensor_trace=scenario.sensor_trace,
        truth_trace=scenario.true_trace,
        channel=channel,
        kernel=kernel,
    ).run()


@dataclass(frozen=True)
class SweepTask:
    """One sweep point: build the configured protocol, run it, measure it."""

    scenario: ScenarioSpec
    config: SimulationConfig
    kernel: str = "tick"

    def run(self) -> SweepPoint:
        """Execute this point in the current process."""
        scenario = self.scenario.build()
        result = _simulate(
            scenario,
            _build_protocol_cached(self.scenario, self.config, scenario),
            kernel=self.kernel,
        )
        return SweepPoint(accuracy=float(self.config.accuracy), result=result)


def _run_task(task: SweepTask) -> SweepPoint:
    """Module-level trampoline so tasks can cross process boundaries."""
    return task.run()


def auto_region_size(lanes, shards: int) -> float:
    """Routing cell size targeting ~8 grid-hash cells per shard.

    Sized from the fleet's spatial extent so that shard routing stays
    meaningful at any scenario scale (a fixed metre value degenerates to a
    single cell on small-scale test runs).
    """
    mins = [lane.truth_trace.positions.min(axis=0) for lane in lanes if lane.truth_trace is not None]
    maxs = [lane.truth_trace.positions.max(axis=0) for lane in lanes if lane.truth_trace is not None]
    if not mins:
        mins = [lane.sensor_trace.positions.min(axis=0) for lane in lanes]
        maxs = [lane.sensor_trace.positions.max(axis=0) for lane in lanes]
    lo = np.min(mins, axis=0)
    hi = np.max(maxs, axis=0)
    width = max(float(hi[0] - lo[0]), 1.0)
    height = max(float(hi[1] - lo[1]), 1.0)
    return max(100.0, math.sqrt(width * height / (8.0 * max(1, shards))))


@dataclass(frozen=True)
class QueryBenchSpec:
    """One query-workload bench: a fleet, a sharded service, a query stream.

    ``mix=None`` resolves to the scenario's default query mix
    (:func:`repro.sim.workload.default_query_mix`): geofence-heavy for
    pedestrian scenarios, nearest-heavy for city grids, range-heavy for
    corridors.

    ``kernel="event"`` runs the fleet on the discrete-event kernel; with
    ``arrival_rate_per_s`` set (explicitly, or defaulted from the library
    entry's ``query_rate_per_s``) queries then arrive as a Poisson process
    at exact instants instead of per tick.
    """

    scenario: str
    protocol_id: str = "linear"
    accuracy: float = 100.0
    count: int = 25
    shards: int = 4
    scale: float = 1.0
    seed: Optional[int] = None
    kernel: str = "tick"
    arrival_rate_per_s: Optional[float] = None
    #: Scenario-seed step between lanes: each object drives its own seeded
    #: variant of the scenario, so the fleet spreads over the map instead of
    #: platooning along one shared trace.  ``0`` shares a single trace.
    seed_stride: int = 1
    #: Routing cell size of the grid-hash policy; ``None`` auto-sizes from
    #: the fleet's spatial extent (targeting ~8 cells per shard).
    region_size: Optional[float] = None
    queries_per_tick: float = 2.0
    mix: Optional[Dict[str, float]] = None
    k: int = 3
    range_extent_m: float = 1000.0
    geofence_radius_m: float = 500.0
    workload_seed: int = 0

    def build_workload(self) -> QueryWorkload:
        """The :class:`QueryWorkload` this spec describes.

        A Poisson arrival rate is attached only under the event kernel
        (the tick loop cannot honour exact arrival instants): either the
        spec's explicit ``arrival_rate_per_s`` or, failing that, the
        library entry's ``query_rate_per_s`` default.  An *explicit* rate
        combined with the tick kernel is rejected rather than silently
        ignored; only the library default is dropped on the tick path.
        """
        arrival = None
        if self.kernel == "event":
            arrival = self.arrival_rate_per_s
            if arrival is None:
                arrival = default_query_rate(self.scenario)
        elif self.arrival_rate_per_s is not None:
            raise ValueError(
                "arrival_rate_per_s (Poisson query arrivals) requires kernel='event'"
            )
        return QueryWorkload(
            queries_per_tick=self.queries_per_tick,
            mix=self.mix if self.mix is not None else default_query_mix(self.scenario),
            k=self.k,
            range_extent_m=self.range_extent_m,
            geofence_radius_m=self.geofence_radius_m,
            seed=self.workload_seed,
            arrival_rate_per_s=arrival,
        )


# --------------------------------------------------------------------------- #
# the runner
# --------------------------------------------------------------------------- #
#: Executor factories selectable by name.
EXECUTORS: Dict[str, Callable[[int], Executor]] = {
    "process": lambda jobs: ProcessPoolExecutor(max_workers=jobs),
    "thread": lambda jobs: ThreadPoolExecutor(max_workers=jobs),
}


class SweepRunner:
    """Executes sweep points and emits artifacts.

    Parameters
    ----------
    jobs:
        Number of parallel workers; ``1`` runs everything in-process.
    executor:
        ``"process"`` (default), ``"thread"``, or a callable mapping a job
        count to a :class:`concurrent.futures.Executor` — the pluggable
        seam for future schedulers (clusters, async backends).
    artifact_dir:
        When set, :meth:`write_artifacts` resolves relative names here.
    """

    def __init__(
        self,
        jobs: int = 1,
        executor: Union[str, Callable[[int], Executor]] = "process",
        artifact_dir: Optional[str] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if isinstance(executor, str):
            if executor not in EXECUTORS:
                raise ValueError(
                    f"unknown executor {executor!r}; expected one of {sorted(EXECUTORS)}"
                )
            executor = EXECUTORS[executor]
        self.jobs = int(jobs)
        self.executor_factory = executor
        self.artifact_dir = artifact_dir
        self._pool: Optional[Executor] = None

    # ------------------------------------------------------------------ #
    # worker pool lifecycle
    # ------------------------------------------------------------------ #
    def _get_pool(self) -> Executor:
        """The lazily created, persistent worker pool.

        Keeping the pool alive across sweeps amortises worker start-up over
        every sweep a runner executes (a figure is several sweeps; a report
        is several figures).  Under the ``fork`` start method, scenarios
        built before the first parallel call are inherited by the workers;
        otherwise (or for later specs) each worker rebuilds them once from
        their (cached) :class:`ScenarioSpec`.
        """
        if self._pool is None:
            self._pool = self.executor_factory(self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial runners)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        if getattr(self, "_pool", None) is not None:
            self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------ #
    # scenario access
    # ------------------------------------------------------------------ #
    def scenario(self, spec: Union[ScenarioSpec, str], scale: float = 1.0,
                 seed: Optional[int] = None) -> Scenario:
        """The cached scenario for *spec* (or a name + scale + seed)."""
        if not isinstance(spec, ScenarioSpec):
            spec = ScenarioSpec(name=str(spec), scale=scale, seed=seed)
        return spec.build()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_tasks(self, tasks: Sequence[SweepTask]) -> List[SweepPoint]:
        """Execute *tasks*, returning points in task order.

        The order (and every result bit) is identical for any job count:
        tasks are independent, deterministic, and collected in submission
        order.
        """
        tasks = list(tasks)
        _logger.info("running %d sweep task(s) with jobs=%d", len(tasks), self.jobs)
        if self.jobs == 1 or len(tasks) <= 1:
            return [task.run() for task in tasks]
        # Warm the local cache so fork-started workers inherit built
        # scenarios instead of regenerating them (a no-op cost otherwise:
        # the spec-keyed cache already holds any scenario this sweep used).
        for spec in dict.fromkeys(task.scenario for task in tasks):
            spec.build()
        return list(self._get_pool().map(_run_task, tasks))

    def run_config_sweep(
        self,
        scenario: Union[ScenarioSpec, Scenario],
        protocol_id: str,
        accuracies: Optional[Sequence[float]] = None,
        kernel: str = "tick",
        **config_kwargs,
    ) -> List[SweepPoint]:
        """Sweep one protocol id over the requested accuracies.

        Accepts either a :class:`ScenarioSpec` (parallelisable across
        processes) or an already-built :class:`Scenario` (runs in-process).
        """
        if isinstance(scenario, ScenarioSpec):
            us_values = accuracies if accuracies is not None else scenario.build().us_values
            tasks = [
                SweepTask(
                    scenario=scenario,
                    config=SimulationConfig(
                        protocol_id=protocol_id, accuracy=float(us), **config_kwargs
                    ),
                    kernel=kernel,
                )
                for us in us_values
            ]
            return self.run_tasks(tasks)
        return self.run_factory_sweep(
            scenario,
            lambda us: SimulationConfig(
                protocol_id=protocol_id, accuracy=us, **config_kwargs
            ).build_protocol(scenario),
            accuracies,
            kernel=kernel,
        )

    def run_factory_sweep(
        self,
        scenario: Scenario,
        protocol_factory: Callable[[float], UpdateProtocol],
        accuracies: Optional[Sequence[float]] = None,
        kernel: str = "tick",
    ) -> List[SweepPoint]:
        """Sweep an arbitrary (not necessarily picklable) protocol factory.

        Runs in-process regardless of ``jobs``, since closures over built
        scenarios cannot cross process boundaries.
        """
        points: List[SweepPoint] = []
        for us in accuracies if accuracies is not None else scenario.us_values:
            result = _simulate(scenario, protocol_factory(float(us)), kernel=kernel)
            points.append(SweepPoint(accuracy=float(us), result=result))
        return points

    def run_protocol_sweep(
        self,
        scenario: Scenario,
        prototype: UpdateProtocol,
        accuracies: Optional[Sequence[float]] = None,
        kernel: str = "tick",
    ) -> List[SweepPoint]:
        """Sweep a prototype protocol via its ``clone_for`` reuse hook.

        Expensive protocol structure (map-matcher index, routes) is built
        once and shared by every point instead of once per point.
        """
        return self.run_factory_sweep(
            scenario, lambda us: prototype.clone_for(us), accuracies, kernel=kernel
        )

    def run_single(
        self,
        scenario: Scenario,
        protocol: UpdateProtocol,
        channel: Optional[MessageChannel] = None,
        kernel: str = "tick",
    ) -> SimulationResult:
        """One protocol over one scenario (the ablation studies' unit)."""
        return _simulate(scenario, protocol, channel, kernel=kernel)

    def run_query_bench(self, spec: "QueryBenchSpec") -> Dict[str, object]:
        """Run one query-workload replay against a live fleet.

        Builds ``count`` objects over the spec's scenario — each on its own
        seeded route variant, so the fleet spreads spatially — steps them
        through the fleet loop against a sharded
        :class:`~repro.service.facade.LocationService` backend while the
        query workload fires at every tick, and returns one flat record:
        fleet summary, workload report (throughput / latency), and the
        service tier's per-shard load counters.  Runs in-process — the unit
        of work is a single fleet, not a sweep of independent points.
        """
        from repro.sim.fleet import FleetLane

        workload = spec.build_workload()
        base_seed = ScenarioSpec(name=spec.scenario, scale=spec.scale, seed=spec.seed).seed
        lanes = []
        for n in range(spec.count):
            lane_spec = ScenarioSpec(
                name=spec.scenario,
                scale=spec.scale,
                seed=base_seed + n * spec.seed_stride,
            )
            scenario = lane_spec.build()
            protocol = SimulationConfig(
                protocol_id=spec.protocol_id, accuracy=spec.accuracy
            ).build_protocol(scenario)
            lanes.append(
                FleetLane(
                    object_id=f"{spec.scenario}/{spec.protocol_id}/{n}",
                    protocol=protocol,
                    sensor_trace=scenario.sensor_trace,
                    truth_trace=scenario.true_trace,
                )
            )
        region = spec.region_size
        if region is None:
            region = auto_region_size(lanes, spec.shards)
        service = LocationService(n_shards=spec.shards, region_size=region)
        fleet = FleetSimulation(
            lanes, server=service, query_workload=workload, kernel=spec.kernel
        ).run()
        service_stats = dict(fleet.service_stats)
        per_shard = service_stats.pop("per_shard", [])
        record: Dict[str, object] = {
            "scenario": spec.scenario,
            "protocol": spec.protocol_id,
            "accuracy_m": spec.accuracy,
            "objects": len(lanes),
            "shards": spec.shards,
            "scale": spec.scale,
            "seed": base_seed,
            "kernel": spec.kernel,
            "region_size_m": round(region, 1),
            "queries_per_tick": workload.queries_per_tick,
            "arrival_rate_per_s": workload.arrival_rate_per_s,
            "mix": dict(workload.mix),
            "updates_per_object_hour": round(fleet.updates_per_object_hour, 2),
            "workload": fleet.workload.as_dict() if fleet.workload else {},
            "service": service_stats,
            "per_shard": per_shard,
        }
        return record

    def write_query_bench_artifact(
        self,
        record: Dict[str, object],
        name: str,
        out_dir: Optional[str] = None,
    ) -> str:
        """Write a query-bench record as a JSON artifact; returns the path."""
        out_dir = out_dir or self.artifact_dir or "."
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"{name}.json")
        provenance = _artifact_provenance({"artifact": name, "kind": "query_bench"})
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {"name": name, "provenance": provenance, **record},
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
        _logger.info("wrote query-bench artifact %s", path)
        return path

    # ------------------------------------------------------------------ #
    # artifacts
    # ------------------------------------------------------------------ #
    def write_artifacts(
        self,
        points: Sequence[SweepPoint],
        name: str,
        out_dir: Optional[str] = None,
        formats: Sequence[str] = ("json", "csv"),
        metadata: Optional[Dict[str, object]] = None,
    ) -> Dict[str, str]:
        """Write the sweep's rows as machine-readable artifacts.

        Returns a mapping ``format -> written path``.  The JSON artifact
        carries the row dictionaries plus free-form *metadata* and a
        top-level ``provenance`` manifest (git revision, config hash,
        interpreter/library versions — :mod:`repro.obs.manifest`); the CSV
        holds the same rows for spreadsheet / pandas consumption.
        """
        out_dir = out_dir or self.artifact_dir or "."
        os.makedirs(out_dir, exist_ok=True)
        rows = [point.result.as_dict() for point in points]
        written: Dict[str, str] = {}
        for fmt in formats:
            if fmt == "json":
                path = os.path.join(out_dir, f"{name}.json")
                payload = {
                    "name": name,
                    "metadata": metadata or {},
                    "points": rows,
                    "provenance": _artifact_provenance(
                        {"artifact": name, "metadata": metadata or {}}
                    ),
                }
                with open(path, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            elif fmt == "csv":
                path = os.path.join(out_dir, f"{name}.csv")
                fieldnames: List[str] = []
                for row in rows:
                    for key in row:
                        if key not in fieldnames:
                            fieldnames.append(key)
                with open(path, "w", encoding="utf-8", newline="") as fh:
                    writer = csv.DictWriter(fh, fieldnames=fieldnames)
                    writer.writeheader()
                    writer.writerows(rows)
            else:
                raise ValueError(f"unknown artifact format {fmt!r}")
            _logger.info("wrote %s artifact %s", fmt, path)
            written[fmt] = path
        return written


def read_artifact(path: str) -> Dict[str, object]:
    """Read a sweep artifact written by :meth:`SweepRunner.write_artifacts`.

    Returns ``{"name", "metadata", "points"}`` for both formats.  JSON
    artifacts parse natively; CSV artifacts (which carry neither name nor
    metadata) get the file stem as name, empty metadata, and rows with
    numeric fields restored — so a JSON/CSV pair round-trips to the same
    point dictionaries.
    """
    if path.endswith(".json"):
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        for key in ("name", "metadata", "points"):
            if key not in payload:
                raise ValueError(f"artifact {path!r} lacks the {key!r} field")
        return payload
    if path.endswith(".csv"):
        with open(path, "r", encoding="utf-8", newline="") as fh:
            rows = [
                {key: _parse_csv_cell(value) for key, value in row.items()}
                for row in csv.DictReader(fh)
            ]
        name = os.path.splitext(os.path.basename(path))[0]
        return {"name": name, "metadata": {}, "points": rows}
    raise ValueError(f"unknown artifact format for {path!r} (expected .json or .csv)")


def _parse_csv_cell(value: Optional[str]) -> object:
    """Restore a CSV cell to the value the JSON artifact would carry."""
    if value is None or value == "":
        return value
    try:
        number = float(value)
    except ValueError:
        # Nested dicts (update reasons, matcher stats) are serialised as
        # their Python repr by DictWriter; eval them back conservatively.
        if value.startswith("{") and value.endswith("}"):
            try:
                return ast.literal_eval(value)
            except (ValueError, SyntaxError):
                return value
        return value
    if number.is_integer() and "." not in value and "e" not in value.lower():
        return int(number)
    return number
