"""Map-based dead reckoning with turn-probability information.

"To improve the prediction of the subsequent direction after a mobile
object has passed an intersection, the links in the map can be enhanced with
probability information. [...] The prediction function then assumes that the
object is following the link with the highest probability." (paper Sec. 2)

The probabilities can be *user-independent* (pooled over all objects) or
*user-specific* (learned from one object's own history); both are just
different ways of filling the same
:class:`~repro.roadmap.probability.TurnProbabilityTable`.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.mapbased import MapBasedConfig, MapBasedProtocol
from repro.protocols.prediction import ProbabilisticTurnPolicy
from repro.roadmap.graph import RoadMap
from repro.roadmap.probability import TurnProbabilityTable


class ProbabilisticMapBasedProtocol(MapBasedProtocol):
    """Map-based dead reckoning whose turn policy follows learned probabilities."""

    name = "map-based dead reckoning (probabilities)"

    def __init__(
        self,
        accuracy: float,
        roadmap: RoadMap,
        turn_probabilities: TurnProbabilityTable,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
        config: Optional[MapBasedConfig] = None,
    ):
        if turn_probabilities.roadmap is not roadmap:
            raise ValueError(
                "the turn-probability table must refer to the same road map "
                "instance used by the protocol"
            )
        super().__init__(
            accuracy=accuracy,
            roadmap=roadmap,
            sensor_uncertainty=sensor_uncertainty,
            estimation_window=estimation_window,
            turn_policy=ProbabilisticTurnPolicy(turn_probabilities),
            config=config,
        )
        self.turn_probabilities = turn_probabilities
