"""Declarative simulation configuration.

:class:`SimulationConfig` captures everything needed to reproduce one
protocol-versus-scenario run (protocol name and parameters, requested
accuracy, scenario, seed, scale), can be serialised to/from a plain
dictionary, and builds the protocol instance for a given scenario.  The
benchmark harness and the examples use it so their parameters are explicit
and greppable rather than buried in code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.mobility.scenarios import Scenario
from repro.protocols.base import UpdateProtocol
from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.higher_order import HigherOrderPredictionProtocol
from repro.protocols.known_route import KnownRouteProtocol
from repro.protocols.mapbased import MapBasedConfig, MapBasedProtocol
from repro.protocols.probabilistic import ProbabilisticMapBasedProtocol
from repro.protocols.reporting import (
    DistanceBasedReporting,
    MovementBasedReporting,
    TimeBasedReporting,
)
from repro.roadmap.probability import TurnProbabilityTable
from repro.sim.kernel import KERNELS, validate_kernel  # noqa: F401  (re-export)

#: Registry of protocol identifiers accepted by :class:`SimulationConfig`.
#: The simulation-kernel registry (:data:`KERNELS` / ``tick`` | ``event``)
#: is re-exported here so every "which ids exist" lookup has one home.
PROTOCOL_IDS = (
    "distance",
    "movement",
    "time",
    "linear",
    "higher_order",
    "map",
    "map_probabilistic",
    "known_route",
)


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run.

    Attributes
    ----------
    protocol_id:
        One of :data:`PROTOCOL_IDS`.
    accuracy:
        Requested accuracy ``us`` in metres.
    use_sensor_uncertainty:
        Whether the protocol adds the scenario's sensor sigma as ``up``.
    estimation_window:
        Speed/heading estimation window; ``None`` uses the scenario default.
    matching_tolerance:
        Map-matching tolerance ``um``; ``None`` uses the scenario default.
    extra:
        Free-form protocol-specific parameters (e.g. the time interval of
        time-based reporting).
    """

    protocol_id: str
    accuracy: float
    use_sensor_uncertainty: bool = True
    estimation_window: Optional[int] = None
    matching_tolerance: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.protocol_id not in PROTOCOL_IDS:
            raise ValueError(
                f"unknown protocol id {self.protocol_id!r}; expected one of {PROTOCOL_IDS}"
            )
        if self.accuracy <= 0:
            raise ValueError("accuracy must be positive")

    # ------------------------------------------------------------------ #
    # protocol construction
    # ------------------------------------------------------------------ #
    def build_protocol(
        self,
        scenario: Scenario,
        turn_probabilities: Optional[TurnProbabilityTable] = None,
    ) -> UpdateProtocol:
        """Instantiate the configured protocol for *scenario*."""
        up = scenario.sensor_sigma if self.use_sensor_uncertainty else 0.0
        window = self.estimation_window or scenario.estimation_window
        um = self.matching_tolerance or scenario.matching_tolerance

        if self.protocol_id == "distance":
            return DistanceBasedReporting(self.accuracy, up, window)
        if self.protocol_id == "movement":
            return MovementBasedReporting(self.accuracy, up, window)
        if self.protocol_id == "time":
            interval = self.extra.get("interval")
            if interval is None:
                summary = scenario.summary()
                speed = max(0.5, summary["average_speed_kmh"] / 3.6)
                return TimeBasedReporting.for_speed(self.accuracy, speed, up, window)
            return TimeBasedReporting(self.accuracy, float(interval), up, window)
        if self.protocol_id == "linear":
            return LinearPredictionProtocol(self.accuracy, up, window)
        if self.protocol_id == "higher_order":
            return HigherOrderPredictionProtocol(self.accuracy, up, window)
        if self.protocol_id == "map":
            return MapBasedProtocol(
                self.accuracy,
                scenario.roadmap,
                sensor_uncertainty=up,
                estimation_window=window,
                config=MapBasedConfig(matching_tolerance=um),
            )
        if self.protocol_id == "map_probabilistic":
            if turn_probabilities is None:
                raise ValueError(
                    "map_probabilistic requires a turn-probability table"
                )
            return ProbabilisticMapBasedProtocol(
                self.accuracy,
                scenario.roadmap,
                turn_probabilities,
                sensor_uncertainty=up,
                estimation_window=window,
                config=MapBasedConfig(matching_tolerance=um),
            )
        if self.protocol_id == "known_route":
            return KnownRouteProtocol(
                self.accuracy, scenario.route, sensor_uncertainty=up, estimation_window=window
            )
        raise AssertionError(f"unhandled protocol id {self.protocol_id!r}")

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dictionary representation (JSON serialisable)."""
        return {
            "protocol_id": self.protocol_id,
            "accuracy": self.accuracy,
            "use_sensor_uncertainty": self.use_sensor_uncertainty,
            "estimation_window": self.estimation_window,
            "matching_tolerance": self.matching_tolerance,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulationConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(
            protocol_id=data["protocol_id"],
            accuracy=float(data["accuracy"]),
            use_sensor_uncertainty=bool(data.get("use_sensor_uncertainty", True)),
            estimation_window=data.get("estimation_window"),
            matching_tolerance=data.get("matching_tolerance"),
            extra=dict(data.get("extra", {})),
        )
