"""Deterministic discrete-event simulation kernel.

The update protocols of the paper are defined by *events* — threshold
crossings, report timers, message arrivals — yet a classic simulation loop
advances a fixed global tick, which quantises channel delivery times,
forces every object onto one sampling grid and burns cycles stepping idle
objects.  :class:`EventKernel` replaces the tick with a binary-heap agenda:
anything that happens is an event scheduled at an exact instant, and the
simulation jumps from event to event.

Event kinds
-----------
The fleet simulation schedules five kinds of events (the constants double
as the ordering priority, see below):

===================  ====================================================
:data:`SAMPLE`       a sensor sighting reaches an object's source
:data:`TIMER`        a protocol's report/deadline timer expires
                     (:meth:`~repro.protocols.base.UpdateProtocol.next_deadline`)
:data:`DELIVERY`     an update message arrives at the server — at exactly
                     ``send_time + latency``, not at the next tick
:data:`HANDOFF`      periodic shard-boundary maintenance of a sharded
                     service backend
:data:`QUERY`        a workload query arrives (e.g. from a Poisson
                     arrival process)
===================  ====================================================

Determinism rules
-----------------
The agenda is ordered by the tuple ``(time, priority, seq)``:

* ``time`` — simulation time of the event;
* ``priority`` — the event kind: at one instant, samples are processed
  before timers, timers before deliveries, deliveries before handoffs,
  handoffs before query arrivals.  This mirrors the tick loop's
  per-timestep order (all sightings, then all due deliveries, then
  measurement, then queries), which is what makes the event kernel
  *bit-identical* to the tick loop when every lane shares the tick rate,
  channel latency is a tick multiple, and no protocol timer deadline
  falls off the sampling grid (off-grid deadlines firing exactly is the
  event kernel's intended improvement over polling);
* ``seq`` — a monotonically increasing schedule counter breaking the
  remaining ties, so events scheduled earlier fire earlier.  Scheduling
  itself is deterministic (no wall-clock, no id()-ordering), hence so is
  the whole run.

The kernel holds no simulation state of its own; it is a pure agenda.
:class:`~repro.sim.fleet.FleetSimulation` owns the event handlers.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Tuple

#: Event kinds, in their at-the-same-instant processing order.  The kind
#: *is* the ordering priority.
SAMPLE = 0
TIMER = 1
DELIVERY = 2
HANDOFF = 3
QUERY = 4

#: Human-readable names of the event kinds (logs, tests, docs).
KIND_NAMES = {
    SAMPLE: "sample",
    TIMER: "timer",
    DELIVERY: "delivery",
    HANDOFF: "handoff",
    QUERY: "query",
}

#: The kernels a simulation can run on.  ``tick`` is the classic
#: time-stepped loop; ``event`` is the discrete-event schedule.  The tick
#: loop survives as the degenerate schedule: with uniform sampling,
#: tick-aligned latency and on-grid (or no) timer deadlines both produce
#: bit-identical results.
KERNELS = ("tick", "event")


def validate_kernel(kernel: str) -> str:
    """Validate a kernel name, returning it (shared by fleet/runner/CLI)."""
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    return kernel


class EventKernel:
    """A binary-heap event agenda ordered by ``(time, priority, seq)``.

    Entries are plain tuples ``(time, priority, seq, payload)`` — no event
    objects are allocated on the hot path.  ``payload`` is whatever the
    scheduling handler wants back (the kernel never inspects it).

    ``on_pop`` is the observability seam: a callable invoked as
    ``on_pop(time, priority, seq)`` for every event the agenda hands out
    (per-event-kind counts, the flight recorder).  It must never mutate
    the agenda; when ``None`` — the default — the only cost on the hot
    path is one identity check per pop.
    """

    __slots__ = ("_agenda", "_seq", "on_pop")

    def __init__(self, on_pop=None) -> None:
        self._agenda: List[Tuple[float, int, int, object]] = []
        self._seq = 0
        self.on_pop = on_pop

    def schedule(self, time: float, priority: int, payload: object) -> None:
        """Add an event at *time* with the given kind/*priority*."""
        heapq.heappush(self._agenda, (time, priority, self._seq, payload))
        self._seq += 1

    def pop(self) -> Tuple[float, int, int, object]:
        """Remove and return the next event ``(time, priority, seq, payload)``."""
        entry = heapq.heappop(self._agenda)
        if self.on_pop is not None:
            self.on_pop(entry[0], entry[1], entry[2])
        return entry

    def next_time(self) -> float:
        """Timestamp of the next event (the agenda must not be empty)."""
        return self._agenda[0][0]

    def __len__(self) -> int:
        return len(self._agenda)

    def __bool__(self) -> bool:
        return bool(self._agenda)

    def drain_instant(self) -> Iterator[Tuple[float, int, int, object]]:
        """Yield every event scheduled at the current next instant.

        Events *scheduled at that same instant by the handlers run during
        the drain* (e.g. a zero-latency delivery for an update a sample
        just sent) are included: the drain keeps popping until the head of
        the agenda moves past the instant.
        """
        agenda = self._agenda
        if not agenda:
            return
        t = agenda[0][0]
        on_pop = self.on_pop
        if on_pop is None:
            while agenda and agenda[0][0] == t:
                yield heapq.heappop(agenda)
        else:
            while agenda and agenda[0][0] == t:
                entry = heapq.heappop(agenda)
                on_pop(entry[0], entry[1], entry[2])
                yield entry
