"""Geodetic helpers: WGS-84 latitude/longitude to local planar metres.

The simulation runs entirely in a local Cartesian frame, but real GPS traces
(such as the paper's Differential-GPS recordings, had we access to them) come
as latitude/longitude pairs.  :class:`LocalProjection` implements the simple
equirectangular projection around a reference point that is accurate to well
under a metre over the tens-of-kilometres extents the protocols deal with,
which is far below the 2-5 m sensor noise the paper assumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geo.vec import Vec2, as_vec

#: Mean Earth radius used by the haversine formula, in metres.
EARTH_RADIUS_M = 6_371_008.8


def haversine_distance(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two WGS-84 points, in metres.

    Parameters are in decimal degrees.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


@dataclass(frozen=True)
class LocalProjection:
    """Equirectangular projection centred on a reference latitude/longitude.

    ``to_local`` maps (lat, lon) degrees to (x, y) metres east/north of the
    reference point; ``to_geodetic`` is the inverse.  The projection is its
    own documentation of accuracy: for extents below ~100 km the distortion
    is negligible compared to GPS noise.
    """

    ref_lat: float
    ref_lon: float

    def _scale(self) -> tuple[float, float]:
        lat_rad = math.radians(self.ref_lat)
        meters_per_deg_lat = math.pi * EARTH_RADIUS_M / 180.0
        meters_per_deg_lon = meters_per_deg_lat * math.cos(lat_rad)
        return meters_per_deg_lon, meters_per_deg_lat

    def to_local(self, lat: float, lon: float) -> np.ndarray:
        """Convert WGS-84 degrees to local planar metres (east, north)."""
        sx, sy = self._scale()
        return np.array([(lon - self.ref_lon) * sx, (lat - self.ref_lat) * sy])

    def to_geodetic(self, point: Vec2) -> tuple[float, float]:
        """Convert local planar metres back to ``(lat, lon)`` degrees."""
        p = as_vec(point)
        sx, sy = self._scale()
        return (self.ref_lat + p[1] / sy, self.ref_lon + p[0] / sx)

    def to_local_array(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Vectorised conversion of parallel lat/lon arrays to an ``(n, 2)`` array."""
        sx, sy = self._scale()
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        return np.column_stack(((lons - self.ref_lon) * sx, (lats - self.ref_lat) * sy))
