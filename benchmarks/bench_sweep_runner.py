"""E9 — sweep-runner throughput: fleet engine + SweepRunner vs the seed loop.

The fleet refactor moved every experiment onto one shared execution core
(vectorised estimation, memoised turn choices, batched metrics) driven by
:class:`~repro.sim.runner.SweepRunner`.  This benchmark runs the paper's
full accuracy sweep (Figures 7-10 protocols: distance-based reporting,
linear DR, map-based DR) twice over the same freeway scenario:

* once through a faithful re-implementation of the seed's serial per-sample
  loop (streaming estimator, scalar metrics, one protocol at a time), and
* once through ``SweepRunner(jobs=4)`` on the current engine,

asserts that both produce *identical* updates/hour numbers, requires the
runner to be at least 2x faster, and records everything in
``BENCH_sweep_runner.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.experiments.figures import FIGURE_PROTOCOLS
from repro.experiments.report import format_table
from repro.geo.vec import distance
from repro.service.channel import MessageChannel
from repro.service.server import LocationServer
from repro.service.source import LocationSource
from repro.sim.config import SimulationConfig
from repro.sim.metrics import AccuracyMetrics
from repro.sim.runner import ScenarioSpec, SweepRunner

from conftest import run_once

_RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_sweep_runner.json")


def _seed_serial_sweep(scenario, protocol_id, accuracies):
    """The seed's simulation loop, reproduced verbatim.

    One fresh protocol per point; per-sample ``observe`` (streaming
    estimator), per-sample channel poll, per-sample scalar metrics — the
    exact algorithm of the seed's ``ProtocolSimulation.run`` and
    ``run_accuracy_sweep``, kept here as the reference the new engine is
    measured against.  (The full-scale freeway sweep of the current tree
    was additionally cross-checked against the actual seed commit: all 33
    points agree in update counts and mean errors.)
    """
    points = []
    for us in accuracies:
        protocol = SimulationConfig(protocol_id=protocol_id, accuracy=float(us)).build_protocol(
            scenario
        )
        channel = MessageChannel()
        server = LocationServer()
        server.register_object(
            "object-0", prediction=protocol.prediction_function(), accuracy=protocol.accuracy
        )
        source = LocationSource("object-0", protocol, channel)
        metrics = AccuracyMetrics()
        metrics.set_bound(protocol.accuracy)
        times = scenario.sensor_trace.times
        sensor_positions = scenario.sensor_trace.positions
        truth_positions = scenario.true_trace.positions
        for i in range(len(times)):
            t = float(times[i])
            source.process_sighting(t, sensor_positions[i])
            for obj_id, delivered in channel.deliver_due(t):
                server.receive_update(obj_id, delivered, t)
            predicted = server.predict_position("object-0", t)
            if predicted is not None:
                metrics.record(distance(predicted, truth_positions[i]))
        duration_h = scenario.sensor_trace.duration / 3600.0
        points.append(
            {
                "us_m": float(us),
                "updates": source.updates_sent,
                "updates_per_hour": source.updates_sent / duration_h,
            }
        )
    return points


def compare_sweep_paths(scale: float, jobs: int = 4):
    """Time both paths over the full sweep and return the comparison record."""
    spec = ScenarioSpec(name="freeway", scale=scale)
    scenario = spec.build()
    accuracies = list(scenario.us_values)

    t0 = time.perf_counter()
    seed_points = {
        pid: _seed_serial_sweep(scenario, pid, accuracies) for pid in FIGURE_PROTOCOLS
    }
    seed_seconds = time.perf_counter() - t0

    runner = SweepRunner(jobs=jobs)
    t0 = time.perf_counter()
    runner_points = {
        pid: runner.run_config_sweep(spec, pid, accuracies) for pid in FIGURE_PROTOCOLS
    }
    runner_seconds = time.perf_counter() - t0

    rows = []
    identical = True
    for pid in FIGURE_PROTOCOLS:
        for seed_point, runner_point in zip(seed_points[pid], runner_points[pid]):
            same = (
                seed_point["updates"] == runner_point.result.updates
                and seed_point["updates_per_hour"] == runner_point.updates_per_hour
            )
            identical = identical and same
            rows.append(
                {
                    "protocol": pid,
                    "us_m": seed_point["us_m"],
                    "updates_per_hour": round(runner_point.updates_per_hour, 4),
                    "identical": same,
                }
            )

    # The 2x acceptance target applies to the paper's full-length sweep; at
    # strongly reduced scales the fixed worker start-up cost dominates the
    # O(scale) simulation work, so the smoke runs only guard against gross
    # regressions.
    required = 2.0 if scale >= 0.5 else 1.2

    return {
        "benchmark": "sweep_runner_vs_seed_serial",
        "scenario": "freeway",
        "scale": scale,
        "required_speedup": required,
        "jobs": jobs,
        "protocols": list(FIGURE_PROTOCOLS),
        "accuracies_m": accuracies,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "seed_serial_seconds": round(seed_seconds, 3),
        "sweep_runner_seconds": round(runner_seconds, 3),
        "speedup": round(seed_seconds / runner_seconds, 3) if runner_seconds > 0 else None,
        "updates_per_hour_identical": identical,
        "points": rows,
    }


def test_sweep_runner_speedup(benchmark, scale):
    record = run_once(benchmark, compare_sweep_paths, scale=scale)
    print()
    print(
        format_table(
            [
                {
                    "path": "seed serial loop",
                    "seconds": record["seed_serial_seconds"],
                },
                {
                    "path": f"SweepRunner(jobs={record['jobs']})",
                    "seconds": record["sweep_runner_seconds"],
                },
            ],
            title=f"Full freeway accuracy sweep, speedup {record['speedup']}x",
        )
    )
    with open(_RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.normpath(_RESULT_PATH)}")

    assert record["updates_per_hour_identical"], "runner numbers diverge from the seed loop"
    required = record["required_speedup"]
    assert record["speedup"] >= required, (
        f"speedup {record['speedup']}x is below the {required}x target at scale {record['scale']}"
    )


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke entry point
    bench_scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    record = compare_sweep_paths(scale=bench_scale)
    with open(_RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps({k: v for k, v in record.items() if k != "points"}, indent=2))
    assert record["updates_per_hour_identical"]
    # Wall-clock assertions flake on shared CI runners; the standalone entry
    # point is correctness-gated only unless explicitly asked to gate speed.
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        assert record["speedup"] >= record["required_speedup"]
