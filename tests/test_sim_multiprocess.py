"""Sharded multi-process fleet execution: bit-identity with one process.

``FleetSimulation(processes=N)`` partitions the lanes into spatial shards
and runs one event kernel per shard.  These tests assert the promise the
mode makes: the merged outcome — per-object results, every error sample,
channel counters, service statistics — is **bitwise identical** to the
single-process run, on every library scenario and on both kernels, and
independent of the order the workers happen to finish in.
"""

import numpy as np
import pytest

import repro.sim.fleet as fleet_mod
from repro.protocols.linear import LinearPredictionProtocol
from repro.service.channel import MessageChannel
from repro.service.facade import LocationService
from repro.sim.fleet import FleetLane, FleetSimulation
from repro.sim.workload import QueryWorkload
from repro.traces.trace import Trace

_SCENARIO_FIXTURES = [
    "tiny_freeway_scenario",
    "tiny_city_scenario",
    "tiny_interurban_scenario",
    "tiny_walking_scenario",
]

#: Per-lane translation spreading the fleet over distinct sharding cells.
_LANE_SPREAD_M = 4000.0


def _spread_lanes(scenario, n_lanes=6, protocol_cls=LinearPredictionProtocol,
                  accuracy=100.0, channel=None, jitter_times=False):
    """Fresh lanes on spatially translated copies of one scenario trip.

    The translation pushes the lanes into different ``GridHashPolicy``
    cells so ``processes > 1`` actually produces several shard tasks.
    ``jitter_times`` shifts every lane onto its own sampling grid (the
    mixed-grid shape the tick-kernel validation cares about).
    """
    lanes = []
    for k in range(n_lanes):
        offset = np.array([(k % 3) * _LANE_SPREAD_M, (k // 3) * _LANE_SPREAD_M])
        times = scenario.sensor_trace.times
        if jitter_times:
            times = times + k * 0.25
        lanes.append(
            FleetLane(
                object_id=f"mp/{k}",
                protocol=protocol_cls(accuracy),
                sensor_trace=Trace(times, scenario.sensor_trace.positions + offset),
                truth_trace=Trace(times, scenario.true_trace.positions + offset),
                channel=channel,
            )
        )
    return lanes


def _stats_tuple(stats):
    return (
        stats.messages_sent,
        stats.messages_delivered,
        stats.messages_lost,
        stats.bytes_sent,
        stats.bytes_delivered,
        stats.max_queue_delay,
    )


def _assert_identical(result_a, result_b):
    rows_a = {oid: r.as_dict() for oid, r in result_a.results.items()}
    rows_b = {oid: r.as_dict() for oid, r in result_b.results.items()}
    assert list(rows_a) == list(rows_b)
    assert rows_a == rows_b
    for oid in rows_a:
        assert np.array_equal(
            result_a.results[oid].metrics.errors,
            result_b.results[oid].metrics.errors,
        ), f"error samples diverged for {oid}"
    assert result_a.service_stats == result_b.service_stats


class TestBitIdentity:
    @pytest.mark.parametrize("fixture", _SCENARIO_FIXTURES)
    @pytest.mark.parametrize("kernel", ["tick", "event"])
    def test_processes_4_equals_1_on_library_scenarios(self, request, fixture, kernel):
        scenario = request.getfixturevalue(fixture)
        single = FleetSimulation(_spread_lanes(scenario), kernel=kernel)
        sharded = FleetSimulation(
            _spread_lanes(scenario), kernel=kernel, processes=4
        )
        _assert_identical(single.run(), sharded.run())
        assert _stats_tuple(single.shared_channel.stats) == _stats_tuple(
            sharded.shared_channel.stats
        )

    def test_seeded_lossy_latent_channel(self, tiny_city_scenario):
        def build(processes):
            channel = MessageChannel(latency=7.0, loss_probability=0.15, seed=99)
            return FleetSimulation(
                _spread_lanes(tiny_city_scenario, channel=channel),
                kernel="event",
                processes=processes,
            )

        single, sharded = build(1), build(4)
        _assert_identical(single.run(), sharded.run())
        lane_channel = single.lanes[0].channel
        assert lane_channel.stats.messages_lost > 0, "loss did not engage"
        assert _stats_tuple(lane_channel.stats) == _stats_tuple(
            sharded.lanes[0].channel.stats
        )

    def test_sharded_service_with_handoffs(self, tiny_city_scenario):
        def build(processes):
            return FleetSimulation(
                _spread_lanes(tiny_city_scenario, n_lanes=8),
                server=LocationService(n_shards=4),
                kernel="event",
                handoff_interval=25.0,
                processes=processes,
            )

        result_1 = build(1).run()
        result_4 = build(4).run()
        _assert_identical(result_1, result_4)
        assert result_1.service_stats is not None
        assert result_1.service_stats == result_4.service_stats

    def test_mixed_sampling_grids_on_event_kernel(self, tiny_freeway_scenario):
        def build(processes):
            channel = MessageChannel(latency=3.0, seed=1)
            return FleetSimulation(
                _spread_lanes(tiny_freeway_scenario, jitter_times=True, channel=channel),
                kernel="event",
                processes=processes,
            )

        _assert_identical(build(1).run(), build(4).run())

    def test_more_processes_than_shards(self, tiny_walking_scenario):
        # Every lane in one sharding cell: a single shard task still merges
        # back bit-identically.
        single = FleetSimulation(
            _spread_lanes(tiny_walking_scenario, n_lanes=3), kernel="event"
        )
        lanes = _spread_lanes(tiny_walking_scenario, n_lanes=3)
        sharded = FleetSimulation(lanes, kernel="event", processes=16)
        _assert_identical(single.run(), sharded.run())


class TestSchedulingIndependence:
    @pytest.mark.parametrize(
        "permute", [lambda t: t[::-1], lambda t: t[1:] + t[:1]], ids=["reversed", "rotated"]
    )
    def test_merge_is_independent_of_worker_order(
        self, tiny_city_scenario, monkeypatch, permute
    ):
        """Permuting shard-task completion order changes nothing observable."""
        original = fleet_mod._execute_shard_tasks

        def shuffled(tasks, processes):
            return original(permute(list(tasks)), processes)

        single = FleetSimulation(
            _spread_lanes(tiny_city_scenario, n_lanes=8),
            server=LocationService(n_shards=4),
            kernel="event",
            handoff_interval=30.0,
        )
        result_1 = single.run()
        monkeypatch.setattr(fleet_mod, "_execute_shard_tasks", shuffled)
        sharded = FleetSimulation(
            _spread_lanes(tiny_city_scenario, n_lanes=8),
            server=LocationService(n_shards=4),
            kernel="event",
            handoff_interval=30.0,
            processes=4,
        )
        _assert_identical(result_1, sharded.run())


class TestValidation:
    def test_processes_below_one_rejected(self, tiny_city_scenario):
        with pytest.raises(ValueError, match="at least 1"):
            FleetSimulation(_spread_lanes(tiny_city_scenario), processes=0)

    def test_query_workload_rejected(self, tiny_city_scenario):
        with pytest.raises(ValueError, match="global RNG stream"):
            FleetSimulation(
                _spread_lanes(tiny_city_scenario),
                query_workload=QueryWorkload(seed=1),
                processes=2,
            )

    def test_unseeded_lossy_channel_rejected(self, tiny_city_scenario):
        with pytest.raises(ValueError, match="unseeded lossy"):
            FleetSimulation(
                _spread_lanes(
                    tiny_city_scenario,
                    channel=MessageChannel(loss_probability=0.1),
                ),
                kernel="event",
                processes=2,
            )

    def test_tick_latency_mixed_grids_rejected(self, tiny_city_scenario):
        with pytest.raises(ValueError, match="merged"):
            FleetSimulation(
                _spread_lanes(
                    tiny_city_scenario,
                    jitter_times=True,
                    channel=MessageChannel(latency=5.0),
                ),
                kernel="tick",
                processes=2,
            )

    def test_tick_latency_shared_grid_allowed(self, tiny_city_scenario):
        fleet = FleetSimulation(
            _spread_lanes(tiny_city_scenario, channel=MessageChannel(latency=5.0)),
            kernel="tick",
            processes=2,
        )
        single = FleetSimulation(
            _spread_lanes(tiny_city_scenario, channel=MessageChannel(latency=5.0)),
            kernel="tick",
        )
        _assert_identical(single.run(), fleet.run())

    def test_prepopulated_server_rejected(self, tiny_city_scenario):
        server = LocationService(n_shards=2)
        server.register_object("squatter")
        fleet = FleetSimulation(
            _spread_lanes(tiny_city_scenario),
            server=server,
            kernel="event",
            processes=2,
        )
        with pytest.raises(ValueError, match="empty"):
            fleet.run()
