"""Real-map ingestion: OSM extracts to simulation-ready road maps.

The pipeline has four stages, each importable on its own:

``osm``
    Streaming OSM XML / Overpass-JSON parsing with tag normalisation
    (highway class, maxspeed units, oneway conventions), then projection
    of WGS-84 coordinates into the local planar metre frame.
``compact``
    Graph conditioning: bbox clip, largest connected component, dead-end
    stub pruning and degree-2 chain contraction into polyline segments.
``cache``
    The compiled-map disk cache (content-hash + options keyed), plus the
    uncached :func:`~repro.ingest.cache.compile_osm` entry point.
``fixtures``
    Deterministic synthetic OSM extracts for tests, benchmarks and CI.
"""

from repro.ingest.cache import compile_osm, default_cache_dir, import_map
from repro.ingest.compact import CompiledMap, ConditioningReport, compile_roadmap
from repro.ingest.fixtures import (
    FIXTURES,
    build_fixture_xml,
    synthetic_town_json,
    synthetic_town_xml,
    write_fixture_xml,
)
from repro.ingest.osm import (
    HIGHWAY_CLASSES,
    OSMNetwork,
    load_osm,
    parse_maxspeed,
    parse_oneway,
    parse_osm_json,
    parse_osm_xml,
    project_network,
)

__all__ = [
    "CompiledMap",
    "ConditioningReport",
    "FIXTURES",
    "HIGHWAY_CLASSES",
    "OSMNetwork",
    "build_fixture_xml",
    "compile_osm",
    "compile_roadmap",
    "default_cache_dir",
    "import_map",
    "load_osm",
    "parse_maxspeed",
    "parse_oneway",
    "parse_osm_json",
    "parse_osm_xml",
    "project_network",
    "synthetic_town_json",
    "synthetic_town_xml",
    "write_fixture_xml",
]
