"""Golden-metrics regression harness.

Every scenario of the library × a set of representative protocols is pinned
to a committed JSON file under ``tests/golden/``: updates, updates/hour,
message bytes, and the error distribution (mean/rms/p95/max).  Any change
that silently shifts a protocol's update rate or delivered accuracy — a
refactor of the estimators, a tweak to a map generator, a new numpy — fails
this suite with a field-level diff.

Regenerating after an *intended* change::

    PYTHONPATH=src python -m pytest tests/test_golden_metrics.py --regen-golden

The pipeline is deterministic for a fixed (scenario, seed, scale), so a
regen on an unchanged tree reproduces the committed files byte-identically
(asserted below: the comparison is ultimately a byte comparison of the
serialised payload).
"""

from __future__ import annotations

import copy
import json
from pathlib import Path
from typing import Dict, List

import pytest

from repro.experiments.library import scenario_names
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationResult
from repro.sim.runner import ScenarioSpec, SweepRunner

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Protocols pinned per scenario: a reporting baseline, the plain
#: dead-reckoning baseline, and the paper's map-based protocol.
GOLDEN_PROTOCOLS = ("distance", "linear", "map")

#: Requested accuracy for the golden runs (the middle of the paper's sweep).
GOLDEN_ACCURACY = 100.0

#: Per-scenario route scale for the golden runs — small enough to keep the
#: suite fast, large enough for hundreds of samples per trace.
GOLDEN_SCALES: Dict[str, float] = {
    "freeway": 0.05,
    "interurban": 0.08,
    "city": 0.07,
    "walking": 0.15,
}
DEFAULT_GOLDEN_SCALE = 0.15

GOLDEN_NAMES = scenario_names()


def golden_scale(name: str) -> float:
    return GOLDEN_SCALES.get(name, DEFAULT_GOLDEN_SCALE)


def _round6(value: float) -> float:
    return round(float(value), 6)


def golden_row(result: SimulationResult) -> Dict[str, object]:
    """The pinned fields of one protocol run."""
    metrics = result.metrics
    return {
        "updates": int(result.updates),
        "updates_per_hour": _round6(result.updates_per_hour),
        "bytes_sent": int(result.bytes_sent),
        "samples": int(metrics.count),
        "mean_error_m": _round6(metrics.mean_error),
        "rms_error_m": _round6(metrics.rms_error),
        "p95_error_m": _round6(metrics.percentile(95.0)),
        "max_error_m": _round6(metrics.max_error),
        "update_reasons": {k: int(v) for k, v in sorted(result.update_reasons.items())},
    }


def compute_golden(name: str) -> Dict[str, object]:
    """Compute the golden payload for one scenario (uses the shared cache)."""
    spec = ScenarioSpec(name=name, scale=golden_scale(name))
    scenario = spec.build()
    runner = SweepRunner()
    protocols: Dict[str, Dict[str, object]] = {}
    for protocol_id in GOLDEN_PROTOCOLS:
        protocol = SimulationConfig(
            protocol_id=protocol_id, accuracy=GOLDEN_ACCURACY
        ).build_protocol(scenario)
        protocols[protocol_id] = golden_row(runner.run_single(scenario, protocol))
    return {
        "scenario": spec.name,
        "scale": spec.scale,
        "seed": spec.seed,
        "accuracy_m": GOLDEN_ACCURACY,
        "trace_samples": len(scenario.sensor_trace),
        "protocols": protocols,
    }


def serialize_golden(payload: Dict[str, object]) -> str:
    """Canonical byte form of a golden payload (what is committed)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def golden_diff(expected: object, actual: object, path: str = "") -> List[str]:
    """Human-readable field-level differences between two payloads."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        diffs: List[str] = []
        for key in sorted(set(expected) | set(actual)):
            where = f"{path}.{key}" if path else str(key)
            if key not in expected:
                diffs.append(f"{where}: unexpected field (value {actual[key]!r})")
            elif key not in actual:
                diffs.append(f"{where}: missing field (expected {expected[key]!r})")
            else:
                diffs.extend(golden_diff(expected[key], actual[key], where))
        return diffs
    if expected != actual:
        return [f"{path}: expected {expected!r}, got {actual!r}"]
    return []


# --------------------------------------------------------------------------- #
# the regression suite
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_golden_metrics(name, request):
    payload = compute_golden(name)
    text = serialize_golden(payload)
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--regen-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden file {path.name}; run "
        "`python -m pytest tests/test_golden_metrics.py --regen-golden` and commit it"
    )
    committed = json.loads(path.read_text(encoding="utf-8"))
    # JSON round-trip the computed payload so both sides carry identical
    # float representations, then compare field by field for a useful
    # failure message...
    computed = json.loads(text)
    diffs = golden_diff(committed, computed)
    assert not diffs, (
        f"golden metrics drifted for scenario {name!r}:\n  " + "\n  ".join(diffs)
        + "\nIf the change is intended, regenerate with --regen-golden and commit."
    )
    # ...and pin the bytes: a regen on an unchanged tree must reproduce the
    # committed file exactly.
    assert path.read_text(encoding="utf-8") == text


def test_golden_computation_is_deterministic():
    """Two computations in one process serialise to identical bytes."""
    name = "rush_hour_city"
    first = serialize_golden(compute_golden(name))
    second = serialize_golden(compute_golden(name))
    assert first == second


def test_golden_diff_detects_injected_perturbation():
    """The comparison flags a metric drift (here: +2% updates/hour on map)."""
    committed = json.loads((GOLDEN_DIR / "rush_hour_city.json").read_text(encoding="utf-8"))
    perturbed = copy.deepcopy(committed)
    perturbed["protocols"]["map"]["updates_per_hour"] = _round6(
        perturbed["protocols"]["map"]["updates_per_hour"] * 1.02
    )
    diffs = golden_diff(committed, perturbed)
    assert diffs, "a perturbed payload must produce a non-empty diff"
    assert any("updates_per_hour" in d for d in diffs)
    # An untouched copy, by contrast, is clean.
    assert golden_diff(committed, copy.deepcopy(committed)) == []


def test_golden_diff_detects_missing_protocol():
    committed = json.loads((GOLDEN_DIR / "freeway.json").read_text(encoding="utf-8"))
    pruned = copy.deepcopy(committed)
    del pruned["protocols"]["map"]
    diffs = golden_diff(committed, pruned)
    assert any("missing field" in d for d in diffs)


def test_golden_files_cover_every_library_scenario():
    """A newly registered scenario must ship its golden file."""
    committed = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert committed == set(GOLDEN_NAMES)
