"""A2 — ablation of the speed/heading estimation window *n* (paper Sec. 4).

The paper interpolates speed and direction from the last 2 (freeway),
4 (city / inter-urban) or 8 (walking) position sightings and states that
these values were found to be optimal.  This ablation sweeps the window for
two contrasting scenarios and reports the resulting update rates of the
linear-prediction protocol.
"""

from repro.experiments.ablations import estimation_window_ablation
from repro.experiments.report import format_table
from repro.mobility.scenarios import ScenarioName

from conftest import run_once


def run_both(scale):
    freeway = estimation_window_ablation(
        ScenarioName.FREEWAY, windows=(2, 4, 8, 16), accuracy=50.0, scale=min(scale, 0.5)
    )
    walking = estimation_window_ablation(
        ScenarioName.WALKING, windows=(2, 4, 8, 16), accuracy=50.0, scale=min(scale, 1.0)
    )
    return freeway, walking


def test_estimation_window_ablation(benchmark, scale):
    freeway, walking = run_once(benchmark, run_both, scale)
    print()
    print(format_table(freeway, title="A2 — estimation window (freeway, us=50 m)"))
    print()
    print(format_table(walking, title="A2 — estimation window (walking, us=50 m)"))

    # For the fast, steady freeway a short window is sufficient: making it
    # very long (16 samples, i.e. 16 seconds of driving) cannot help much and
    # the update rate stays within a factor of ~2 across the sweep.
    freeway_rates = {row["window"]: row["updates_per_hour"] for row in freeway}
    assert freeway_rates[2.0] <= 2.0 * min(freeway_rates.values())
    # For the slow, noisy walking scenario a longer window (the paper's n=8)
    # must not be worse than the shortest one.
    walking_rates = {row["window"]: row["updates_per_hour"] for row in walking}
    assert walking_rates[8.0] <= walking_rates[2.0] * 1.05
