"""Unit tests for repro.spatial.grid."""

import pytest

from repro.geo.bbox import BoundingBox
from repro.geo.segment import Segment
from repro.spatial.grid import GridIndex
from repro.spatial.index import IndexedItem


def segment_item(key, start, end):
    seg = Segment(start, end)
    return IndexedItem(key=key, bounds=BoundingBox(*seg.bounds()), distance=seg.distance_to)


@pytest.fixture()
def populated_index():
    index = GridIndex(cell_size=100.0)
    # A grid of horizontal segments spaced 200 m apart vertically.
    for i in range(10):
        index.insert(segment_item(i, (0.0, i * 200.0), (1000.0, i * 200.0)))
    return index


class TestConstruction:
    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0.0)

    def test_len(self, populated_index):
        assert len(populated_index) == 10

    def test_constructor_accepts_items(self):
        items = [segment_item(0, (0, 0), (10, 0))]
        assert len(GridIndex(cell_size=50.0, items=items)) == 1

    def test_cell_statistics(self, populated_index):
        stats = populated_index.cell_statistics()
        assert stats["cells"] > 0
        assert stats["max_per_cell"] >= 1

    def test_empty_statistics(self):
        stats = GridIndex().cell_statistics()
        assert stats == {"cells": 0, "max_per_cell": 0, "mean_per_cell": 0.0}


class TestQueries:
    def test_query_bbox_finds_intersecting(self, populated_index):
        hits = populated_index.query_bbox(BoundingBox(400.0, -10.0, 600.0, 210.0))
        assert sorted(item.key for item in hits) == [0, 1]

    def test_query_bbox_no_hits(self, populated_index):
        assert populated_index.query_bbox(BoundingBox(0.0, 2500.0, 10.0, 2600.0)) == []

    def test_query_bbox_does_not_duplicate(self, populated_index):
        hits = populated_index.query_bbox(BoundingBox(-50.0, -50.0, 1050.0, 50.0))
        keys = [item.key for item in hits]
        assert len(keys) == len(set(keys))

    def test_query_radius_exact(self, populated_index):
        hits = populated_index.query_radius((500.0, 90.0), 95.0)
        assert [item.key for item in hits] == [0]

    def test_query_radius_multiple(self, populated_index):
        hits = populated_index.query_radius((500.0, 100.0), 150.0)
        assert sorted(item.key for item in hits) == [0, 1]

    def test_nearest(self, populated_index):
        found = populated_index.nearest((500.0, 260.0))
        assert found is not None
        item, dist = found
        assert item.key == 1
        assert dist == pytest.approx(60.0)

    def test_nearest_respects_max_distance(self, populated_index):
        assert populated_index.nearest((500.0, 260.0), max_distance=10.0) is None

    def test_nearest_on_empty_index(self):
        assert GridIndex().nearest((0.0, 0.0)) is None

    def test_nearest_zero_max_distance(self, populated_index):
        assert populated_index.nearest((500.0, 0.0), max_distance=0.0) is None

    def test_k_nearest_ordering(self, populated_index):
        results = populated_index.k_nearest((500.0, 250.0), k=3)
        keys = [item.key for item, _ in results]
        assert keys == [1, 2, 0]
        dists = [d for _, d in results]
        assert dists == sorted(dists)

    def test_k_nearest_k_zero(self, populated_index):
        assert populated_index.k_nearest((0.0, 0.0), k=0) == []

    def test_nearest_far_query_still_finds(self, populated_index):
        found = populated_index.nearest((50000.0, 50000.0))
        assert found is not None


def point_item(key, x, y, cell_size=100.0):
    import math

    cx, cy = math.floor(x / cell_size), math.floor(y / cell_size)
    return IndexedItem(
        key=key,
        bounds=BoundingBox(
            cx * cell_size, cy * cell_size, (cx + 1) * cell_size, (cy + 1) * cell_size
        ),
        distance=None,
    )


class TestRebuild:
    """``rebuild(items)`` is one bulk pass equivalent to N ``insert`` calls."""

    def _items(self):
        items = [segment_item(i, (0.0, i * 200.0), (1000.0, i * 200.0)) for i in range(10)]
        # A few point-like (single-cell) items, the moving-object shape.
        items += [point_item(100 + i, 37.0 + 310.0 * i, 411.0 - 90.0 * i) for i in range(5)]
        return items

    def _assert_equivalent(self, bulk, incremental):
        assert len(bulk) == len(incremental)
        assert bulk.cell_statistics() == incremental.cell_statistics()
        assert bulk._occupied == incremental._occupied
        assert sorted(bulk._cells) == sorted(incremental._cells)
        for cell, bucket in incremental._cells.items():
            assert [item.key for item in bulk._cells[cell]] == [
                item.key for item in bucket
            ]
        probes = [
            BoundingBox(-50.0, -50.0, 1050.0, 2050.0),
            BoundingBox(0.0, 300.0, 400.0, 500.0),
            BoundingBox(900.0, 900.0, 901.0, 901.0),
        ]
        for box in probes:
            assert [i.key for i in bulk.query_bbox(box)] == [
                i.key for i in incremental.query_bbox(box)
            ]

    def test_rebuild_matches_incremental_insertion(self):
        items = self._items()
        incremental = GridIndex(cell_size=100.0)
        for item in items:
            incremental.insert(item)
        bulk = GridIndex(cell_size=100.0)
        bulk.rebuild(items)
        self._assert_equivalent(bulk, incremental)

    def test_rebuild_replaces_previous_content(self):
        index = GridIndex(cell_size=100.0)
        index.insert(segment_item("old", (0, 0), (10, 0)))
        items = self._items()
        index.rebuild(items)
        fresh = GridIndex(cell_size=100.0)
        fresh.rebuild(items)
        self._assert_equivalent(index, fresh)
        assert all(item.key != "old" for item in index.query_bbox(BoundingBox(-1, -1, 11, 1)))

    def test_rebuild_empty_clears(self):
        index = GridIndex(cell_size=100.0)
        index.insert(segment_item(0, (0, 0), (10, 0)))
        index.rebuild([])
        assert len(index) == 0
        assert index.query_bbox(BoundingBox(-100, -100, 100, 100)) == []
        assert index.nearest((0.0, 0.0)) is None

    def test_remove_after_rebuild(self):
        items = self._items()
        bulk = GridIndex(cell_size=100.0)
        bulk.rebuild(items)
        incremental = GridIndex(cell_size=100.0)
        for item in items:
            incremental.insert(item)
        assert bulk.remove(3) == incremental.remove(3) == 1
        assert bulk.remove(102) == incremental.remove(102) == 1
        self._assert_equivalent(bulk, incremental)

    def test_insert_after_rebuild_continues_serials(self):
        items = self._items()
        bulk = GridIndex(cell_size=100.0)
        bulk.rebuild(items)
        incremental = GridIndex(cell_size=100.0)
        for item in items:
            incremental.insert(item)
        extra = point_item("late", 512.0, 512.0)
        bulk.insert(extra)
        incremental.insert(extra)
        self._assert_equivalent(bulk, incremental)
