#!/usr/bin/env python
"""Quickstart: compare three update protocols on a short freeway drive.

This is the smallest end-to-end use of the library:

1. build a synthetic freeway scenario (road map + simulated drive + GPS noise),
2. run the distance-based reporting baseline, linear-prediction dead
   reckoning and the paper's map-based dead reckoning over the same trace,
3. print how many update messages each protocol needed and how accurate the
   location server's view of the object actually was.

Run with::

    python examples/quickstart.py
"""

from repro.experiments.report import format_table
from repro.mobility.scenarios import freeway_scenario
from repro.sim.config import SimulationConfig
from repro.sim.engine import ProtocolSimulation


def main() -> None:
    # A 10%-length freeway scenario (~16 km of driving) keeps this example fast.
    scenario = freeway_scenario(scale=0.1)
    print(f"Scenario: {scenario.description}")
    print({k: round(v, 2) for k, v in scenario.summary().items()})
    print()

    requested_accuracy = 100.0  # metres, the "us" of the paper
    rows = []
    for protocol_id in ("distance", "linear", "map"):
        protocol = SimulationConfig(
            protocol_id=protocol_id, accuracy=requested_accuracy
        ).build_protocol(scenario)
        result = ProtocolSimulation(
            protocol=protocol,
            sensor_trace=scenario.sensor_trace,   # what the GPS reports
            truth_trace=scenario.true_trace,      # what the object really did
        ).run()
        rows.append(
            {
                "protocol": result.protocol_name,
                "updates": result.updates,
                "updates/h": round(result.updates_per_hour, 1),
                "mean error [m]": round(result.metrics.mean_error, 1),
                "max error [m]": round(result.metrics.max_error, 1),
            }
        )

    print(format_table(rows, title=f"Requested accuracy us = {requested_accuracy:.0f} m"))
    print()
    baseline, linear, mapped = (row["updates"] for row in rows)
    print(
        f"Linear-prediction dead reckoning removes "
        f"{100.0 * (1 - linear / baseline):.0f}% of the updates; "
        f"the map-based protocol removes another "
        f"{100.0 * (1 - mapped / max(linear, 1)):.0f}% of what is left."
    )


if __name__ == "__main__":
    main()
