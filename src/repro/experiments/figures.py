"""Figures 3/6 and 7-10: protocol comparison across requested accuracies.

Each of the paper's Figures 7-10 shows, for one movement scenario, the
number of update messages per hour (left plot) and the same numbers relative
to the non-dead-reckoning distance-based protocol (right plot), for requested
accuracies between 20 m and 500 m (250 m for the walking scenario).
:func:`figure_for_scenario` computes both plots' data; ``figure7`` ...
``figure10`` bind it to the individual scenarios.

Figures 3 and 6 of the paper are simulator screenshots showing the updates
generated on one particular route by the linear-prediction and the map-based
protocol; :func:`route_update_counts` reproduces their quantitative content
(the update counts for the same route and the same requested accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.scenarios import get_scenario
from repro.mobility.scenarios import Scenario, ScenarioName
from repro.sim.config import SimulationConfig
from repro.sim.engine import ProtocolSimulation
from repro.sim.metrics import SimulationResult
from repro.sim.sweep import SweepPoint, run_accuracy_sweep

#: Protocols plotted in Figures 7-10, in the paper's order.
FIGURE_PROTOCOLS = ("distance", "linear", "map")

#: Display names matching the figure legends of the paper.
PROTOCOL_LABELS = {
    "distance": "distance-based reporting",
    "linear": "linear-pred dr",
    "map": "map-based dr",
}


@dataclass
class FigureSeries:
    """One curve of a figure: a protocol's updates/hour over the accuracy sweep."""

    protocol_id: str
    label: str
    points: List[SweepPoint]

    @property
    def accuracies(self) -> List[float]:
        """The x axis: requested accuracy ``us`` in metres."""
        return [p.accuracy for p in self.points]

    @property
    def updates_per_hour(self) -> List[float]:
        """The left-plot y axis: update messages per hour."""
        return [p.updates_per_hour for p in self.points]

    def relative_to(self, baseline: "FigureSeries") -> List[float]:
        """The right-plot y axis: percentage of the baseline's update count."""
        out: List[float] = []
        for mine, theirs in zip(self.points, baseline.points):
            if theirs.updates_per_hour <= 0:
                out.append(0.0)
            else:
                out.append(100.0 * mine.updates_per_hour / theirs.updates_per_hour)
        return out


@dataclass
class FigureResult:
    """All data of one of the paper's Figures 7-10."""

    scenario_name: str
    description: str
    series: Dict[str, FigureSeries]

    @property
    def baseline(self) -> FigureSeries:
        """The distance-based reporting curve (the 100% reference)."""
        return self.series["distance"]

    def relative_series(self) -> Dict[str, List[float]]:
        """Right-hand plot: every protocol as a percentage of the baseline."""
        return {
            protocol_id: series.relative_to(self.baseline)
            for protocol_id, series in self.series.items()
        }

    def reduction_vs_baseline(self, protocol_id: str) -> float:
        """Largest reduction (%) of *protocol_id* against the baseline over the sweep."""
        relative = self.series[protocol_id].relative_to(self.baseline)
        if not relative:
            return 0.0
        return 100.0 - min(relative)

    def reduction_between(self, protocol_id: str, reference_id: str) -> float:
        """Largest reduction (%) of one protocol against another over the sweep."""
        target = self.series[protocol_id]
        reference = self.series[reference_id]
        best = 0.0
        for mine, theirs in zip(target.points, reference.points):
            if theirs.updates_per_hour <= 0:
                continue
            reduction = 100.0 * (1.0 - mine.updates_per_hour / theirs.updates_per_hour)
            best = max(best, reduction)
        return best

    def as_rows(self) -> List[Dict[str, object]]:
        """Tabular form: one row per requested accuracy with every protocol's value."""
        rows: List[Dict[str, object]] = []
        accuracies = self.baseline.accuracies
        relative = self.relative_series()
        for i, us in enumerate(accuracies):
            row: Dict[str, object] = {"us [m]": us}
            for protocol_id, series in self.series.items():
                row[f"{series.label} [upd/h]"] = round(series.updates_per_hour[i], 1)
            for protocol_id, series in self.series.items():
                if protocol_id == "distance":
                    continue
                row[f"{series.label} [% of baseline]"] = round(relative[protocol_id][i], 1)
            rows.append(row)
        return rows


# --------------------------------------------------------------------------- #
# figure runners
# --------------------------------------------------------------------------- #
def figure_for_scenario(
    scenario: Scenario,
    protocol_ids: Sequence[str] = FIGURE_PROTOCOLS,
    accuracies: Optional[Sequence[float]] = None,
) -> FigureResult:
    """Compute the Figure 7-10 data for an arbitrary scenario."""
    series: Dict[str, FigureSeries] = {}
    for protocol_id in protocol_ids:
        def factory(us: float, _pid=protocol_id):
            return SimulationConfig(protocol_id=_pid, accuracy=us).build_protocol(scenario)

        points = run_accuracy_sweep(scenario, factory, accuracies)
        series[protocol_id] = FigureSeries(
            protocol_id=protocol_id,
            label=PROTOCOL_LABELS.get(protocol_id, protocol_id),
            points=points,
        )
    return FigureResult(
        scenario_name=scenario.name.value,
        description=scenario.description,
        series=series,
    )


def figure7(scale: float = 1.0, accuracies: Optional[Sequence[float]] = None) -> FigureResult:
    """Fig. 7 — freeway traffic."""
    return figure_for_scenario(get_scenario(ScenarioName.FREEWAY, scale=scale), accuracies=accuracies)


def figure8(scale: float = 1.0, accuracies: Optional[Sequence[float]] = None) -> FigureResult:
    """Fig. 8 — inter-urban traffic."""
    return figure_for_scenario(get_scenario(ScenarioName.INTERURBAN, scale=scale), accuracies=accuracies)


def figure9(scale: float = 1.0, accuracies: Optional[Sequence[float]] = None) -> FigureResult:
    """Fig. 9 — city traffic."""
    return figure_for_scenario(get_scenario(ScenarioName.CITY, scale=scale), accuracies=accuracies)


def figure10(scale: float = 1.0, accuracies: Optional[Sequence[float]] = None) -> FigureResult:
    """Fig. 10 — walking person."""
    return figure_for_scenario(get_scenario(ScenarioName.WALKING, scale=scale), accuracies=accuracies)


def route_update_counts(
    scale: float = 1.0, accuracy: float = 200.0, scenario_name: ScenarioName = ScenarioName.FREEWAY
) -> Dict[str, SimulationResult]:
    """Figures 3 and 6: updates generated on one route at one accuracy.

    The paper's screenshots show 9 updates with linear prediction and 3 with
    the map-based protocol on the same freeway stretch; the interesting
    quantity is the ratio, which this experiment reports for the full
    scenario route.
    """
    scenario = get_scenario(scenario_name, scale=scale)
    out: Dict[str, SimulationResult] = {}
    for protocol_id in ("linear", "map"):
        protocol = SimulationConfig(protocol_id=protocol_id, accuracy=accuracy).build_protocol(
            scenario
        )
        out[protocol_id] = ProtocolSimulation(
            protocol=protocol,
            sensor_trace=scenario.sensor_trace,
            truth_trace=scenario.true_trace,
        ).run()
    return out


def headline_reductions(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    """The reductions quoted in the paper's abstract and Section 4.

    Returns, per scenario, the maximum reduction of linear-prediction DR
    versus distance-based reporting, of map-based DR versus linear DR, and
    of map-based DR versus distance-based reporting (the paper quotes up to
    83%, 60% and 91% respectively).
    """
    out: Dict[str, Dict[str, float]] = {}
    for name, runner in (
        (ScenarioName.FREEWAY, figure7),
        (ScenarioName.INTERURBAN, figure8),
        (ScenarioName.CITY, figure9),
        (ScenarioName.WALKING, figure10),
    ):
        figure = runner(scale=scale)
        out[name.value] = {
            "linear_vs_distance_pct": round(figure.reduction_vs_baseline("linear"), 1),
            "map_vs_linear_pct": round(figure.reduction_between("map", "linear"), 1),
            "map_vs_distance_pct": round(figure.reduction_vs_baseline("map"), 1),
        }
    return out
